//! Offline stand-in for the subset of the crates.io `criterion` API used by
//! this workspace.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate keeps the same bench-authoring surface —
//! [`Criterion`], [`Bencher::iter`]/[`Bencher::iter_batched`], benchmark
//! groups, `criterion_group!`/`criterion_main!` and [`black_box`] — backed
//! by a simple calibrated timing loop that prints a median ns/iter line per
//! benchmark. There is no statistical regression analysis, HTML report, or
//! result persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a benchmark
/// body. Safe-code approximation of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost across iterations. All variants
/// behave identically here (setup runs once per iteration, outside the
/// timed section).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Collected timings for one benchmark.
#[derive(Debug)]
struct Samples {
    per_iter_ns: Vec<f64>,
}

impl Samples {
    fn report(&mut self, name: &str) {
        if self.per_iter_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.per_iter_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        let median = self.per_iter_ns[self.per_iter_ns.len() / 2];
        let lo = self.per_iter_ns[0];
        let hi = self.per_iter_ns[self.per_iter_ns.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Passed to each benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher<'a> {
    samples: &'a mut Samples,
    sample_count: usize,
    target: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, running it repeatedly until enough samples are
    /// collected.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample slice.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let slice = self.target / self.sample_count as u32;
        let iters = (slice.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .per_iter_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is not
    /// included in the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples
                .per_iter_ns
                .push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Benchmark driver. One per `criterion_group!` function invocation.
#[derive(Debug)]
pub struct Criterion {
    sample_count: usize,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 20,
            target: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut samples = Samples {
            per_iter_ns: Vec::new(),
        };
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_count: self.sample_count,
            target: self.target,
        };
        f(&mut bencher);
        samples.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_count: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_count = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut samples = Samples {
            per_iter_ns: Vec::new(),
        };
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_count: self.sample_count.unwrap_or(self.parent.sample_count),
            target: self.parent.target,
        };
        f(&mut bencher);
        samples.report(&full);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into a runner callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Emits `main`, invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion {
            sample_count: 3,
            target: Duration::from_millis(5),
        };
        let mut total = 0u64;
        c.bench_function("sum", |b| {
            b.iter(|| {
                total = total.wrapping_add(1);
                total
            })
        });
        assert!(total > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion {
            sample_count: 4,
            target: Duration::from_millis(5),
        };
        let mut setups = 0usize;
        let mut runs = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("probe", |b| {
                b.iter_batched(|| (), |_| runs += 1, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(runs, 2);
    }
}
