//! End-to-end fixture tests: tokenizer traps, whole-repo runs, and the
//! two-way budget ratchet.

use std::fs;
use std::path::{Path, PathBuf};

use rowfpga_lint::budget::BudgetError;
use rowfpga_lint::lints::{analyze_source, FileRules};
use rowfpga_lint::{run_repo, EngineError, Options};

const ALL: FileRules = FileRules {
    determinism_collections: true,
    determinism_time: true,
    count_panics: true,
    cfg_hygiene: true,
    unsafe_audit: true,
};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

fn read(rel: &str) -> String {
    let path = fixture(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn trap_fixture_is_clean() {
    let analysis = analyze_source("traps.rs", &read("traps.rs"), ALL);
    assert_eq!(
        analysis.violations,
        Vec::new(),
        "tokenizer was fooled by a trap"
    );
    assert_eq!(analysis.panic_sites, 0);
    assert!(analysis.hot_path);
}

#[test]
fn bad_fixture_fires_each_lint_at_the_expected_line() {
    let analysis = analyze_source("bad.rs", &read("bad.rs"), ALL);
    let got: Vec<(String, u32)> = analysis
        .violations
        .iter()
        .map(|v| (v.lint.clone(), v.line))
        .collect();
    let expected = [
        ("directive", 31),
        ("hot-path", 6),
        ("determinism", 14),
        ("determinism", 18),
        ("cfg-hygiene", 21),
        ("unsafe", 28),
    ];
    for (lint, line) in expected {
        assert!(
            got.iter().any(|(l, n)| l == lint && *n == line),
            "missing {lint} at line {line}; got {got:?}"
        );
    }
    assert_eq!(got.len(), expected.len(), "extra violations: {got:?}");
    assert_eq!(analysis.panic_sites, 1);
}

#[test]
fn good_repo_passes_end_to_end() {
    let report = run_repo(&fixture("repo_good"), Options::default()).unwrap();
    assert!(
        report.ok(),
        "unexpected violations: {:?}",
        report.violations
    );
    assert_eq!(report.crates, 1);
    assert_eq!(report.panic_counts.get("demo"), Some(&0));
}

#[test]
fn bad_repo_fails_every_lint_family() {
    let report = run_repo(&fixture("repo_bad"), Options::default()).unwrap();
    assert!(!report.ok());
    let lints: Vec<&str> = report.violations.iter().map(|v| v.lint.as_str()).collect();
    for family in [
        "hot-path",
        "determinism",
        "cfg-hygiene",
        "unsafe",
        "forbid-unsafe",
        "panic-budget",
    ] {
        assert!(lints.contains(&family), "no {family} in {lints:?}");
    }
}

/// One seeded violation per interprocedural analysis, each reported
/// with the call chain that proves it.
#[test]
fn interproc_repo_fires_each_analysis_with_a_chain() {
    let report = run_repo(&fixture("repo_interproc"), Options::default()).unwrap();
    assert!(!report.ok());

    // Transitive clock read: the boundary is `helper` in the solver
    // crate; the chain walks into rowfpga-bench and down to the clock.
    let taint = report
        .violations
        .iter()
        .find(|v| v.lint == "taint")
        .unwrap_or_else(|| panic!("no taint finding in {:?}", report.violations));
    assert!(taint.file.ends_with("solver/src/lib.rs"), "{taint:?}");
    assert!(
        taint.chain.iter().any(|f| f.contains("stamp")),
        "chain misses the tainted helper: {:?}",
        taint.chain
    );
    assert!(
        taint.chain.iter().any(|f| f.contains("now_impl")),
        "chain misses the clock read: {:?}",
        taint.chain
    );

    // Hot-path unwrap two calls deep: drive -> step1 -> step2.
    let reach = report
        .violations
        .iter()
        .find(|v| v.lint == "reachability")
        .unwrap_or_else(|| panic!("no reachability finding in {:?}", report.violations));
    assert!(reach.message.contains("drive"), "{reach:?}");
    for hop in ["drive", "step1", "step2"] {
        assert!(
            reach.chain.iter().any(|f| f.contains(hop)),
            "chain misses {hop}: {:?}",
            reach.chain
        );
    }

    // Rename before fsync in the durable store crate.
    let durability = report
        .violations
        .iter()
        .find(|v| v.lint == "durability")
        .unwrap_or_else(|| panic!("no durability finding in {:?}", report.violations));
    assert!(
        durability.file.ends_with("store/src/lib.rs"),
        "{durability:?}"
    );
    assert!(
        durability.message.contains("never fsynced"),
        "{durability:?}"
    );

    // Inverted lock order between `forward` and `backward`.
    let locks = report
        .violations
        .iter()
        .find(|v| v.lint == "locks")
        .unwrap_or_else(|| panic!("no locks finding in {:?}", report.violations));
    assert!(locks.file.ends_with("svc/src/lib.rs"), "{locks:?}");
    assert!(
        locks.message.contains("jobs") && locks.message.contains("stats"),
        "{locks:?}"
    );
}

/// Builds a throwaway one-crate repo under the OS temp dir.
fn scratch_repo(tag: &str, panic_sites: usize, budget: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("rowfpga-lint-{}-{tag}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n",
    )
    .unwrap();
    let mut lib = String::from("#![forbid(unsafe_code)]\n//! Scratch fixture.\n");
    for i in 0..panic_sites {
        lib.push_str(&format!(
            "/// Site {i}.\npub fn site_{i}(x: Option<u32>) -> u32 {{ x.unwrap() }}\n"
        ));
    }
    fs::write(src_dir.join("lib.rs"), lib).unwrap();
    fs::write(root.join("lint-budget.toml"), budget).unwrap();
    root
}

#[test]
fn hand_bumped_budget_is_rejected() {
    // Seeding slack into the budget (budget 5, actual 2) must fail just
    // like exceeding it would: the file may never drift from reality.
    let root = scratch_repo("bumped", 2, "[panics]\ndemo = 5\n");
    let report = run_repo(&root, Options::default()).unwrap();
    let budget_problems: Vec<&str> = report
        .violations
        .iter()
        .filter(|v| v.lint == "panic-budget")
        .map(|v| v.message.as_str())
        .collect();
    assert_eq!(budget_problems.len(), 1, "{budget_problems:?}");
    assert!(budget_problems[0].contains("beat the budget"));
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn fix_budget_refuses_an_upward_ratchet() {
    let root = scratch_repo("ratchet-up", 3, "[panics]\ndemo = 1\n");
    let err = run_repo(&root, Options { fix_budget: true }).unwrap_err();
    match err {
        EngineError::Budget(BudgetError::RatchetUp {
            table,
            krate,
            budget,
            actual,
        }) => {
            assert_eq!(table, "panics");
            assert_eq!(krate, "demo");
            assert_eq!((budget, actual), (1, 3));
        }
        other => panic!("expected RatchetUp, got {other:?}"),
    }
    // The refusal must leave the committed file untouched.
    assert_eq!(
        fs::read_to_string(root.join("lint-budget.toml")).unwrap(),
        "[panics]\ndemo = 1\n"
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn fix_budget_locks_in_an_improvement() {
    let root = scratch_repo("ratchet-down", 1, "[panics]\ndemo = 4\n");
    run_repo(&root, Options { fix_budget: true }).unwrap();
    let rewritten = fs::read_to_string(root.join("lint-budget.toml")).unwrap();
    assert!(rewritten.contains("demo = 1"), "{rewritten}");
    // After the rewrite a plain run is clean.
    let report = run_repo(&root, Options::default()).unwrap();
    assert!(report.ok(), "{:?}", report.violations);
    fs::remove_dir_all(&root).unwrap();
}
