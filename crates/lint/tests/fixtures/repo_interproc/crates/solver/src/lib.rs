#![forbid(unsafe_code)]
//! Deterministic solver crate. Seeds two interprocedural violations:
//! a transitive clock read (taint, two calls from the sink) and a
//! hot-path unwrap two calls deep (reachability).

mod hot;

/// A solver step that leaks wall-clock time through a helper.
pub fn anneal_step() -> u64 {
    helper()
}

fn helper() -> u64 {
    rowfpga_bench::stamp()
}

/// First hop of the hot-path chain.
pub fn step1(x: Option<u32>) -> u32 {
    step2(x)
}

fn step2(x: Option<u32>) -> u32 {
    x.unwrap()
}
