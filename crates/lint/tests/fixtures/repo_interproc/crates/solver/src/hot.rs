// rowfpga-lint: hot-path
//! Hot-path entry whose panic sits two calls away.

/// Inner-loop driver: the unwrap it can reach lives in `step2`.
pub fn drive(x: Option<u32>) -> u32 {
    crate::step1(x)
}
