#![forbid(unsafe_code)]
//! Seeded lock-order inversion: `forward` takes jobs then stats,
//! `backward` takes stats then jobs — a deadlock waiting for load.

use std::sync::Mutex;

/// Two independently locked tables.
pub struct Svc {
    /// Pending work.
    pub jobs: Mutex<u32>,
    /// Counters.
    pub stats: Mutex<u32>,
}

/// Takes `jobs` before `stats`.
pub fn forward(s: &Svc) -> u32 {
    let Ok(ga) = s.jobs.lock() else { return 0 };
    let Ok(gb) = s.stats.lock() else { return 0 };
    *ga + *gb
}

/// Takes `stats` before `jobs` — the inversion.
pub fn backward(s: &Svc) -> u32 {
    let Ok(gb) = s.stats.lock() else { return 0 };
    let Ok(ga) = s.jobs.lock() else { return 0 };
    *ga + *gb
}
