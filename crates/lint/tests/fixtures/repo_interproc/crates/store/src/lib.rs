// rowfpga-lint: durable
#![forbid(unsafe_code)]
//! Seeded durability violation: the temp file is renamed into place
//! before it is ever fsynced, so a crash can publish torn bytes.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Publishes `data` at `path` — wrongly: rename precedes the fsync.
pub fn save(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(data)?;
    fs::rename(&tmp, path)?;
    f.sync_all()?;
    Ok(())
}
