#![forbid(unsafe_code)]
//! Helper crate outside the deterministic domain. `stamp` is tainted
//! transitively: the clock read sits one more call down, so only an
//! interprocedural pass can see it.

/// Milliseconds since some epoch — looks innocent from the signature.
pub fn stamp() -> u64 {
    now_impl()
}

fn now_impl() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
