// rowfpga-lint: hot-path
//! Fixture: deliberately violates every lint the engine runs.

use std::collections::HashMap;

pub fn clone_in_hot_path(v: &[u32]) -> Vec<u32> {
    v.to_vec()
}

pub fn unordered() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn clocky() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn fault_probe_ungated() {}

pub fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn sharp(p: *const u32) -> u32 {
    unsafe { *p }
}
