// rowfpga-lint: durable
//! Correct durability discipline: write-temp, fsync, then rename. The
//! typestate pass must accept this file untouched.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Atomically publishes `data` at `path`.
pub fn publish(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(data)?;
    f.sync_all()?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// A pure rename (no prior write in this function) is also clean.
pub fn adopt(from: &Path, to: &Path) -> std::io::Result<()> {
    fs::rename(from, to)
}
