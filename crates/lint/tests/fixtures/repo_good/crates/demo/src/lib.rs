#![forbid(unsafe_code)]
//! Fixture: a clean crate the engine must pass.

/// Adds one, deterministically and without allocating.
pub fn add_one(x: u32) -> u32 {
    x.saturating_add(1)
}
