// rowfpga-lint: hot-path
//! Fixture: every construct in this file is a trap the tokenizer must see
//! through. Expected analysis: zero violations, zero panic sites.

fn messages() -> &'static str {
    "call .clone() then .unwrap() and maybe panic! or Vec::new()"
}

// let stale = old.clone(); — a commented-out allocation
/* vec![1, 2, 3] and .collect() inside a block comment
   /* nested: Box::new(()) */ still inside */

fn raw() -> &'static str {
    r#"HashMap::new() and Instant::now() in a raw "quoted" string"#
}

fn hashier() -> &'static str {
    r##"even more hashes: format!("{}", x.unwrap())"##
}

fn lifetimes<'a>(x: &'a str) -> char {
    let _ = x;
    'a'
}

fn escaped() -> char {
    '\'' // an escaped-quote char literal must not derail the lexer
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate_and_panic() {
        let v: Vec<u32> = (0..4).collect();
        let w = v.clone();
        assert_eq!(w.last().unwrap(), &3);
        let m = std::collections::HashMap::<u32, u32>::new();
        assert!(m.is_empty());
        let boxed = Box::new(format!("{}", w.len()));
        assert_eq!(*boxed, "4");
    }
}
