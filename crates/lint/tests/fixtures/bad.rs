// rowfpga-lint: hot-path
//! Fixture: one genuine violation of each lint, at known lines, mixed in
//! with the same traps `traps.rs` uses.

fn hot(v: &[u32]) -> Vec<u32> {
    v.to_vec() // line 6: hot-path
}

fn decoy() -> &'static str {
    ".clone() in a string is fine"
}

fn ordered() {
    let _m = std::collections::HashMap::<u32, u32>::new(); // line 14: determinism
}

fn clocky() {
    let _t = std::time::Instant::now(); // line 18: determinism
}

fn fault_probe_ungated() {} // line 21: cfg-hygiene

fn risky(x: Option<u32>) -> u32 {
    x.unwrap() // line 24: panic site (counted, not a violation)
}

fn sharp(p: *const u32) -> u32 {
    unsafe { *p } // line 28: unsafe without SAFETY
}

// rowfpga-lint: allow(nonsense) reason=line 31: malformed directive

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(v.clone().len(), 4);
        None::<u32>.unwrap_or_default();
    }
}
