//! Attribute-gated region discovery over the token stream.
//!
//! The lints need to know which tokens live inside `#[cfg(test)]` items
//! (exempt from everything — test code may allocate, unwrap and use
//! `HashMap` freely) and which live inside `#[cfg(feature =
//! "fault-inject")]` items or statements (exempt from the cfg-hygiene
//! lint — that is exactly where fault hooks belong).
//!
//! The walker is syntactic, not semantic: after a matching attribute it
//! skips any further attributes, then consumes one "item" — everything up
//! to the first `;`, `,` or block-closing `}` at bracket depth zero
//! (with an `else` continuation so gated `if`/`else` statements stay in
//! one region). That covers functions, modules, impl blocks, struct
//! fields, match arms and `let` statements, which is every shape the
//! workspace uses.

use crate::lexer::{Lexed, TokenKind};

/// Which gate to mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// `#[cfg(test)]`
    Test,
    /// `#[cfg(feature = "fault-inject")]`
    FaultInject,
}

/// Returns one bool per token: `true` when the token is inside an item or
/// statement gated by `gate`. An inner attribute (`#![cfg(test)]`)
/// matching the gate masks the whole file.
pub fn gated_mask(src: &str, lx: &Lexed, gate: Gate) -> Vec<bool> {
    let n = lx.tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if !is_punct(lx, src, i, "#") {
            i += 1;
            continue;
        }
        let inner = i + 1 < n && is_punct(lx, src, i + 1, "!");
        let open = if inner { i + 2 } else { i + 1 };
        if open >= n || !is_punct(lx, src, open, "[") {
            i += 1;
            continue;
        }
        let close = match matching_bracket(src, lx, open) {
            Some(c) => c,
            None => return mask,
        };
        if !attr_matches(src, lx, open + 1, close, gate) {
            i = close + 1;
            continue;
        }
        if inner {
            for m in mask.iter_mut() {
                *m = true;
            }
            return mask;
        }
        let start = i;
        // Fold any further outer attributes into the region.
        let mut k = close + 1;
        while k + 1 < n && is_punct(lx, src, k, "#") && is_punct(lx, src, k + 1, "[") {
            match matching_bracket(src, lx, k + 1) {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        let end = consume_item(src, lx, k);
        for m in mask.iter_mut().take((end + 1).min(n)).skip(start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

fn is_punct(lx: &Lexed, src: &str, i: usize, what: &str) -> bool {
    lx.tokens[i].kind == TokenKind::Punct && lx.text(src, i) == what
}

/// Index of the `]` matching the `[` at `open`, counting all bracket
/// kinds so literals like `[0; 4]` inside attributes do not confuse it.
fn matching_bracket(src: &str, lx: &Lexed, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in open..lx.tokens.len() {
        if lx.tokens[i].kind != TokenKind::Punct {
            continue;
        }
        match lx.text(src, i) {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the attribute tokens in `(from..to)` are exactly the gate's
/// pattern. Deliberately exact: `cfg(not(test))` and `cfg(any(test, …))`
/// do NOT match, so negated gates are never masked out.
fn attr_matches(src: &str, lx: &Lexed, from: usize, to: usize, gate: Gate) -> bool {
    let texts: Vec<&str> = (from..to).map(|i| lx.text(src, i)).collect();
    match gate {
        Gate::Test => texts == ["cfg", "(", "test", ")"],
        Gate::FaultInject => texts == ["cfg", "(", "feature", "=", "\"fault-inject\"", ")"],
    }
}

/// Consumes one item/statement starting at `k`; returns the index of its
/// final token.
///
/// Angle brackets are tracked heuristically (a `<` preceded by an
/// identifier, `:` or another angle opens a generic list) only to decide
/// whether a `,` terminates the item — `fn f<T, U>()` must not end at the
/// comma inside its generic parameters. Over-counting merely delays
/// termination to the next `;`/`}`, which over-masks (conservative).
fn consume_item(src: &str, lx: &Lexed, k: usize) -> usize {
    let n = lx.tokens.len();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut i = k;
    while i < n {
        if lx.tokens[i].kind == TokenKind::Punct {
            match lx.text(src, i) {
                "{" | "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" if i > k => {
                    let prev = lx.text(src, i - 1);
                    if lx.tokens[i - 1].kind == TokenKind::Ident
                        || prev == ">"
                        || prev == ":"
                        || prev == "<"
                    {
                        angle += 1;
                    }
                }
                ">" if i > k => {
                    let prev = lx.text(src, i - 1);
                    if prev != "-" && prev != "=" && angle > 0 {
                        angle -= 1;
                    }
                }
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        // `} ;` (let/const with block initializer) and
                        // `} else` (gated if/else) continue the item.
                        if i + 1 < n && is_punct(lx, src, i + 1, ";") {
                            return i + 1;
                        }
                        if i + 1 < n && lx.text(src, i + 1) == "else" {
                            i += 1;
                            continue;
                        }
                        return i;
                    }
                }
                ";" if depth == 0 => return i,
                "," if depth == 0 && angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn masked_idents(src: &str, gate: Gate) -> Vec<String> {
        let lx = lex(src);
        let mask = gated_mask(src, &lx, gate);
        lx.tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| mask[*i] && t.kind == TokenKind::Ident)
            .map(|(i, _)| lx.text(src, i).to_string())
            .collect()
    }

    #[test]
    fn test_module_is_masked() {
        let src = "
fn live() { a(); }
#[cfg(test)]
mod tests {
    fn helper() { b(); }
}
fn also_live() { c(); }
";
        let ids = masked_idents(src, Gate::Test);
        assert!(ids.contains(&"helper".to_string()));
        assert!(!ids.contains(&"live".to_string()));
        assert!(!ids.contains(&"also_live".to_string()));
    }

    #[test]
    fn stacked_attributes_stay_inside_the_region() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { x(); }\nfn live() {}";
        let ids = masked_idents(src, Gate::Test);
        assert!(ids.contains(&"x".to_string()));
        assert!(!ids.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn prod() { y(); }";
        assert!(masked_idents(src, Gate::Test).is_empty());
    }

    #[test]
    fn gated_statement_with_block_initializer() {
        let src = r#"
fn f() {
    #[cfg(feature = "fault-inject")]
    let w = { fault_probe() };
    after();
}
"#;
        let ids = masked_idents(src, Gate::FaultInject);
        assert!(ids.contains(&"fault_probe".to_string()));
        assert!(!ids.contains(&"after".to_string()));
    }

    #[test]
    fn gated_struct_field_stops_at_comma() {
        let src = r#"
struct S {
    #[cfg(feature = "fault-inject")]
    faults: Option<FaultPlan>,
    normal: u32,
}
"#;
        let ids = masked_idents(src, Gate::FaultInject);
        assert!(ids.contains(&"FaultPlan".to_string()));
        assert!(!ids.contains(&"normal".to_string()));
    }

    #[test]
    fn gated_if_else_is_one_region() {
        let src = r#"
fn f() {
    #[cfg(test)]
    if cond { a() } else { b() }
    tail();
}
"#;
        let ids = masked_idents(src, Gate::Test);
        assert!(ids.contains(&"b".to_string()));
        assert!(!ids.contains(&"tail".to_string()));
    }

    #[test]
    fn generic_commas_do_not_end_the_region() {
        let src = "#[cfg(test)]\nfn pair<T, U>(a: T, b: U) { body(); }\nfn live() {}";
        let ids = masked_idents(src, Gate::Test);
        assert!(ids.contains(&"body".to_string()));
        assert!(!ids.contains(&"live".to_string()));
    }

    #[test]
    fn inner_attribute_masks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() { q(); }";
        let ids = masked_idents(src, Gate::Test);
        assert!(ids.contains(&"anything".to_string()));
    }
}
