//! The lint library: pattern matchers over the token stream.
//!
//! Each lint protects one invariant the annealer's correctness or
//! performance story depends on (see DESIGN.md §11):
//!
//! * **hot-path** — modules carrying a `// rowfpga-lint: hot-path` marker
//!   must not allocate in steady state (`Vec::new`, `vec![`, `.clone()`,
//!   `.collect()`, `.to_vec()`, `Box::new`, `format!`, `String::from`).
//!   Constructors may opt out with a `begin-allow`/`end-allow` region.
//! * **determinism** — core solver crates must not construct or iterate
//!   `HashMap`/`HashSet` (iteration order varies run to run, which would
//!   silently break bit-identical K-replica annealing), and must not read
//!   wall clocks or OS entropy (`Instant::now`, `SystemTime`,
//!   `thread_rng`).
//! * **panic** — `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in
//!   non-test library code are counted per crate against the committed
//!   ratchet in `lint-budget.toml`.
//! * **cfg-hygiene** — fault-injection hooks (`FaultPlan`,
//!   `InjectedFault`, `inject_fault`, any `fault_*` identifier) must sit
//!   inside `#[cfg(feature = "fault-inject")]`.
//! * **unsafe** — every `unsafe` token needs an adjacent `// SAFETY:`
//!   comment, and every lib crate must keep `#![forbid(unsafe_code)]`.

use crate::lexer::{lex, Directive, Lexed, TokenKind};
use crate::regions::{gated_mask, Gate};
use crate::report::Violation;

/// Which lint families apply to a file; decided per crate by the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileRules {
    /// Deny `HashMap`/`HashSet` (solver crates).
    pub determinism_collections: bool,
    /// Deny `Instant::now`/`SystemTime`/`thread_rng` (everything outside
    /// obs/cli/bench and the shims).
    pub determinism_time: bool,
    /// Count panic sites for the budget ratchet.
    pub count_panics: bool,
    /// Deny ungated fault hooks.
    pub cfg_hygiene: bool,
    /// Require `// SAFETY:` next to `unsafe`.
    pub unsafe_audit: bool,
}

/// Everything the engine learns from one file.
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Violations found (already filtered through allow directives).
    pub violations: Vec<Violation>,
    /// Non-test panic sites (unwrap/expect/panic!/unreachable!).
    pub panic_sites: usize,
    /// Whether the file contains `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Whether the file opted into the hot-path lint.
    pub hot_path: bool,
    /// Whether the file is a panic-reachability entry (`no-panic` marker).
    pub no_panic: bool,
    /// Whether the file opted into the durability typestate check.
    pub durable: bool,
    /// The allow table, kept for the interprocedural passes (taint,
    /// durability, locks honor the same directives).
    pub allows: Allows,
}

/// Per-file allow state assembled from the comment directives.
#[derive(Clone, Debug, Default)]
pub struct Allows {
    /// (lint, line) pairs from single-line `allow` directives; each
    /// covers its own line and the next.
    lines: Vec<(String, u32)>,
    /// (lint, from, to) inclusive line ranges from begin/end pairs.
    ranges: Vec<(String, u32, u32)>,
    /// Lints suppressed for the whole file.
    whole_file: Vec<String>,
}

impl Allows {
    /// Whether an allow directive suppresses `lint` at `line`.
    pub fn permits(&self, lint: &str, line: u32) -> bool {
        self.whole_file.iter().any(|l| l == lint)
            || self
                .lines
                .iter()
                .any(|(l, at)| l == lint && (line == *at || line == at + 1))
            || self
                .ranges
                .iter()
                .any(|(l, from, to)| l == lint && (*from..=*to).contains(&line))
    }
}

/// Runs every applicable lint over one source file.
pub fn analyze_source(file: &str, src: &str, rules: FileRules) -> FileAnalysis {
    analyze_lexed(file, src, &lex(src), rules)
}

/// [`analyze_source`] over an already-lexed file, so the engine can
/// share one token stream between the per-file lints and the
/// interprocedural passes.
pub fn analyze_lexed(file: &str, src: &str, lx: &Lexed, rules: FileRules) -> FileAnalysis {
    let test_mask = gated_mask(src, lx, Gate::Test);
    let gate_mask = if rules.cfg_hygiene {
        gated_mask(src, lx, Gate::FaultInject)
    } else {
        Vec::new()
    };
    let mut out = FileAnalysis {
        has_forbid_unsafe: has_forbid_unsafe(src, lx),
        ..FileAnalysis::default()
    };
    let allows = collect_allows(file, lx, &mut out);
    out.hot_path = lx
        .directives
        .iter()
        .any(|d| matches!(d.directive, Directive::HotPath));
    out.no_panic = lx
        .directives
        .iter()
        .any(|d| matches!(d.directive, Directive::NoPanic));
    out.durable = lx
        .directives
        .iter()
        .any(|d| matches!(d.directive, Directive::Durable));

    let push = |violations: &mut Vec<Violation>, lint: &str, line: u32, message: String| {
        if !allows.permits(lint, line) {
            violations.push(Violation {
                lint: lint.to_string(),
                file: file.to_string(),
                line,
                message,
                chain: Vec::new(),
            });
        }
    };

    let mut violations = Vec::new();
    for i in 0..lx.tokens.len() {
        if test_mask[i] {
            continue;
        }
        let line = lx.tokens[i].line;

        if out.hot_path {
            if let Some(what) = hot_path_pattern(src, lx, i) {
                push(
                    &mut violations,
                    "hot-path",
                    line,
                    format!(
                        "`{what}` allocates in a hot-path module; reuse scratch buffers \
                         or move this to a begin-allow(hot-path) constructor region"
                    ),
                );
            }
        }

        if rules.determinism_collections && lx.tokens[i].kind == TokenKind::Ident {
            let t = lx.text(src, i);
            if t == "HashMap" || t == "HashSet" {
                push(
                    &mut violations,
                    "determinism",
                    line,
                    format!(
                        "`{t}` has run-varying iteration order, which breaks replica \
                         determinism; use `BTreeMap`/`BTreeSet` or `route::FlatSet`"
                    ),
                );
            }
        }

        if rules.determinism_time {
            if let Some(what) = time_pattern(src, lx, i) {
                push(
                    &mut violations,
                    "determinism",
                    line,
                    format!(
                        "`{what}` reads wall-clock/OS entropy in a deterministic crate; \
                         thread time in from the caller or move it to obs/cli/bench"
                    ),
                );
            }
        }

        if rules.count_panics && panic_pattern(src, lx, i).is_some() {
            out.panic_sites += 1;
        }

        if rules.cfg_hygiene && !gate_mask[i] {
            if let Some(what) = injection_hook(src, lx, i) {
                push(
                    &mut violations,
                    "cfg-hygiene",
                    line,
                    format!(
                        "fault hook `{what}` outside `#[cfg(feature = \"fault-inject\")]`; \
                         gate it so production builds cannot reach injection code"
                    ),
                );
            }
        }

        if rules.unsafe_audit
            && lx.tokens[i].kind == TokenKind::Ident
            && lx.text(src, i) == "unsafe"
        {
            let documented = lx
                .safety_lines
                .iter()
                .any(|&l| l <= line && line.saturating_sub(l) <= 2);
            if !documented {
                push(
                    &mut violations,
                    "unsafe",
                    line,
                    "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                );
            }
        }
    }
    out.violations.extend(violations);
    out.allows = allows;
    out
}

/// Builds the allow table, reporting malformed directives and unbalanced
/// begin/end pairs as violations in their own right.
fn collect_allows(file: &str, lx: &Lexed, out: &mut FileAnalysis) -> Allows {
    let mut allows = Allows::default();
    let mut open: Vec<(String, u32)> = Vec::new();
    for d in &lx.directives {
        match &d.directive {
            Directive::HotPath | Directive::NoPanic | Directive::Durable => {}
            Directive::Allow { lint, .. } => allows.lines.push((lint.clone(), d.line)),
            Directive::AllowFile { lint, .. } => allows.whole_file.push(lint.clone()),
            Directive::BeginAllow { lint, .. } => open.push((lint.clone(), d.line)),
            Directive::EndAllow { lint } => match open.iter().rposition(|(l, _)| l == lint) {
                Some(p) => {
                    let (l, from) = open.remove(p);
                    allows.ranges.push((l, from, d.line));
                }
                None => out.violations.push(Violation {
                    lint: "directive".to_string(),
                    file: file.to_string(),
                    line: d.line,
                    message: format!("`end-allow({lint})` without a matching begin-allow"),
                    chain: Vec::new(),
                }),
            },
            Directive::Malformed { detail } => out.violations.push(Violation {
                lint: "directive".to_string(),
                file: file.to_string(),
                line: d.line,
                message: format!("malformed rowfpga-lint directive: {detail}"),
                chain: Vec::new(),
            }),
        }
    }
    for (lint, line) in open {
        out.violations.push(Violation {
            lint: "directive".to_string(),
            file: file.to_string(),
            line,
            message: format!("`begin-allow({lint})` is never closed by end-allow"),
            chain: Vec::new(),
        });
    }
    allows
}

pub(crate) fn tok<'a>(src: &'a str, lx: &Lexed, i: usize) -> Option<(&'a str, TokenKind)> {
    lx.tokens.get(i).map(|t| (lx.text(src, i), t.kind))
}

pub(crate) fn seq(src: &str, lx: &Lexed, i: usize, want: &[&str]) -> bool {
    want.iter()
        .enumerate()
        .all(|(k, w)| matches!(tok(src, lx, i + k), Some((t, _)) if t == *w))
}

/// Allocation patterns denied in hot-path modules; returns a display name.
fn hot_path_pattern(src: &str, lx: &Lexed, i: usize) -> Option<&'static str> {
    if seq(src, lx, i, &["Vec", ":", ":", "new"]) {
        return Some("Vec::new");
    }
    if seq(src, lx, i, &["vec", "!"]) {
        return Some("vec![");
    }
    if seq(src, lx, i, &["Box", ":", ":", "new"]) {
        return Some("Box::new");
    }
    if seq(src, lx, i, &["String", ":", ":", "from"]) {
        return Some("String::from");
    }
    if seq(src, lx, i, &["format", "!"]) {
        return Some("format!");
    }
    if seq(src, lx, i, &[".", "clone", "("]) {
        return Some(".clone()");
    }
    if seq(src, lx, i, &[".", "to_vec", "("]) {
        return Some(".to_vec()");
    }
    if seq(src, lx, i, &[".", "collect"]) {
        return Some(".collect()");
    }
    None
}

/// Wall-clock / entropy patterns denied in deterministic crates.
fn time_pattern(src: &str, lx: &Lexed, i: usize) -> Option<&'static str> {
    if seq(src, lx, i, &["Instant", ":", ":", "now"]) {
        return Some("Instant::now");
    }
    match tok(src, lx, i) {
        Some(("SystemTime", TokenKind::Ident)) => Some("SystemTime"),
        Some(("thread_rng", TokenKind::Ident)) => Some("thread_rng"),
        _ => None,
    }
}

/// Panic-site patterns counted by the budget ratchet.
fn panic_pattern(src: &str, lx: &Lexed, i: usize) -> Option<&'static str> {
    if seq(src, lx, i, &[".", "unwrap", "("]) {
        return Some(".unwrap()");
    }
    if seq(src, lx, i, &[".", "expect", "("]) {
        return Some(".expect(");
    }
    if seq(src, lx, i, &["panic", "!"]) {
        return Some("panic!");
    }
    if seq(src, lx, i, &["unreachable", "!"]) {
        return Some("unreachable!");
    }
    None
}

/// Fault-injection hook identifiers that must be feature-gated. Bare
/// variables named `fault` and the deliberately ungated checkpoint
/// crash-window type `WriteFault` are not hooks.
fn injection_hook<'a>(src: &'a str, lx: &Lexed, i: usize) -> Option<&'a str> {
    let (t, kind) = tok(src, lx, i)?;
    if kind != TokenKind::Ident {
        return None;
    }
    if t == "FaultPlan" || t == "InjectedFault" || t == "inject_fault" || t.starts_with("fault_") {
        return Some(t);
    }
    None
}

/// Whether the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(src: &str, lx: &Lexed) -> bool {
    (0..lx.tokens.len()).any(|i| {
        seq(
            src,
            lx,
            i,
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: FileRules = FileRules {
        determinism_collections: true,
        determinism_time: true,
        count_panics: true,
        cfg_hygiene: true,
        unsafe_audit: true,
    };

    fn lints_of(src: &str) -> Vec<String> {
        analyze_source("t.rs", src, ALL)
            .violations
            .iter()
            .map(|v| v.lint.clone())
            .collect()
    }

    #[test]
    fn hot_path_requires_the_marker() {
        let src = "fn f() { let v = Vec::new(); }";
        assert!(lints_of(src).is_empty());
        let marked = format!("// rowfpga-lint: hot-path\n{src}");
        assert_eq!(lints_of(&marked), vec!["hot-path"]);
    }

    #[test]
    fn hot_path_ignores_tests_strings_and_comments() {
        let src = r##"
// rowfpga-lint: hot-path
fn f() { step(); } // .clone() in a comment
fn msg() -> &'static str { "please .collect() calmly" }
#[cfg(test)]
mod tests {
    fn t() { let v: Vec<u32> = (0..4).collect(); let w = v.clone(); }
}
"##;
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn allow_region_covers_constructors() {
        let src = "
// rowfpga-lint: hot-path
// rowfpga-lint: begin-allow(hot-path) reason=one-time constructor
fn new() -> S { S { v: Vec::new() } }
// rowfpga-lint: end-allow(hot-path)
fn step(s: &S) { let t = s.v.clone(); }
";
        let v = analyze_source("t.rs", src, ALL).violations;
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn determinism_catches_collections_and_clocks() {
        let src = "
use std::collections::HashMap;
fn f() { let t = Instant::now(); }
";
        assert_eq!(lints_of(src), vec!["determinism", "determinism"]);
    }

    #[test]
    fn single_line_allow_covers_trailing_and_next_line() {
        let src = "
// rowfpga-lint: allow(determinism) reason=keys sorted before iteration
use std::collections::HashMap;
fn f() { let m: HashMap<u32, u32> = HashMap::new(); }
";
        // Only the directive's own+next line is covered; line 4 still fires.
        assert_eq!(lints_of(src).len(), 2);
    }

    #[test]
    fn panic_sites_counted_outside_tests_only() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g() { panic!("boom"); }
fn s() -> &'static str { ".unwrap() in a string" }
#[cfg(test)]
mod tests {
    fn t() { None::<u32>.unwrap(); unreachable!(); }
}
"#;
        assert_eq!(analyze_source("t.rs", src, ALL).panic_sites, 2);
    }

    #[test]
    fn cfg_hygiene_requires_the_feature_gate() {
        let bad = "fn f(s: &mut S) { s.fault_skew_worst(3.0); }";
        assert_eq!(lints_of(bad), vec!["cfg-hygiene"]);
        let good =
            "#[cfg(feature = \"fault-inject\")]\nfn f(s: &mut S) { s.fault_skew_worst(3.0); }";
        assert!(lints_of(good).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        assert_eq!(lints_of("fn f() { unsafe { g() } }"), vec!["unsafe"]);
        let good = "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}";
        assert!(lints_of(good).is_empty());
    }

    #[test]
    fn forbid_unsafe_detected() {
        assert!(
            analyze_source("t.rs", "#![forbid(unsafe_code)]\nfn f() {}", ALL).has_forbid_unsafe
        );
        assert!(!analyze_source("t.rs", "fn f() {}", ALL).has_forbid_unsafe);
    }

    #[test]
    fn malformed_and_unbalanced_directives_are_violations() {
        let src = "
// rowfpga-lint: allow(determinism)
// rowfpga-lint: begin-allow(hot-path) reason=never closed
// rowfpga-lint: end-allow(unsafe)
fn f() {}
";
        let lints = lints_of(src);
        assert_eq!(lints, vec!["directive", "directive", "directive"]);
    }
}
