//! rowfpga-lint: the workspace's domain lint engine.
//!
//! `cargo clippy` enforces Rust idiom; this crate enforces *rowfpga*
//! invariants — the properties the annealer's performance and
//! replica-determinism guarantees rest on, which no general-purpose tool
//! knows about:
//!
//! * hot-path modules stay allocation-free ([`lints`] — the PR 3 move
//!   cascade speedup survives only if nobody reintroduces a `.clone()`);
//! * solver crates stay deterministic (no `HashMap` iteration, no wall
//!   clocks — bit-identical K-replica annealing is a correctness
//!   property);
//! * panic sites in library code only ever shrink ([`budget`]);
//! * fault-injection hooks stay feature-gated;
//! * `unsafe` stays forbidden (and audited where fixtures use it).
//!
//! Like the rand/proptest/criterion shims, the engine is dependency-free
//! and offline-safe: its own lexer ([`lexer`]), no `syn`, no registry.
//! Run it as `rowfpga lint`; see DESIGN.md §11 for the lint catalogue and
//! the marker/allow-list grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod regions;
pub mod report;

use std::fmt;
use std::fs;
use std::path::Path;

use budget::{Budget, BudgetError};
use lints::{analyze_source, FileRules};
use model::WalkError;
use report::{LintReport, Violation};

/// Crates whose code must never construct or iterate hash collections:
/// everything that runs inside (or feeds state to) the anneal loop.
const DETERMINISTIC_CRATES: &[&str] = &[
    "rowfpga-anneal",
    "rowfpga-core",
    "rowfpga-netlist",
    "rowfpga-place",
    "rowfpga-route",
    "rowfpga-timing",
];

/// Crates allowed to read wall clocks and OS entropy wholesale: the
/// benchmark harness, the offline shims (the criterion shim *is* a
/// timer), and the service daemon — deadlines, turnaround accounting and
/// retry pacing are wall-clock phenomena by nature, and nothing the
/// daemon measures feeds back into the solver (seeds and budgets cross
/// that boundary as explicit job config). The observability layer and
/// the CLI are deliberately NOT here — their few legitimate clock sites
/// (span timing, tail ETA pacing) carry reasoned
/// `begin-allow(determinism)` regions instead, so a stray clock in new
/// obs/cli code still fails the lint.
const WALL_CLOCK_CRATES: &[&str] = &[
    "rowfpga-bench",
    "rand",
    "proptest",
    "criterion",
    "rowfpga-serve",
];

/// Engine options.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Rewrite `lint-budget.toml` with the observed (never higher)
    /// counts instead of failing on improvements.
    pub fix_budget: bool,
}

/// Fatal engine failures (I/O and upward ratchets). Lint *findings* are
/// not errors — they come back inside the [`LintReport`].
#[derive(Debug)]
pub enum EngineError {
    /// The workspace could not be walked or a file could not be read.
    Walk(WalkError),
    /// The budget file is unreadable or `--fix-budget` found an increase.
    Budget(BudgetError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Walk(e) => write!(f, "{e}"),
            EngineError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Walk(e) => Some(e),
            EngineError::Budget(e) => Some(e),
        }
    }
}

impl From<WalkError> for EngineError {
    fn from(e: WalkError) -> Self {
        EngineError::Walk(e)
    }
}

impl From<BudgetError> for EngineError {
    fn from(e: BudgetError) -> Self {
        EngineError::Budget(e)
    }
}

/// The rules the engine applies to files of the named crate.
pub fn rules_for(crate_name: &str) -> FileRules {
    FileRules {
        determinism_collections: DETERMINISTIC_CRATES.contains(&crate_name),
        determinism_time: !WALL_CLOCK_CRATES.contains(&crate_name),
        count_panics: true,
        cfg_hygiene: true,
        unsafe_audit: true,
    }
}

/// Lints the whole workspace under `root`.
///
/// # Errors
///
/// Returns [`EngineError`] on I/O failures or (with
/// [`Options::fix_budget`]) an attempted upward ratchet. Lint violations
/// are reported in the returned [`LintReport`], not as errors.
pub fn run_repo(root: &Path, opts: Options) -> Result<LintReport, EngineError> {
    let ws = model::discover(root)?;
    let mut report = LintReport {
        crates: ws.crates.len(),
        ..LintReport::default()
    };

    for krate in &ws.crates {
        let rules = rules_for(&krate.name);
        let mut crate_panics = 0usize;
        for rel in &krate.src_files {
            let path = root.join(rel);
            let src = fs::read_to_string(&path).map_err(|source| WalkError {
                path: path.clone(),
                source,
            })?;
            let label = rel.to_string_lossy().replace('\\', "/");
            let analysis = analyze_source(&label, &src, rules);
            report.files += 1;
            if analysis.hot_path {
                report.hot_path_files += 1;
            }
            crate_panics += analysis.panic_sites;
            if rel.file_name().is_some_and(|f| f == "lib.rs") && !analysis.has_forbid_unsafe {
                report.violations.push(Violation {
                    lint: "forbid-unsafe".to_string(),
                    file: label.clone(),
                    line: 0,
                    message: format!(
                        "crate {} has dropped `#![forbid(unsafe_code)]` from its lib.rs",
                        krate.name
                    ),
                });
            }
            report.violations.extend(analysis.violations);
        }
        report.panic_counts.insert(krate.name.clone(), crate_panics);
    }

    // The panic ratchet: compare against (or rewrite) lint-budget.toml.
    let budget_path = root.join("lint-budget.toml");
    let committed = match fs::read_to_string(&budget_path) {
        Ok(text) => Some(Budget::parse(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(source) => {
            return Err(WalkError {
                path: budget_path,
                source,
            }
            .into())
        }
    };
    if opts.fix_budget {
        let next = committed
            .unwrap_or_default()
            .ratcheted(&report.panic_counts)?;
        fs::write(&budget_path, next.render()).map_err(|source| WalkError {
            path: budget_path.clone(),
            source,
        })?;
    } else {
        match committed {
            None => report.violations.push(Violation {
                lint: "panic-budget".to_string(),
                file: "lint-budget.toml".to_string(),
                line: 0,
                message: "missing lint-budget.toml; run `rowfpga lint --fix-budget` to create it"
                    .to_string(),
            }),
            Some(budget) => {
                for problem in budget.check(&report.panic_counts) {
                    report.violations.push(Violation {
                        lint: "panic-budget".to_string(),
                        file: "lint-budget.toml".to_string(),
                        line: 0,
                        message: problem,
                    });
                }
            }
        }
    }
    Ok(report)
}
