//! rowfpga-lint: the workspace's domain lint engine.
//!
//! `cargo clippy` enforces Rust idiom; this crate enforces *rowfpga*
//! invariants — the properties the annealer's performance and
//! replica-determinism guarantees rest on, which no general-purpose tool
//! knows about:
//!
//! * hot-path modules stay allocation-free ([`lints`] — the PR 3 move
//!   cascade speedup survives only if nobody reintroduces a `.clone()`);
//! * solver crates stay deterministic (no `HashMap` iteration, no wall
//!   clocks — bit-identical K-replica annealing is a correctness
//!   property);
//! * panic sites in library code only ever shrink ([`budget`]);
//! * fault-injection hooks stay feature-gated;
//! * `unsafe` stays forbidden (and audited where fixtures use it).
//!
//! On top of the per-file token lints sits a workspace-level analyzer: a
//! hand-rolled item parser ([`items`]) feeds a cross-crate call graph
//! ([`callgraph`]), over which four interprocedural passes run —
//! determinism taint and panic reachability ([`taint`]), durability
//! ordering ([`typestate`]), and lock discipline ([`locks`]). Taint and
//! reachability gate through the two-way budget ratchet; durability and
//! locks report directly.
//!
//! Like the rand/proptest/criterion shims, the engine is dependency-free
//! and offline-safe: its own lexer ([`lexer`]), no `syn`, no registry.
//! Run it as `rowfpga lint`; see DESIGN.md §11 and §14 for the lint
//! catalogue and the marker/allow-list grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod model;
pub mod regions;
pub mod report;
pub mod taint;
pub mod typestate;

use std::fmt;
use std::fs;
use std::path::Path;

use budget::{Budget, BudgetError, Observed};
use callgraph::FileFns;
use items::ParsedFile;
use lexer::Lexed;
use lints::{analyze_lexed, Allows, FileRules};
use model::WalkError;
use regions::{gated_mask, Gate};
use report::{LintReport, Violation};

/// Crates whose code must never construct or iterate hash collections:
/// everything that runs inside (or feeds state to) the anneal loop.
/// These same crates are the *sink domain* of the taint analysis.
const DETERMINISTIC_CRATES: &[&str] = &[
    "rowfpga-anneal",
    "rowfpga-core",
    "rowfpga-netlist",
    "rowfpga-place",
    "rowfpga-route",
    "rowfpga-timing",
];

/// Crates allowed to read wall clocks and OS entropy wholesale: the
/// benchmark harness, the offline shims (the criterion shim *is* a
/// timer), and the service daemon — deadlines, turnaround accounting and
/// retry pacing are wall-clock phenomena by nature, and nothing the
/// daemon measures feeds back into the solver (seeds and budgets cross
/// that boundary as explicit job config). The observability layer and
/// the CLI are deliberately NOT here — their few legitimate clock sites
/// (span timing, tail ETA pacing) carry reasoned
/// `begin-allow(determinism)` regions instead, so a stray clock in new
/// obs/cli code still fails the lint.
const WALL_CLOCK_CRATES: &[&str] = &[
    "rowfpga-bench",
    "rand",
    "proptest",
    "criterion",
    "rowfpga-serve",
];

/// How many detailed chain violations to surface per over-budget crate
/// (the count tables carry the full totals).
const DETAIL_LIMIT: usize = 3;

/// Engine options.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Rewrite `lint-budget.toml` with the observed (never higher)
    /// counts instead of failing on improvements.
    pub fix_budget: bool,
}

/// One source file with everything the interprocedural passes need.
#[derive(Debug)]
pub struct Unit {
    /// Owning crate package name.
    pub krate: String,
    /// Workspace-relative path label.
    pub label: String,
    /// File contents.
    pub src: String,
    /// Token stream.
    pub lx: Lexed,
    /// Per-token `#[cfg(test)]` mask.
    pub test_mask: Vec<bool>,
    /// Allow directives, shared with the interprocedural passes.
    pub allows: Allows,
    /// Panic-reachability entry file (`hot-path` or `no-panic` marker).
    pub entry: bool,
    /// Durability typestate opt-in (`durable` marker).
    pub durable: bool,
}

/// Fatal engine failures (I/O and upward ratchets). Lint *findings* are
/// not errors — they come back inside the [`LintReport`].
#[derive(Debug)]
pub enum EngineError {
    /// The workspace could not be walked or a file could not be read.
    Walk(WalkError),
    /// The budget file is unreadable or `--fix-budget` found an increase.
    Budget(BudgetError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Walk(e) => write!(f, "{e}"),
            EngineError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Walk(e) => Some(e),
            EngineError::Budget(e) => Some(e),
        }
    }
}

impl From<WalkError> for EngineError {
    fn from(e: WalkError) -> Self {
        EngineError::Walk(e)
    }
}

impl From<BudgetError> for EngineError {
    fn from(e: BudgetError) -> Self {
        EngineError::Budget(e)
    }
}

/// The rules the engine applies to files of the named crate.
pub fn rules_for(crate_name: &str) -> FileRules {
    FileRules {
        determinism_collections: DETERMINISTIC_CRATES.contains(&crate_name),
        determinism_time: !WALL_CLOCK_CRATES.contains(&crate_name),
        count_panics: true,
        cfg_hygiene: true,
        unsafe_audit: true,
    }
}

/// Every lint family `explain` can describe, for `--explain` help text.
pub const EXPLAINABLE: &[&str] = &[
    "hot-path",
    "determinism",
    "taint",
    "reachability",
    "durability",
    "locks",
    "panic-budget",
    "cfg-hygiene",
    "unsafe",
];

/// One-paragraph explanations for `rowfpga lint --explain <LINT>`.
/// Returns `None` for unknown lint names.
pub fn explain(lint: &str) -> Option<&'static str> {
    Some(match lint {
        "hot-path" => {
            "Modules marked `// rowfpga-lint: hot-path` must not allocate in steady \
             state (Vec::new, vec![, .clone(), .collect(), .to_vec(), Box::new, \
             format!, String::from). The PR 3 move-cascade speedup exists because the \
             inner loop reuses scratch buffers; one stray .clone() erases it. \
             Constructors opt out with begin-allow(hot-path)/end-allow regions."
        }
        "determinism" => {
            "Solver crates (anneal/core/netlist/place/route/timing) may not construct \
             or iterate HashMap/HashSet (run-varying order breaks bit-identical \
             K-replica annealing) nor read wall clocks or OS entropy (Instant::now, \
             SystemTime, thread_rng). Thread time and randomness in from the caller."
        }
        "taint" => {
            "The interprocedural form of `determinism`: a wall-clock read, entropy \
             source, or hash-order iteration anywhere in the workspace taints every \
             function that can reach it through the call graph. A finding fires at \
             the boundary — the solver/digest function whose call edge crosses into \
             tainted territory — with the full chain to the source. Counts gate via \
             the [taint] table in lint-budget.toml; bless deliberate sites with \
             `allow(taint) reason=…` at the call, or `allow(determinism)` at the \
             source if the source itself is benign."
        }
        "reachability" => {
            "Functions in `hot-path` and `no-panic` files are entry points; every \
             panic site (.unwrap/.expect/panic!/unreachable!/slice indexing) \
             reachable from them through any call path is counted per entry crate \
             against the [reachability] table in lint-budget.toml. There is no inline \
             allow — like the panic budget, the only path is the two-way ratchet: \
             counts may never rise, and improvements must be locked in with \
             --fix-budget."
        }
        "durability" => {
            "Files marked `// rowfpga-lint: durable` (the snapshot store, the job \
             spool) must follow write-temp → fsync → rename: a rename that publishes \
             an unsynced write can leave a torn file under the durable name after a \
             crash. Calls to transitively-fsyncing helpers (write_atomic) count as \
             sync events; pure renames (promote, quarantine) never trigger. fs::write \
             is flagged outright — it has no handle to sync."
        }
        "locks" => {
            "Lock acquisitions must form a consistent global order (a cycle in the \
             acquired-while-holding graph is a deadlock waiting for the right \
             interleaving), and no lock may be held across a blocking call — fsync, \
             socket I/O, thread join, sleep, barrier wait — directly or through any \
             callee. Condvar::wait(guard) is exempt (it releases the lock). \
             Deliberate hold-across-fsync sites carry `allow(locks) reason=…`."
        }
        "panic-budget" => {
            "Non-test panic sites per crate are counted against the [panics] table in \
             lint-budget.toml. The ratchet is two-way: exceeding the budget fails, \
             and beating it also fails until `rowfpga lint --fix-budget` locks the \
             improvement in — the committed file never drifts from reality."
        }
        "cfg-hygiene" => {
            "Fault-injection hooks (FaultPlan, InjectedFault, inject_fault, fault_*) \
             must sit inside #[cfg(feature = \"fault-inject\")] so production builds \
             cannot reach injection code."
        }
        "unsafe" => {
            "Every `unsafe` token needs an adjacent `// SAFETY:` comment, and every \
             lib crate must keep #![forbid(unsafe_code)]."
        }
        _ => return None,
    })
}

/// Lints the whole workspace under `root`.
///
/// # Errors
///
/// Returns [`EngineError`] on I/O failures or (with
/// [`Options::fix_budget`]) an attempted upward ratchet. Lint violations
/// are reported in the returned [`LintReport`], not as errors.
pub fn run_repo(root: &Path, opts: Options) -> Result<LintReport, EngineError> {
    let ws = model::discover(root)?;
    let mut report = LintReport {
        crates: ws.crates.len(),
        ..LintReport::default()
    };

    // Pass 1: per-file token lints, while accumulating the parsed units
    // the interprocedural passes run over.
    let mut units: Vec<Unit> = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    for krate in &ws.crates {
        let rules = rules_for(&krate.name);
        let mut crate_panics = 0usize;
        for rel in &krate.src_files {
            let path = root.join(rel);
            let src = fs::read_to_string(&path).map_err(|source| WalkError {
                path: path.clone(),
                source,
            })?;
            let label = rel.to_string_lossy().replace('\\', "/");
            let lx = lexer::lex(&src);
            let analysis = analyze_lexed(&label, &src, &lx, rules);
            report.files += 1;
            if analysis.hot_path {
                report.hot_path_files += 1;
            }
            crate_panics += analysis.panic_sites;
            if rel.file_name().is_some_and(|f| f == "lib.rs") && !analysis.has_forbid_unsafe {
                report.violations.push(Violation {
                    lint: "forbid-unsafe".to_string(),
                    file: label.clone(),
                    line: 0,
                    message: format!(
                        "crate {} has dropped `#![forbid(unsafe_code)]` from its lib.rs",
                        krate.name
                    ),
                    chain: Vec::new(),
                });
            }
            report.violations.extend(analysis.violations);

            let in_src = label.rsplit_once("src/").map_or(label.as_str(), |(_, t)| t);
            let mods = items::file_module_path(in_src);
            let test_mask = gated_mask(&src, &lx, Gate::Test);
            parsed.push(items::parse_file(&src, &lx, &mods));
            units.push(Unit {
                krate: krate.name.clone(),
                label,
                src,
                lx,
                test_mask,
                allows: analysis.allows,
                entry: analysis.hot_path || analysis.no_panic,
                durable: analysis.durable,
            });
        }
        report.panic_counts.insert(krate.name.clone(), crate_panics);
    }

    // Pass 2: the call graph and the four interprocedural analyses.
    let ffns: Vec<FileFns<'_>> = units
        .iter()
        .zip(&parsed)
        .enumerate()
        .map(|(i, (u, p))| FileFns {
            file: i,
            label: &u.label,
            krate: &u.krate,
            parsed: p,
            test_mask: &u.test_mask,
        })
        .collect();
    let graph = callgraph::build(&ffns);

    let taint_result = taint::taint(&graph, &units, DETERMINISTIC_CRATES);
    report.taint_counts = taint_result.counts.clone();
    report.reach_counts = taint::reachability_counts(&graph, &units);
    report.violations.extend(typestate::check(&graph, &units));
    report.violations.extend(locks::check(&graph, &units));

    // Pass 3: the budget ratchet — compare against (or rewrite)
    // lint-budget.toml, then surface chain details for over-budget
    // taint/reachability crates.
    let observed = Observed {
        panics: report.panic_counts.clone(),
        taint: report.taint_counts.clone(),
        reachability: report.reach_counts.clone(),
    };
    let budget_path = root.join("lint-budget.toml");
    let committed = match fs::read_to_string(&budget_path) {
        Ok(text) => Some(Budget::parse(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(source) => {
            return Err(WalkError {
                path: budget_path,
                source,
            }
            .into())
        }
    };
    if opts.fix_budget {
        let next = committed.unwrap_or_default().ratcheted(&observed)?;
        fs::write(&budget_path, next.render()).map_err(|source| WalkError {
            path: budget_path.clone(),
            source,
        })?;
        report.sort();
        return Ok(report);
    }
    match &committed {
        None => report.violations.push(Violation {
            lint: "panic-budget".to_string(),
            file: "lint-budget.toml".to_string(),
            line: 0,
            message: "missing lint-budget.toml; run `rowfpga lint --fix-budget` to create it"
                .to_string(),
            chain: Vec::new(),
        }),
        Some(b) => {
            for problem in b.check(&observed) {
                let (lint, strip) = if problem.starts_with("[taint] ") {
                    ("taint-budget", "[taint] ")
                } else if problem.starts_with("[reachability] ") {
                    ("reachability-budget", "[reachability] ")
                } else {
                    ("panic-budget", "[panics] ")
                };
                let message = problem
                    .strip_prefix(strip)
                    .map_or(problem.as_str(), |m| m)
                    .to_string();
                report.violations.push(Violation {
                    lint: lint.to_string(),
                    file: "lint-budget.toml".to_string(),
                    line: 0,
                    message,
                    chain: Vec::new(),
                });
            }
        }
    }
    // Chain details for crates over (or missing from) their taint /
    // reachability ceilings, so the JSON and terminal output show *why*.
    let ceiling = |table: &dyn Fn(&Budget) -> &std::collections::BTreeMap<String, usize>,
                   krate: &str| {
        committed
            .as_ref()
            .and_then(|b| table(b).get(krate).copied())
    };
    for (krate, &count) in &report.taint_counts {
        if count > ceiling(&|b: &Budget| &b.taint, krate).unwrap_or(0) {
            report.violations.extend(
                taint_result
                    .findings
                    .iter()
                    .filter(|f| &f.krate == krate)
                    .take(DETAIL_LIMIT)
                    .map(|f| f.violation.clone()),
            );
        }
    }
    for (krate, &count) in &report.reach_counts {
        if count > ceiling(&|b: &Budget| &b.reachability, krate).unwrap_or(0) {
            report.violations.extend(taint::reachability_details(
                &graph,
                &units,
                krate,
                DETAIL_LIMIT,
            ));
        }
    }
    report.sort();
    Ok(report)
}
