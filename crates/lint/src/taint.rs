//! Interprocedural determinism taint and panic reachability.
//!
//! **Taint** finds wall-clock / entropy / hash-order *sources* anywhere
//! in the workspace and walks the call graph backwards: any function
//! that can reach a source is tainted. A finding is reported at the
//! *boundary* — a function in the sink domain (solver crates, digest
//! code) whose call edge crosses into tainted territory — so one leak
//! produces one finding at its entry point, not a cascade up every
//! caller. A source suppressed by `allow(determinism)` is asserted
//! benign and does not taint; a boundary call can be blessed with
//! `allow(taint) reason=…`.
//!
//! **Reachability** turns the panic budget into a path-aware guarantee:
//! from every non-test function in a `hot-path` or `no-panic` file, walk
//! the call graph forward and count the distinct panic sites (unwrap /
//! expect / panic! / unreachable! / slice indexing) any path can reach.
//! The per-crate counts gate via the `[reachability]` budget table;
//! there is deliberately no inline allow — like panic counts, the only
//! way a site becomes acceptable is the committed, two-way ratchet.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{reach_forward, reach_reverse, Graph};
use crate::lexer::TokenKind;
use crate::lints::seq;
use crate::report::Violation;
use crate::Unit;

/// One taint finding plus the sink crate it counts against.
#[derive(Clone, Debug)]
pub struct TaintFinding {
    /// The sink crate whose `[taint]` count this increments.
    pub krate: String,
    /// The boundary-call violation, chain included.
    pub violation: Violation,
}

/// Taint analysis output.
#[derive(Clone, Debug, Default)]
pub struct TaintResult {
    /// Leak count per sink crate (every sink crate present, 0 when clean).
    pub counts: BTreeMap<String, usize>,
    /// The boundary findings behind the counts.
    pub findings: Vec<TaintFinding>,
}

/// A determinism source pattern at token `i`, if any.
fn source_pattern(src: &str, unit: &Unit, i: usize) -> Option<&'static str> {
    let lx = &unit.lx;
    if seq(src, lx, i, &["Instant", ":", ":", "now"]) {
        return Some("Instant::now");
    }
    if seq(src, lx, i, &["thread", ":", ":", "current"]) {
        return Some("thread::current");
    }
    if lx.tokens[i].kind != TokenKind::Ident {
        return None;
    }
    match lx.text(src, i) {
        "SystemTime" => Some("SystemTime"),
        "thread_rng" => Some("thread_rng"),
        "HashMap" => Some("HashMap"),
        "HashSet" => Some("HashSet"),
        "RandomState" => Some("RandomState"),
        "DefaultHasher" => Some("DefaultHasher"),
        "ThreadId" => Some("ThreadId"),
        _ => None,
    }
}

/// Finds the first unsuppressed determinism source in a function body.
fn direct_source(unit: &Unit, body: (usize, usize)) -> Option<(&'static str, u32)> {
    for i in body.0..=body.1.min(unit.lx.tokens.len().saturating_sub(1)) {
        if unit.test_mask[i] {
            continue;
        }
        if let Some(what) = source_pattern(&unit.src, unit, i) {
            let line = unit.lx.tokens[i].line;
            if !unit.allows.permits("determinism", line) {
                return Some((what, line));
            }
        }
    }
    None
}

/// Whether a function belongs to the taint sink domain.
fn in_sink_domain(krate: &str, fn_name: &str, sink_crates: &[&str]) -> bool {
    sink_crates.contains(&krate) || fn_name.contains("digest")
}

/// Runs the determinism taint analysis.
pub fn taint(g: &Graph, units: &[Unit], sink_crates: &[&str]) -> TaintResult {
    let mut out = TaintResult::default();
    for unit in units {
        if sink_crates.contains(&unit.krate.as_str()) {
            out.counts.entry(unit.krate.clone()).or_insert(0);
        }
    }

    // Seed functions: those containing an unsuppressed source.
    let mut seed: Vec<Option<(&'static str, u32)>> = Vec::with_capacity(g.fns.len());
    let mut seeds = Vec::new();
    for (fi, info) in g.fns.iter().enumerate() {
        let s = direct_source(&units[info.file], info.def.body);
        if s.is_some() {
            seeds.push(fi);
        }
        seed.push(s);
    }
    // next[f] = hop toward the nearest source (reverse reachability).
    let next = reach_reverse(g, &seeds);
    let tainted = |f: usize| seed[f].is_some() || next[f].is_some();

    for (fi, info) in g.fns.iter().enumerate() {
        if info.is_test || !in_sink_domain(&info.krate, &info.def.name, sink_crates) {
            continue;
        }
        if seed[fi].is_some() {
            continue; // the direct determinism lint owns this function
        }
        let mut reported: BTreeSet<usize> = BTreeSet::new();
        for e in &g.edges[fi] {
            let gi = e.callee;
            if !tainted(gi) || !reported.insert(gi) {
                continue;
            }
            // Boundary: the callee is itself a source, or sits outside
            // the sink domain (interior sink-domain callees get reported
            // at their own boundary edge instead).
            let callee = &g.fns[gi];
            if seed[gi].is_none() && in_sink_domain(&callee.krate, &callee.def.name, sink_crates) {
                continue;
            }
            if units[info.file].allows.permits("taint", e.line) {
                continue;
            }
            // Chain: this call edge, then hops toward the source.
            let mut chain = vec![format!(
                "{} ({}:{})",
                info.display(),
                info.file_label,
                info.def.line
            )];
            chain.push(format!(
                "{} (called at {}:{})",
                callee.display(),
                info.file_label,
                e.line
            ));
            let mut cur = gi;
            let mut guard = 0;
            while seed[cur].is_none() && guard < g.fns.len() {
                guard += 1;
                let Some((hop, line)) = next[cur] else { break };
                chain.push(format!(
                    "{} (called at {}:{})",
                    g.fns[hop].display(),
                    g.fns[cur].file_label,
                    line
                ));
                cur = hop;
            }
            let (what, src_line) = seed[cur].unwrap_or(("a determinism source", 0));
            // Digest fns outside the solver crates count against their
            // own crate, same as solver-crate boundaries.
            let sink_crate = info.krate.clone();
            *out.counts.entry(sink_crate.clone()).or_insert(0) += 1;
            out.findings.push(TaintFinding {
                krate: sink_crate,
                violation: Violation {
                    lint: "taint".to_string(),
                    file: info.file_label.clone(),
                    line: e.line,
                    message: format!(
                        "`{}` transitively reaches `{}` ({}:{}); thread the value \
                         in from the caller or add `allow(taint) reason=…` here",
                        info.display(),
                        what,
                        g.fns[cur].file_label,
                        src_line,
                    ),
                    chain,
                },
            });
        }
    }
    out
}

/// A panic-site pattern at token `i` of `unit`, if any: the four panic
/// forms plus `x[i]` slice/array indexing (a `[` whose previous token
/// ends an expression).
fn panic_site(src: &str, unit: &Unit, i: usize) -> Option<&'static str> {
    let lx = &unit.lx;
    if seq(src, lx, i, &[".", "unwrap", "("]) {
        return Some(".unwrap()");
    }
    if seq(src, lx, i, &[".", "expect", "("]) {
        return Some(".expect(");
    }
    if seq(src, lx, i, &["panic", "!"]) {
        return Some("panic!");
    }
    if seq(src, lx, i, &["unreachable", "!"]) {
        return Some("unreachable!");
    }
    if lx.text(src, i) == "[" && i > 0 {
        let prev = &lx.tokens[i - 1];
        let expr_end = match prev.kind {
            TokenKind::Ident => true,
            _ => {
                let t = lx.text(src, i - 1);
                t == ")" || t == "]"
            }
        };
        if expr_end {
            return Some("[idx]");
        }
    }
    None
}

/// The panic sites inside one function body, as (file, line, what).
fn sites_in(g: &Graph, units: &[Unit], fi: usize) -> Vec<(String, u32, &'static str)> {
    let info = &g.fns[fi];
    let unit = &units[info.file];
    let mut out = Vec::new();
    let hi = info.def.body.1.min(unit.lx.tokens.len().saturating_sub(1));
    for i in info.def.body.0..=hi {
        if unit.test_mask[i] {
            continue;
        }
        if let Some(what) = panic_site(&unit.src, unit, i) {
            out.push((info.file_label.clone(), unit.lx.tokens[i].line, what));
        }
    }
    out
}

/// Entry functions (non-test fns in `hot-path` / `no-panic` files),
/// grouped by crate.
fn entries_by_crate(g: &Graph, units: &[Unit]) -> BTreeMap<String, Vec<usize>> {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (fi, info) in g.fns.iter().enumerate() {
        if !info.is_test && units[info.file].entry {
            map.entry(info.krate.clone()).or_default().push(fi);
        }
    }
    map
}

/// Counts distinct reachable panic sites per entry crate.
pub fn reachability_counts(g: &Graph, units: &[Unit]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for (krate, entries) in entries_by_crate(g, units) {
        let from = reach_forward(g, &entries);
        let mut sites: BTreeSet<(String, u32)> = BTreeSet::new();
        let reached = |fi: usize| entries.contains(&fi) || from[fi].is_some();
        for fi in 0..g.fns.len() {
            if g.fns[fi].is_test || !reached(fi) {
                continue;
            }
            for (file, line, _) in sites_in(g, units, fi) {
                sites.insert((file, line));
            }
        }
        counts.insert(krate, sites.len());
    }
    counts
}

/// Builds up to `limit` detailed reachability violations (with call
/// chains) for one over-budget entry crate.
pub fn reachability_details(
    g: &Graph,
    units: &[Unit],
    krate: &str,
    limit: usize,
) -> Vec<Violation> {
    let entries = entries_by_crate(g, units).remove(krate).unwrap_or_default();
    if entries.is_empty() {
        return Vec::new();
    }
    let from = reach_forward(g, &entries);
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for (fi, hop) in from.iter().enumerate() {
        if out.len() >= limit {
            break;
        }
        let reached = entries.contains(&fi) || hop.is_some();
        if g.fns[fi].is_test || !reached {
            continue;
        }
        for (file, line, what) in sites_in(g, units, fi) {
            if out.len() >= limit || !seen.insert((file.clone(), line)) {
                continue;
            }
            // Chain from some entry down to the panicking function.
            let next = reach_reverse(g, &[fi]);
            let entry = entries
                .iter()
                .copied()
                .find(|&e| e == fi || next[e].is_some())
                .unwrap_or(fi);
            let mut chain = Vec::new();
            let mut cur = entry;
            chain.push(format!(
                "{} ({}:{})",
                g.fns[cur].display(),
                g.fns[cur].file_label,
                g.fns[cur].def.line
            ));
            let mut guard = 0;
            while cur != fi && guard < g.fns.len() {
                guard += 1;
                let Some((hop, hline)) = next[cur] else { break };
                chain.push(format!(
                    "{} (called at {}:{})",
                    g.fns[hop].display(),
                    g.fns[cur].file_label,
                    hline
                ));
                cur = hop;
            }
            out.push(Violation {
                lint: "reachability".to_string(),
                file: file.clone(),
                line,
                message: format!(
                    "`{what}` is reachable from {krate} entry `{}`; convert the \
                     call path to typed errors or let-else",
                    g.fns[entry].display()
                ),
                chain,
            });
        }
    }
    out
}
