//! Lock discipline: consistent acquisition order and no blocking calls
//! while a lock is held.
//!
//! Acquisitions are found syntactically (`x.lock()` and
//! `lock_ignoring_poison(&x)`-style helpers — any `*lock*` function
//! taking `&receiver`), named by the receiver's last path segment, and
//! given a hold range: a `let`-bound guard is held until `drop(guard)`
//! or the end of the function; an unbound temporary until the end of its
//! statement. Within a hold range the pass records
//!
//! * **order edges** — acquiring `b` while `a` is held (directly, or by
//!   calling a function whose transitive acquire-set contains `b`). A
//!   cycle in the resulting graph means two call paths take the same
//!   pair of locks in opposite orders: a deadlock waiting for the right
//!   interleaving.
//! * **blocking-under-lock** — fsync, socket I/O, thread join, sleep, or
//!   barrier waits (directly, or via a call to a transitively-blocking
//!   function) while any lock is held. `Condvar::wait(guard)` is exempt:
//!   it releases the lock while parked.
//!
//! Deliberate sites (the daemon persists state transitions to the spool
//! *before* acknowledging, by design) carry `allow(locks)` regions.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{reach_reverse, Graph};
use crate::lexer::TokenKind;
use crate::lints::seq;
use crate::report::Violation;
use crate::Unit;

/// One lock acquisition inside a function body.
struct Acquire {
    /// Lock name (receiver's last path segment).
    name: String,
    /// Token index of the acquisition.
    tok: usize,
    /// 1-based line.
    line: u32,
    /// Last token index of the hold range.
    end: usize,
}

/// Blocking-call patterns; returns a display label.
fn blocking_at(src: &str, unit: &Unit, i: usize) -> Option<&'static str> {
    let lx = &unit.lx;
    for (pat, label) in [
        (&[".", "sync_all", "("][..], ".sync_all()"),
        (&[".", "sync_data", "("][..], ".sync_data()"),
        (&[".", "accept", "("][..], ".accept()"),
        (&[".", "read_line", "("][..], ".read_line()"),
        (&[".", "recv", "("][..], ".recv()"),
        (&["sleep", "("][..], "thread::sleep"),
    ] {
        if seq(src, lx, i, pat) {
            return Some(label);
        }
    }
    // Zero-argument `.join()` / `.wait()`: thread join and barrier wait
    // block; `join(sep)` on slices and `wait(guard)` on condvars do not.
    for (name, label) in [("join", ".join()"), ("wait", ".wait()")] {
        if seq(src, lx, i, &[".", name, "(", ")"]) {
            return Some(label);
        }
    }
    None
}

/// Whether a function body contains a direct blocking call.
fn directly_blocks(g: &Graph, units: &[Unit], fi: usize) -> Option<&'static str> {
    let info = &g.fns[fi];
    let unit = &units[info.file];
    let hi = info.def.body.1.min(unit.lx.tokens.len().saturating_sub(1));
    (info.def.body.0..=hi)
        .filter(|&i| !unit.test_mask[i])
        .find_map(|i| blocking_at(&unit.src, unit, i))
}

/// Whether an identifier names a lock-helper function. `lock` must be a
/// word of its own (`lock_ignoring_poison`, `try_lock`) — `clock` and
/// `Block` are everywhere in an FPGA codebase and must not match.
fn is_lock_helper(name: &str) -> bool {
    name == "lock" || name.starts_with("lock_") || name.contains("_lock")
}

/// Finds the acquisitions in one function body.
fn acquisitions(g: &Graph, units: &[Unit], fi: usize) -> Vec<Acquire> {
    let info = &g.fns[fi];
    let unit = &units[info.file];
    let lx = &unit.lx;
    let src = unit.src.as_str();
    let (lo, hi0) = info.def.body;
    let hi = hi0.min(lx.tokens.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in lo..=hi {
        if unit.test_mask[i] {
            continue;
        }
        // `recv.lock()` — name is the ident before `.lock`; for
        // `stdout().lock()` walk back over the call to the callee name.
        let name = if seq(src, lx, i, &[".", "lock", "("]) && i > lo {
            match lx.tokens[i - 1].kind {
                TokenKind::Ident => Some(lx.text(src, i - 1).to_string()),
                _ if lx.text(src, i - 1) == ")" => {
                    let mut depth = 1i32;
                    let mut j = i - 1;
                    while j > lo && depth > 0 {
                        j -= 1;
                        match lx.text(src, j) {
                            ")" => depth += 1,
                            "(" => depth -= 1,
                            _ => {}
                        }
                    }
                    (j > lo && lx.tokens[j - 1].kind == TokenKind::Ident)
                        .then(|| lx.text(src, j - 1).to_string())
                        .or(Some("<expr>".to_string()))
                }
                _ => Some("<expr>".to_string()),
            }
        } else if lx.tokens[i].kind == TokenKind::Ident
            && is_lock_helper(lx.text(src, i))
            && seq(src, lx, i + 1, &["(", "&"])
        {
            // `lock_ignoring_poison(&self.published)` — last ident of the
            // borrowed expression.
            let mut j = i + 3;
            let mut last = None;
            while j <= hi {
                match lx.tokens[j].kind {
                    TokenKind::Ident => last = Some(lx.text(src, j).to_string()),
                    _ if lx.text(src, j) == "." => {}
                    _ => break,
                }
                j += 1;
            }
            last
        } else {
            None
        };
        let Some(name) = name else { continue };
        // stdout/stderr/stdin locks serialize *output*, and holding one
        // across a command is the idiomatic way to batch writes.
        if matches!(name.as_str(), "stdout" | "stderr" | "stdin") {
            continue;
        }

        // Guard binding: statement begins `let [mut] g =`.
        let mut k = i;
        while k > lo && !matches!(lx.text(src, k - 1), ";" | "{" | "}") {
            k -= 1;
        }
        let guard = if lx.text(src, k) == "let" {
            let mut m = k + 1;
            if lx.text(src, m) == "mut" {
                m += 1;
            }
            (lx.tokens[m].kind == TokenKind::Ident).then(|| lx.text(src, m).to_string())
        } else {
            None
        };
        // A guard lives at most to the end of its enclosing block.
        let block_end = {
            let mut depth = 0i32;
            let mut e = hi;
            for j in i..=hi {
                match lx.text(src, j) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            e = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            e
        };
        let end = match &guard {
            Some(gname) => (i..=block_end)
                .find(|&j| seq(src, lx, j, &["drop", "("]) && lx.text(src, j + 2) == gname.as_str())
                .map(|j| j + 3)
                .unwrap_or(block_end),
            // Temporary guard: held to the end of the statement.
            None => (i..=block_end)
                .find(|&j| lx.text(src, j) == ";")
                .unwrap_or(block_end),
        };
        out.push(Acquire {
            name,
            tok: i,
            line: lx.tokens[i].line,
            end,
        });
    }
    out
}

/// Runs the lock-discipline analysis workspace-wide.
pub fn check(g: &Graph, units: &[Unit]) -> Vec<Violation> {
    let n = g.fns.len();
    let per_fn: Vec<Vec<Acquire>> = (0..n).map(|fi| acquisitions(g, units, fi)).collect();

    // Transitive blocking: reverse reachability from direct blockers.
    let blockers: Vec<usize> = (0..n)
        .filter(|&fi| directly_blocks(g, units, fi).is_some())
        .collect();
    let toward_block = reach_reverse(g, &blockers);
    let may_block = |fi: usize| blockers.contains(&fi) || toward_block[fi].is_some();

    // Transitive acquire-sets, to a fixpoint (the graph may have cycles).
    let mut acq_sets: Vec<BTreeSet<String>> = per_fn
        .iter()
        .map(|acqs| acqs.iter().map(|a| a.name.clone()).collect())
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fi in 0..n {
            for e in &g.edges[fi] {
                let add: Vec<String> = acq_sets[e.callee]
                    .iter()
                    .filter(|l| !acq_sets[fi].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    acq_sets[fi].extend(add);
                }
            }
        }
    }

    let mut out = Vec::new();
    // Order edges: (from, to) → first witness site.
    let mut order: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();

    for (fi, info) in g.fns.iter().enumerate() {
        if info.is_test {
            continue;
        }
        let unit = &units[info.file];
        let lx = &unit.lx;
        let src = unit.src.as_str();
        for a in &per_fn[fi] {
            let held = (a.tok + 3).min(a.end)..=a.end;
            // Nested direct acquisitions.
            for b in &per_fn[fi] {
                if b.tok > a.tok && held.contains(&b.tok) && b.name != a.name {
                    order.entry((a.name.clone(), b.name.clone())).or_insert((
                        info.file_label.clone(),
                        b.line,
                        info.display(),
                    ));
                }
            }
            for i in held.clone() {
                if unit.test_mask[i] {
                    continue;
                }
                // Direct blocking call while held.
                if let Some(label) = blocking_at(src, unit, i) {
                    let line = lx.tokens[i].line;
                    if !unit.allows.permits("locks", line) {
                        out.push(Violation {
                            lint: "locks".to_string(),
                            file: info.file_label.clone(),
                            line,
                            message: format!(
                                "`{label}` while lock `{}` (acquired line {}) is held \
                                 blocks every other thread contending for it",
                                a.name, a.line
                            ),
                            chain: Vec::new(),
                        });
                    }
                }
            }
            // Calls inside the hold range.
            for e in &g.edges[fi] {
                if !held.contains(&e.tok) {
                    continue;
                }
                for l in &acq_sets[e.callee] {
                    if *l != a.name {
                        order.entry((a.name.clone(), l.clone())).or_insert((
                            info.file_label.clone(),
                            e.line,
                            info.display(),
                        ));
                    }
                }
                if may_block(e.callee) && !unit.allows.permits("locks", e.line) {
                    let callee = &g.fns[e.callee];
                    let mut chain = vec![format!(
                        "{} (called at {}:{})",
                        callee.display(),
                        info.file_label,
                        e.line
                    )];
                    let mut cur = e.callee;
                    let mut guard = 0;
                    while directly_blocks(g, units, cur).is_none() && guard < n {
                        guard += 1;
                        let Some((hop, hline)) = toward_block[cur] else {
                            break;
                        };
                        chain.push(format!(
                            "{} (called at {}:{})",
                            g.fns[hop].display(),
                            g.fns[cur].file_label,
                            hline
                        ));
                        cur = hop;
                    }
                    let what = directly_blocks(g, units, cur).unwrap_or("a blocking call");
                    out.push(Violation {
                        lint: "locks".to_string(),
                        file: info.file_label.clone(),
                        line: e.line,
                        message: format!(
                            "lock `{}` (acquired line {}) is held across a call that \
                             transitively reaches `{what}`; release it first or add \
                             `allow(locks) reason=…`",
                            a.name, a.line
                        ),
                        chain,
                    });
                }
            }
        }
    }

    // Inversions: a→…→b and b→…→a in the order graph.
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_string()];
        while let Some(cur) = stack.pop() {
            for ((s, d), _) in order.range((cur.clone(), String::new())..) {
                if *s != cur {
                    break;
                }
                if d == to {
                    return true;
                }
                if seen.insert(d.clone()) {
                    stack.push(d.clone());
                }
            }
        }
        false
    };
    let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), (file, line, holder)) in &order {
        if a >= b || !reaches(b, a) || !flagged.insert((a.clone(), b.clone())) {
            continue;
        }
        let back = order
            .iter()
            .find(|((s, d), _)| s == b && (d == a || reaches(d, a)))
            .map(|(_, w)| w.clone());
        let mut v = Violation {
            lint: "locks".to_string(),
            file: file.clone(),
            line: *line,
            message: format!(
                "lock order inversion: `{a}` → `{b}` here (in `{holder}`) but another \
                 path acquires them in the opposite order — a deadlock under the \
                 right interleaving"
            ),
            chain: Vec::new(),
        };
        if let Some((bfile, bline, bholder)) = back {
            v.chain
                .push(format!("opposite order in {bholder} ({bfile}:{bline})"));
        }
        out.push(v);
    }
    out
}
