//! Durability ordering: a typestate walk over file-handle call
//! sequences in `// rowfpga-lint: durable` files.
//!
//! The crash-safety contract for the snapshot store and the job spool is
//! write-temp → fsync → rename: a rename publishes the file under its
//! final name, and if the data was not flushed first a crash can leave a
//! torn file *with the durable name* — the exact corruption the
//! temp-file dance exists to prevent. The walk is per function, in token
//! order, with interprocedural credit: a call to a function that
//! (transitively) fsyncs counts as a sync event, so helpers like
//! `write_atomic` satisfy callers. Pure renames (promote, quarantine)
//! never trigger — only a rename with an unsynced write before it.
//!
//! `fs::write` is flagged unconditionally in durable files: it has no
//! handle to fsync, so it cannot participate in the contract.

use crate::callgraph::{reach_reverse, Graph};
use crate::lints::seq;
use crate::report::Violation;
use crate::Unit;

/// Whether token `i` starts a sync call (`.sync_all(` / `.sync_data(`).
fn sync_at(src: &str, unit: &Unit, i: usize) -> bool {
    seq(src, &unit.lx, i, &[".", "sync_all", "("])
        || seq(src, &unit.lx, i, &[".", "sync_data", "("])
}

/// Whether a function body contains a direct sync call.
fn directly_syncs(g: &Graph, units: &[Unit], fi: usize) -> bool {
    let info = &g.fns[fi];
    let unit = &units[info.file];
    let hi = info.def.body.1.min(unit.lx.tokens.len().saturating_sub(1));
    (info.def.body.0..=hi).any(|i| !unit.test_mask[i] && sync_at(&unit.src, unit, i))
}

/// Per-function flag: does this function sync, directly or through any
/// call path?
pub fn sync_summaries(g: &Graph, units: &[Unit]) -> Vec<bool> {
    let seeds: Vec<usize> = (0..g.fns.len())
        .filter(|&fi| directly_syncs(g, units, fi))
        .collect();
    let next = reach_reverse(g, &seeds);
    (0..g.fns.len())
        .map(|fi| seeds.contains(&fi) || next[fi].is_some())
        .collect()
}

/// Runs the durability typestate check over every durable-marked file.
pub fn check(g: &Graph, units: &[Unit]) -> Vec<Violation> {
    if !units.iter().any(|u| u.durable) {
        return Vec::new();
    }
    let syncs = sync_summaries(g, units);
    let mut out = Vec::new();

    for (fi, info) in g.fns.iter().enumerate() {
        let unit = &units[info.file];
        if !unit.durable || info.is_test {
            continue;
        }
        let lx = &unit.lx;
        let src = unit.src.as_str();
        let hi = info.def.body.1.min(lx.tokens.len().saturating_sub(1));

        // Call sites that resolve to a transitively-syncing function,
        // by token index.
        let sync_calls: Vec<usize> = g.edges[fi]
            .iter()
            .filter(|e| syncs[e.callee])
            .map(|e| e.tok)
            .collect();

        let mut unsynced_write: Option<u32> = None;
        let mut i = info.def.body.0;
        while i <= hi {
            if unit.test_mask[i] {
                i += 1;
                continue;
            }
            let line = lx.tokens[i].line;
            if seq(src, lx, i, &["fs", ":", ":", "write", "("]) {
                if !unit.allows.permits("durability", line) {
                    out.push(Violation {
                        lint: "durability".to_string(),
                        file: info.file_label.clone(),
                        line,
                        message: "`fs::write` in a durable file cannot be fsynced; \
                                  open a handle, write, sync_all, then rename"
                            .to_string(),
                        chain: Vec::new(),
                    });
                }
                i += 5;
                continue;
            }
            if seq(src, lx, i, &[".", "write_all", "("]) || seq(src, lx, i, &[".", "write", "("]) {
                unsynced_write = Some(line);
                i += 3;
                continue;
            }
            if sync_at(src, unit, i) {
                unsynced_write = None;
                i += 3;
                continue;
            }
            if sync_calls.contains(&i) {
                unsynced_write = None;
                i += 1;
                continue;
            }
            let renames =
                seq(src, lx, i, &["rename", "("]) && lx.text(src, i.wrapping_sub(1)) == ":";
            if renames {
                if let Some(wline) = unsynced_write {
                    if !unit.allows.permits("durability", line) {
                        out.push(Violation {
                            lint: "durability".to_string(),
                            file: info.file_label.clone(),
                            line,
                            message: format!(
                                "rename publishes a file whose write at line {wline} was \
                                 never fsynced; call sync_all() before the rename \
                                 (in `{}`)",
                                info.display()
                            ),
                            chain: Vec::new(),
                        });
                    }
                    unsynced_write = None;
                }
            }
            i += 1;
        }
    }
    out
}
