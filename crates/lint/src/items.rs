//! A lightweight item parser over the token stream: functions, impl
//! blocks, inline modules and `use` imports.
//!
//! This is the front half of the interprocedural engine (DESIGN.md §14):
//! [`parse_file`] turns one lexed file into a list of [`FnDef`]s — each
//! with its module path, enclosing impl type, body token range and the
//! call expressions found in the body — plus the file's flattened `use`
//! imports. [`crate::callgraph`] then resolves calls across the whole
//! workspace.
//!
//! Like the lexer, the parser is deliberately *token-shaped*, not a
//! grammar: it recognizes exactly the item forms the workspace uses
//! (`mod x { … }`, `impl [Trait for] Type { … }`, `trait T { … }`,
//! `fn name<…>(…) -> … { … }`, `use a::b::{c, d as e};`) and skips
//! everything else. Unrecognized shapes degrade to "no functions seen
//! here", which under-approximates the call graph — the analyses built on
//! top are ratcheted budgets and reasoned allows, so a missed edge is a
//! soundness gap to shrink, never a hard failure.

use crate::lexer::{Lexed, TokenKind};

/// One call expression found inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// Path segments as written (`["proto", "parse_request"]`,
    /// `["f"]`); a method call carries just the method name.
    pub path: Vec<String>,
    /// Whether this was a `.method(…)` call.
    pub method: bool,
    /// 1-based source line of the call name.
    pub line: u32,
    /// Token index of the call name (for intra-body ordering).
    pub tok: usize,
    /// Whether the argument list is empty (`f()`), which disambiguates
    /// thread `.join()` from `Path::join(sep)`.
    pub empty_args: bool,
}

/// One parsed function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Module path within the file's crate (file modules + inline mods).
    pub module: Vec<String>,
    /// Self type when defined inside `impl Type { … }` or a trait's
    /// default method inside `trait Type { … }`.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Calls made directly by this body (nested fns excluded — they own
    /// their calls).
    pub calls: Vec<Call>,
}

/// One `use` import, flattened: the name it binds locally plus the full
/// path it stands for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseImport {
    /// Local binding (the alias after `as`, or the path's last segment).
    pub leaf: String,
    /// Full path segments, including the leaf.
    pub path: Vec<String>,
}

/// Everything [`parse_file`] extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
    /// Flattened `use` imports.
    pub uses: Vec<UseImport>,
}

/// Module path a file contributes by its location: `src/lib.rs` and
/// `src/main.rs` are the crate root, `src/a.rs` is `a`, `src/a/mod.rs` is
/// `a`, `src/a/b.rs` is `a::b`. `rel` is the path below `src/`.
pub fn file_module_path(rel: &str) -> Vec<String> {
    let mut parts: Vec<&str> = rel.split('/').collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    let mut out: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
    match last.strip_suffix(".rs") {
        Some("lib") | Some("main") | Some("mod") | None => {}
        Some(stem) => out.push(stem.to_string()),
    }
    out
}

/// Rust keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "const", "static", "move", "ref", "mut", "in", "as", "where", "impl", "dyn", "pub", "unsafe",
    "use", "mod", "struct", "enum", "trait", "type", "async", "await", "box",
];

struct Parser<'a> {
    src: &'a str,
    lx: &'a Lexed,
    out: ParsedFile,
}

/// Parses one lexed file. `file_mods` is the module path the file's
/// location contributes (see [`file_module_path`]).
pub fn parse_file(src: &str, lx: &Lexed, file_mods: &[String]) -> ParsedFile {
    let mut p = Parser {
        src,
        lx,
        out: ParsedFile::default(),
    };
    let n = lx.tokens.len();
    let mut mods: Vec<String> = file_mods.to_vec();
    p.region(0, n, &mut mods, None, None);
    p.out
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.lx.text(self.src, i)
    }

    fn is_ident(&self, i: usize) -> bool {
        self.lx
            .tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn is_punct(&self, i: usize, what: &str) -> bool {
        self.lx
            .tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct)
            && self.text(i) == what
    }

    /// Index of the `}` matching the `{` at `open` (brace kinds only —
    /// strings and comments are already stripped by the lexer).
    fn match_brace(&self, open: usize) -> usize {
        let n = self.lx.tokens.len();
        let mut depth = 0i64;
        let mut i = open;
        while i < n {
            if self.lx.tokens[i].kind == TokenKind::Punct {
                match self.text(i) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        n.saturating_sub(1)
    }

    /// Skips a generics list if `i` sits on `<`; returns the index one
    /// past the closing `>`. `->` never closes a list.
    fn skip_generics(&self, i: usize) -> usize {
        if !self.is_punct(i, "<") {
            return i;
        }
        let n = self.lx.tokens.len();
        let mut depth = 0i64;
        let mut k = i;
        while k < n {
            if self.lx.tokens[k].kind == TokenKind::Punct {
                match self.text(k) {
                    "<" => depth += 1,
                    ">" if k > 0 && self.text(k - 1) != "-" => {
                        depth -= 1;
                        if depth == 0 {
                            return k + 1;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        n
    }

    /// Walks one region `[from, to)`, collecting items. `current_fn`
    /// indexes `self.out.fns` when inside a function body: plain tokens
    /// are then also scanned as potential calls.
    fn region(
        &mut self,
        from: usize,
        to: usize,
        mods: &mut Vec<String>,
        impl_type: Option<&str>,
        current_fn: Option<usize>,
    ) {
        let mut i = from;
        while i < to {
            if !self.is_ident(i) {
                i += 1;
                continue;
            }
            match self.text(i) {
                "mod" if self.is_ident(i + 1) && self.is_punct(i + 2, "{") => {
                    let name = self.text(i + 1).to_string();
                    let close = self.match_brace(i + 2);
                    mods.push(name);
                    self.region(i + 3, close, mods, impl_type, current_fn);
                    mods.pop();
                    i = close + 1;
                }
                "impl" => {
                    let (ty, open) = self.impl_header(i + 1, to);
                    let Some(open) = open else {
                        i += 1;
                        continue;
                    };
                    let close = self.match_brace(open);
                    self.region(open + 1, close, mods, ty.as_deref(), None);
                    i = close + 1;
                }
                "trait" if self.is_ident(i + 1) => {
                    // Default method bodies belong to the trait's name.
                    let name = self.text(i + 1).to_string();
                    let mut k = self.skip_generics(i + 2);
                    while k < to && !self.is_punct(k, "{") && !self.is_punct(k, ";") {
                        k += 1;
                    }
                    if self.is_punct(k, "{") {
                        let close = self.match_brace(k);
                        self.region(k + 1, close, mods, Some(&name), None);
                        i = close + 1;
                    } else {
                        i = k + 1;
                    }
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.fn_def(i, to, mods, impl_type);
                }
                "use" => {
                    let mut end = i + 1;
                    while end < to && !self.is_punct(end, ";") {
                        end += 1;
                    }
                    self.use_tree(i + 1, end, &mut Vec::new());
                    i = end + 1;
                }
                _ => {
                    if let Some(f) = current_fn {
                        i = self.maybe_call(i, f);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Parses an impl header starting after the `impl` keyword. Returns
    /// the self type (last path ident before the body, after the last
    /// top-level `for`) and the index of the opening `{`.
    fn impl_header(&self, mut i: usize, to: usize) -> (Option<String>, Option<usize>) {
        i = self.skip_generics(i);
        let mut last_ident: Option<String> = None;
        let mut frozen = false;
        while i < to {
            if self.is_punct(i, "{") {
                return (last_ident, Some(i));
            }
            if self.is_punct(i, ";") {
                return (last_ident, None);
            }
            if self.is_punct(i, "<") {
                i = self.skip_generics(i);
                continue;
            }
            if self.is_ident(i) {
                match self.text(i) {
                    "for" => last_ident = None,
                    "where" => frozen = true,
                    t if !frozen => last_ident = Some(t.to_string()),
                    _ => {}
                }
            }
            i += 1;
        }
        (last_ident, None)
    }

    /// Parses `fn name …` at `i`; records a [`FnDef`] if a body follows
    /// and walks the body. Returns the index to continue from.
    fn fn_def(
        &mut self,
        i: usize,
        to: usize,
        mods: &mut Vec<String>,
        impl_type: Option<&str>,
    ) -> usize {
        let name = self.text(i + 1).to_string();
        let line = self.lx.tokens[i + 1].line;
        let mut k = self.skip_generics(i + 2);
        // Parameter list.
        if !self.is_punct(k, "(") {
            return i + 2;
        }
        let mut depth = 0i64;
        while k < to {
            if self.lx.tokens[k].kind == TokenKind::Punct {
                match self.text(k) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        // Return type / where clause, up to the body or `;`.
        while k < to && !self.is_punct(k, "{") && !self.is_punct(k, ";") {
            if self.is_punct(k, "<") {
                k = self.skip_generics(k);
            } else {
                k += 1;
            }
        }
        if !self.is_punct(k, "{") {
            return k + 1; // bodyless declaration (trait signature)
        }
        let close = self.match_brace(k);
        let idx = self.out.fns.len();
        self.out.fns.push(FnDef {
            name,
            module: mods.clone(),
            impl_type: impl_type.map(str::to_string),
            line,
            body: (k, close),
            calls: Vec::new(),
        });
        self.region(k + 1, close, mods, impl_type, Some(idx));
        close + 1
    }

    /// Records a call if token `i` starts one; returns the index to
    /// continue from.
    fn maybe_call(&mut self, i: usize, f: usize) -> usize {
        if !self.is_punct(i + 1, "(") || KEYWORDS.contains(&self.text(i)) {
            return i + 1;
        }
        let method = i > 0 && self.is_punct(i - 1, ".");
        let mut path = vec![self.text(i).to_string()];
        if !method {
            // Walk back through `a::b::` chains.
            let mut k = i;
            while k >= 3
                && self.is_punct(k - 1, ":")
                && self.is_punct(k - 2, ":")
                && self.is_ident(k - 3)
                && !KEYWORDS.contains(&self.text(k - 3))
            {
                path.insert(0, self.text(k - 3).to_string());
                k -= 3;
            }
        }
        let empty_args = self.is_punct(i + 2, ")");
        self.out.fns[f].calls.push(Call {
            path,
            method,
            line: self.lx.tokens[i].line,
            tok: i,
            empty_args,
        });
        i + 1
    }

    /// Flattens one `use` tree in `[i, end)` with `prefix` already
    /// consumed.
    fn use_tree(&mut self, mut i: usize, end: usize, prefix: &mut Vec<String>) {
        let base = prefix.len();
        while i < end {
            if self.is_ident(i) && self.text(i) == "as" && self.is_ident(i + 1) {
                // `path as alias`
                self.out.uses.push(UseImport {
                    leaf: self.text(i + 1).to_string(),
                    path: prefix.clone(),
                });
                prefix.truncate(base);
                i += 2;
                continue;
            }
            if self.is_ident(i) {
                prefix.push(self.text(i).to_string());
                i += 1;
                continue;
            }
            if self.is_punct(i, "{") {
                // Group: recurse per comma-separated branch, restoring the
                // shared prefix between branches.
                let close = self.match_brace(i);
                let keep = prefix.len();
                let mut start = i + 1;
                let mut depth = 0i64;
                for k in i + 1..close {
                    if self.lx.tokens[k].kind != TokenKind::Punct {
                        continue;
                    }
                    match self.text(k) {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "," if depth == 0 => {
                            self.use_tree(start, k, prefix);
                            prefix.truncate(keep);
                            start = k + 1;
                        }
                        _ => {}
                    }
                }
                self.use_tree(start, close, prefix);
                prefix.truncate(base);
                i = close + 1;
                continue;
            }
            if self.is_punct(i, ",") {
                self.flush_use(prefix, base);
                i += 1;
                continue;
            }
            // `::`, `*`, and anything else: globs are ignored wholesale.
            if self.is_punct(i, "*") {
                prefix.truncate(base);
                return;
            }
            i += 1;
        }
        self.flush_use(prefix, base);
    }

    /// Emits the import accumulated beyond `base`, if any.
    fn flush_use(&mut self, prefix: &mut Vec<String>, base: usize) {
        if prefix.len() > base {
            self.out.uses.push(UseImport {
                leaf: prefix.last().cloned().unwrap_or_default(),
                path: prefix.clone(),
            });
        }
        prefix.truncate(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let lx = lex(src);
        parse_file(src, &lx, &[])
    }

    #[test]
    fn file_module_paths() {
        assert!(file_module_path("lib.rs").is_empty());
        assert_eq!(file_module_path("spool.rs"), vec!["spool"]);
        assert_eq!(file_module_path("a/mod.rs"), vec!["a"]);
        assert_eq!(file_module_path("a/b.rs"), vec!["a", "b"]);
    }

    #[test]
    fn fns_carry_module_and_impl_context() {
        let src = "
mod outer {
    struct S;
    impl S {
        fn method(&self) { helper(); }
    }
    fn helper() {}
}
impl std::fmt::Display for Wide<'_> {
    fn fmt(&self) { inner(); }
}
";
        let p = parse(src);
        let names: Vec<_> = p
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.module.join("::"),
                    f.impl_type.as_deref().unwrap_or("-"),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("method", "outer".to_string(), "S"),
                ("helper", "outer".to_string(), "-"),
                ("fmt", String::new(), "Wide"),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_resolves_the_type() {
        let src = "impl<P: Problem> Replica for Runner<P> where P: Send { fn go(&self) {} }";
        let p = parse(src);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Runner"));
    }

    #[test]
    fn calls_are_collected_with_paths_and_methods() {
        let src = "
fn top() {
    plain();
    a::b::qualified(1, 2);
    value.method(x);
    macro_like!(ignored);
    if cond() { nested_call(); }
}
";
        let p = parse(src);
        let calls: Vec<_> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.path.join("::"), c.method))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("plain".to_string(), false),
                ("a::b::qualified".to_string(), false),
                ("method".to_string(), true),
                ("cond".to_string(), false),
                ("nested_call".to_string(), false),
            ]
        );
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].path, vec!["shallow"]);
        assert_eq!(inner.calls[0].path, vec!["deep"]);
    }

    #[test]
    fn use_trees_flatten_groups_aliases_and_globs() {
        let src = "
use std::collections::BTreeMap;
use crate::spool::{Spool, ScanReport as Report};
use rowfpga_core::*;
";
        let p = parse(src);
        let uses: Vec<_> = p
            .uses
            .iter()
            .map(|u| (u.leaf.as_str(), u.path.join("::")))
            .collect();
        assert_eq!(
            uses,
            vec![
                ("BTreeMap", "std::collections::BTreeMap".to_string()),
                ("Spool", "crate::spool::Spool".to_string()),
                ("Report", "crate::spool::ScanReport".to_string()),
            ]
        );
    }

    #[test]
    fn bodyless_trait_signatures_are_skipped() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { call(); } }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "with_default");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("T"));
    }

    #[test]
    fn generic_fn_signatures_do_not_derail() {
        let src = "fn pair<T: Fn() -> u32, U>(a: T, b: U) -> Option<(T, U)> { work(a, b) }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].calls[0].path, vec!["work"]);
    }
}
