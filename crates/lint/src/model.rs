//! Workspace discovery: which crates exist and which source files each
//! one owns.
//!
//! The walker is deliberately simple and deterministic: the workspace
//! manifest pins `members = ["crates/*"]`, so crates are the directories
//! under `crates/` that carry a `Cargo.toml`, plus the root facade
//! package. Within a crate only the `src/` tree is linted — `tests/`,
//! `benches/` and `examples/` are test code by definition, and lint
//! fixtures under `tests/fixtures/` contain deliberate violations.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace member.
#[derive(Clone, Debug)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (`rowfpga-route`, `rand`, …).
    pub name: String,
    /// Crate directory relative to the workspace root.
    pub dir: PathBuf,
    /// All `.rs` files under `src/`, sorted, relative to the workspace
    /// root.
    pub src_files: Vec<PathBuf>,
    /// Whether the crate has a `src/lib.rs`.
    pub has_lib: bool,
}

/// The discovered workspace.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Members sorted by name.
    pub crates: Vec<CrateInfo>,
}

/// Discovery failures, tagged with the path that failed.
#[derive(Debug)]
pub struct WalkError {
    /// The path being read.
    pub path: PathBuf,
    /// The underlying error.
    pub source: io::Error,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for WalkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

fn walk_err(path: &Path) -> impl FnOnce(io::Error) -> WalkError + '_ {
    move |source| WalkError {
        path: path.to_path_buf(),
        source,
    }
}

/// Discovers the workspace under `root`.
///
/// # Errors
///
/// Returns a [`WalkError`] if a directory or manifest cannot be read.
pub fn discover(root: &Path) -> Result<Workspace, WalkError> {
    let mut ws = Workspace::default();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(&crates_dir).map_err(walk_err(&crates_dir))? {
        let entry = entry.map_err(walk_err(&crates_dir))?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            dirs.push(path);
        }
    }
    // The root facade package (`rowfpga`, src/ at the workspace root).
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        dirs.push(root.to_path_buf());
    }
    for dir in dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path).map_err(walk_err(&manifest_path))?;
        let Some(name) = package_name(&manifest) else {
            continue; // a virtual manifest — nothing to lint directly
        };
        let src = dir.join("src");
        let mut src_files = Vec::new();
        if src.is_dir() {
            collect_rs(&src, &mut src_files)?;
        }
        src_files.sort();
        let src_files = src_files
            .into_iter()
            .map(|p| p.strip_prefix(root).unwrap_or(&p).to_path_buf())
            .collect::<Vec<_>>();
        ws.crates.push(CrateInfo {
            name,
            has_lib: src.join("lib.rs").is_file(),
            dir: dir.strip_prefix(root).unwrap_or(&dir).to_path_buf(),
            src_files,
        });
    }
    ws.crates.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(ws)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WalkError> {
    for entry in fs::read_dir(dir).map_err(walk_err(dir))? {
        let entry = entry.map_err(walk_err(dir))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts `name = "…"` from a manifest's `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']').trim() == "package";
            continue;
        }
        if in_package {
            if let Some(value) = line.strip_prefix("name") {
                let value = value.trim_start();
                if let Some(value) = value.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_the_package_table_only() {
        let manifest = "\n[dependencies]\nname-like = \"1\"\n[package]\nname = \"rowfpga-x\"\n";
        assert_eq!(package_name(manifest).as_deref(), Some("rowfpga-x"));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
