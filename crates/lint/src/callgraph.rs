//! The cross-crate call graph: resolution of the calls [`crate::items`]
//! extracted, plus the traversal helpers the interprocedural analyses
//! share.
//!
//! Resolution is name-based and deliberately over-approximate where the
//! tokens underdetermine the callee (method calls resolve to every
//! workspace impl bearing the name, minus a deny-list of std-shadowing
//! names that would connect everything to everything). An over-approximate
//! edge can only create a false *finding*, which a reasoned allow region
//! answers; a missed edge is a soundness gap, so the resolver prefers
//! linking too much over too little. See DESIGN.md §14 for the exact
//! rules.

use std::collections::BTreeMap;

use crate::items::{Call, FnDef, ParsedFile};

/// One function in the global table.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Index of the file (into the engine's file list).
    pub file: usize,
    /// Workspace-relative file path label.
    pub file_label: String,
    /// Package name of the owning crate.
    pub krate: String,
    /// The parsed definition.
    pub def: FnDef,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

impl FnInfo {
    /// `crate::module::Type::name`, the display form used in chains.
    pub fn display(&self) -> String {
        let mut out = self.krate.replace('-', "_");
        for m in &self.def.module {
            out.push_str("::");
            out.push_str(m);
        }
        if let Some(ty) = &self.def.impl_type {
            out.push_str("::");
            out.push_str(ty);
        }
        out.push_str("::");
        out.push_str(&self.def.name);
        out
    }
}

/// A resolved call edge (stored forward on the caller).
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee function index.
    pub callee: usize,
    /// 1-based line of the call, in the caller's file.
    pub line: u32,
    /// Token index of the call name, in the caller's file.
    pub tok: usize,
}

/// The resolved workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// All functions, in (crate, file, source) order.
    pub fns: Vec<FnInfo>,
    /// Forward adjacency: `edges[f]` are the calls `f` makes.
    pub edges: Vec<Vec<Edge>>,
    /// Reverse adjacency: `redges[g]` holds `(caller, line)` pairs, the
    /// line being the call site in the caller.
    pub redges: Vec<Vec<(usize, u32)>>,
}

/// Method names too generic to resolve across crates: each shadows a
/// std/primitive method, so a bare `.len()` says nothing about which
/// workspace impl (if any) is meant. These resolve within the caller's
/// crate only.
const COMMON_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "next",
    "clone",
    "cmp",
    "eq",
    "hash",
    "fmt",
    "default",
    "from",
    "into",
    "new",
    "as_str",
    "as_ref",
    "as_mut",
    "to_string",
    "write",
    "read",
    "flush",
    "drop",
    "extend",
    "min",
    "max",
    "abs",
    "start",
    "end",
    "index",
    "source",
    "name",
    "id",
    "kind",
    "state",
    "reset",
    "join",
    "wait",
];

/// One file's contribution to [`build`].
#[derive(Debug)]
pub struct FileFns<'a> {
    /// Index of the file in the engine's file list.
    pub file: usize,
    /// Workspace-relative path label.
    pub label: &'a str,
    /// Owning crate's package name.
    pub krate: &'a str,
    /// The parsed items.
    pub parsed: &'a ParsedFile,
    /// Per-token `#[cfg(test)]` mask for the file.
    pub test_mask: &'a [bool],
}

/// Builds the workspace call graph from every file's parsed items.
pub fn build(files: &[FileFns<'_>]) -> Graph {
    let mut g = Graph::default();
    // Global function table + per-file alias tables.
    let mut aliases: Vec<BTreeMap<&str, &[String]>> = Vec::new();
    let mut file_of_entry: Vec<usize> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let mut table = BTreeMap::new();
        for u in &f.parsed.uses {
            table.insert(u.leaf.as_str(), u.path.as_slice());
        }
        aliases.push(table);
        for def in &f.parsed.fns {
            let is_test = f.test_mask.get(def.body.0).copied().unwrap_or(false);
            g.fns.push(FnInfo {
                file: f.file,
                file_label: f.label.to_string(),
                krate: f.krate.to_string(),
                def: def.clone(),
                is_test,
            });
            file_of_entry.push(fi);
        }
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, info) in g.fns.iter().enumerate() {
        by_name.entry(&info.def.name).or_default().push(i);
    }
    let crate_names: Vec<String> = {
        let mut v: Vec<String> = files.iter().map(|f| f.krate.replace('-', "_")).collect();
        v.sort();
        v.dedup();
        v
    };

    g.edges = vec![Vec::new(); g.fns.len()];
    g.redges = vec![Vec::new(); g.fns.len()];
    for (caller, &fi) in file_of_entry.iter().enumerate() {
        let calls = g.fns[caller].def.calls.clone();
        for call in &calls {
            for callee in resolve(&g, &by_name, &crate_names, &aliases[fi], caller, call) {
                if callee == caller {
                    continue; // self-recursion adds nothing to reachability
                }
                if g.fns[callee].is_test && !g.fns[caller].is_test {
                    // `cfg(test)` items do not exist in production builds;
                    // a non-test caller can never actually reach them.
                    continue;
                }
                g.edges[caller].push(Edge {
                    callee,
                    line: call.line,
                    tok: call.tok,
                });
                g.redges[callee].push((caller, call.line));
            }
        }
    }
    g
}

/// Resolves one call to zero or more function indices.
fn resolve(
    g: &Graph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    crate_names: &[String],
    aliases: &BTreeMap<&str, &[String]>,
    caller: usize,
    call: &Call,
) -> Vec<usize> {
    let caller_info = &g.fns[caller];
    let name = call.path.last().map(String::as_str).unwrap_or_default();
    let Some(candidates) = by_name.get(name) else {
        return Vec::new();
    };

    if call.method {
        // `.join(sep)` / `.wait(guard)` are Path/slice/Condvar calls, not
        // the blocking zero-argument thread-join / barrier-wait; never
        // link them to workspace impls of the same name.
        if !call.empty_args && (name == "join" || name == "wait") {
            return Vec::new();
        }
        let impls: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| g.fns[c].def.impl_type.is_some())
            .collect();
        if COMMON_METHODS.contains(&name) {
            // Same-crate only: across crates these names mean std types.
            return impls
                .into_iter()
                .filter(|&c| g.fns[c].krate == caller_info.krate)
                .collect();
        }
        return impls;
    }

    // Path call: expand a leading alias, then strip crate/self/super
    // qualifiers into a crate restriction.
    let mut segs: Vec<String> = call.path.clone();
    if let Some(expansion) = aliases.get(segs[0].as_str()) {
        let mut full: Vec<String> = expansion.to_vec();
        full.extend(segs.into_iter().skip(1));
        segs = full;
    }
    let mut krate: Option<String> = None;
    while segs.len() > 1 {
        let head = segs[0].as_str();
        if head == "crate" || head == "self" || head == "super" {
            krate = Some(caller_info.krate.clone());
            segs.remove(0);
        } else if crate_names.iter().any(|c| c == head) {
            krate = Some(head.replace('_', "-"));
            segs.remove(0);
        } else if head == "std" || head == "core" || head == "alloc" {
            return Vec::new(); // external
        } else {
            break;
        }
    }

    let in_crate = |c: usize| match &krate {
        Some(k) => g.fns[c].krate == *k,
        None => true,
    };

    if segs.len() == 1 {
        // Bare name: same file first, then unique within the crate.
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| g.fns[c].file == caller_info.file && in_crate(c))
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| {
                g.fns[c].krate == *krate.as_deref().unwrap_or(&caller_info.krate)
                    && g.fns[c].def.impl_type.is_none()
            })
            .collect();
        return same_crate;
    }

    // Qualified: `Type::name` when the qualifier is type-like, else a
    // module-path suffix match.
    let qual = &segs[..segs.len() - 1];
    let last_qual = qual.last().map(String::as_str).unwrap_or_default();
    let type_like = last_qual
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_uppercase());
    if type_like {
        let want_type = if last_qual == "Self" {
            match &caller_info.def.impl_type {
                Some(t) => t.clone(),
                None => return Vec::new(),
            }
        } else {
            last_qual.to_string()
        };
        return candidates
            .iter()
            .copied()
            .filter(|&c| {
                g.fns[c].def.impl_type.as_deref() == Some(want_type.as_str()) && in_crate(c)
            })
            .collect();
    }
    candidates
        .iter()
        .copied()
        .filter(|&c| {
            in_crate(c)
                && g.fns[c].def.impl_type.is_none()
                && g.fns[c].def.module.len() >= qual.len()
                && g.fns[c].def.module[g.fns[c].def.module.len() - qual.len()..]
                    .iter()
                    .zip(qual)
                    .all(|(a, b)| a == b)
        })
        .collect()
}

/// Breadth-first forward reachability from `seeds`. Returns, per
/// function, the hop that first reached it: `Some((caller, line))` where
/// `line` is the call site in the caller — `None` for unreached functions
/// and for the seeds themselves.
pub fn reach_forward(g: &Graph, seeds: &[usize]) -> Vec<Option<(usize, u32)>> {
    let mut from: Vec<Option<(usize, u32)>> = vec![None; g.fns.len()];
    let mut seen = vec![false; g.fns.len()];
    let mut queue: std::collections::VecDeque<usize> = seeds.iter().copied().collect();
    for &s in seeds {
        seen[s] = true;
    }
    while let Some(f) = queue.pop_front() {
        for e in &g.edges[f] {
            if !seen[e.callee] {
                seen[e.callee] = true;
                from[e.callee] = Some((f, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    from
}

/// Breadth-first *reverse* reachability from `seeds` (the functions that
/// can reach a seed through calls). Returns, per function, the next hop
/// *toward* the seed: `Some((callee, line))` where `line` is the call
/// site in this function — `None` for functions that cannot reach a seed
/// and for the seeds themselves.
pub fn reach_reverse(g: &Graph, seeds: &[usize]) -> Vec<Option<(usize, u32)>> {
    let mut next: Vec<Option<(usize, u32)>> = vec![None; g.fns.len()];
    let mut seen = vec![false; g.fns.len()];
    let mut queue: std::collections::VecDeque<usize> = seeds.iter().copied().collect();
    for &s in seeds {
        seen[s] = true;
    }
    while let Some(gi) = queue.pop_front() {
        for &(caller, line) in &g.redges[gi] {
            if !seen[caller] {
                seen[caller] = true;
                next[caller] = Some((gi, line));
                queue.push_back(caller);
            }
        }
    }
    next
}

/// Renders the call chain from `start` by following `next` hops until a
/// function satisfying `stop` (typically "has the direct property") is
/// reached. Frames are `display (file:line)` strings; the first frame is
/// `start` itself.
pub fn chain_to(
    g: &Graph,
    start: usize,
    next: &[Option<(usize, u32)>],
    stop: impl Fn(usize) -> bool,
) -> Vec<String> {
    let mut frames = Vec::new();
    let mut cur = start;
    frames.push(format!(
        "{} ({}:{})",
        g.fns[cur].display(),
        g.fns[cur].file_label,
        g.fns[cur].def.line
    ));
    let mut guard = 0usize;
    while !stop(cur) && guard < g.fns.len() {
        guard += 1;
        let Some((hop, line)) = next[cur] else {
            break;
        };
        frames.push(format!(
            "{} (called at {}:{})",
            g.fns[hop].display(),
            g.fns[cur].file_label,
            line
        ));
        cur = hop;
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str, &str)]) -> Graph {
        // (krate, label, src)
        let parsed: Vec<_> = files
            .iter()
            .map(|(_, label, src)| {
                let lx = lex(src);
                let rel = label.rsplit("src/").next().unwrap_or(label);
                (
                    parse_file(src, &lx, &crate::items::file_module_path(rel)),
                    lx,
                )
            })
            .collect();
        let masks: Vec<Vec<bool>> = parsed
            .iter()
            .map(|(_, lx)| vec![false; lx.tokens.len()])
            .collect();
        let ffns: Vec<FileFns<'_>> = files
            .iter()
            .enumerate()
            .map(|(i, (krate, label, _))| FileFns {
                file: i,
                label,
                krate,
                parsed: &parsed[i].0,
                test_mask: &masks[i],
            })
            .collect();
        build(&ffns)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.fns.iter().position(|f| f.def.name == name).unwrap()
    }

    #[test]
    fn same_file_and_cross_crate_paths_resolve() {
        let g = graph_of(&[
            (
                "app",
                "crates/app/src/lib.rs",
                "fn top() { helper(); rowfpga_core::probe(); }\nfn helper() {}",
            ),
            (
                "rowfpga-core",
                "crates/core/src/lib.rs",
                "pub fn probe() {}",
            ),
        ]);
        let top = idx(&g, "top");
        let callees: Vec<&str> = g.edges[top]
            .iter()
            .map(|e| g.fns[e.callee].def.name.as_str())
            .collect();
        assert_eq!(callees, vec!["helper", "probe"]);
    }

    #[test]
    fn alias_expansion_and_type_methods_resolve() {
        let g = graph_of(&[
            (
                "app",
                "crates/app/src/main.rs",
                "use rowfpga_core::Engine;\nfn top() { Engine::run(); x.step(); }",
            ),
            (
                "rowfpga-core",
                "crates/core/src/lib.rs",
                "impl Engine { pub fn run() {} pub fn step(&self) {} }",
            ),
        ]);
        let top = idx(&g, "top");
        let mut callees: Vec<&str> = g.edges[top]
            .iter()
            .map(|e| g.fns[e.callee].def.name.as_str())
            .collect();
        callees.sort_unstable();
        assert_eq!(callees, vec!["run", "step"]);
    }

    #[test]
    fn common_method_names_stay_within_the_crate() {
        let g = graph_of(&[
            ("app", "crates/app/src/lib.rs", "fn top(v: &V) { v.len(); }"),
            (
                "other",
                "crates/other/src/lib.rs",
                "impl V { pub fn len(&self) -> usize { 0 } }",
            ),
        ]);
        let top = idx(&g, "top");
        assert!(g.edges[top].is_empty(), "cross-crate .len() must not link");
    }

    #[test]
    fn reachability_and_chains() {
        let g = graph_of(&[(
            "app",
            "crates/app/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}",
        )]);
        let (a, c) = (idx(&g, "a"), idx(&g, "c"));
        let from = reach_forward(&g, &[a]);
        assert!(from[c].is_some());
        let next = reach_reverse(&g, &[c]);
        let chain = chain_to(&g, a, &next, |f| f == c);
        assert_eq!(chain.len(), 3, "{chain:?}");
        assert!(chain[0].starts_with("app::a"));
        assert!(chain[2].starts_with("app::c"));
    }

    #[test]
    fn self_calls_resolve_via_the_impl_type() {
        let g = graph_of(&[(
            "app",
            "crates/app/src/lib.rs",
            "impl S { fn a(&self) { Self::b(); } fn b() {} }",
        )]);
        let a = idx(&g, "a");
        assert_eq!(g.edges[a].len(), 1);
        assert_eq!(g.fns[g.edges[a][0].callee].def.name, "b");
    }
}
