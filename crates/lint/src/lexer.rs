//! A minimal Rust lexer for the lint engine.
//!
//! This is not a full grammar — it only needs to be *token-accurate*: the
//! lints match short token sequences (`.clone(`, `HashMap`, `panic!`), so
//! the lexer's job is to never mistake comment or string *contents* for
//! code, and to tell a lifetime (`'a`) from a char literal (`'a'`). It
//! handles line and (nested) block comments, string/byte-string literals
//! with escapes, raw strings with any hash count (`r##"…"##`), char
//! literals, raw identifiers (`r#type`), and numeric literals.
//!
//! Comments are not discarded blindly: `rowfpga-lint:` directives and
//! `SAFETY:` annotations are extracted during the scan (see
//! [`Directive`]), because the allow-list grammar and the unsafe-audit
//! lint live in comments.

use std::fmt;

/// The coarse classification a lint rule needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// String, byte-string or raw-string literal (text includes quotes).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'_`, `'static`), text includes the quote.
    Lifetime,
}

/// One lexed token: a byte range into the source plus its 1-based line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the token start.
    pub start: usize,
    /// Byte length.
    pub len: usize,
    /// 1-based source line of the token start.
    pub line: u32,
}

/// A `rowfpga-lint:` comment directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// `// rowfpga-lint: hot-path` — opts the whole file into the
    /// hot-path allocation lint.
    HotPath,
    /// `// rowfpga-lint: no-panic` — every non-test function in the file
    /// becomes a panic-reachability entry point (like hot-path files, but
    /// without the allocation lint — the daemon's scheduler loop uses it).
    NoPanic,
    /// `// rowfpga-lint: durable` — opts the whole file into the
    /// durability-ordering typestate check (write-temp → fsync → rename).
    Durable,
    /// `// rowfpga-lint: allow(<lint>) reason=<text>` — suppresses the
    /// named lint on this line and the next.
    Allow {
        /// Lint name being suppressed.
        lint: String,
        /// Mandatory human rationale.
        reason: String,
    },
    /// `// rowfpga-lint: begin-allow(<lint>) reason=<text>` — suppresses
    /// until the matching `end-allow`.
    BeginAllow {
        /// Lint name being suppressed.
        lint: String,
        /// Mandatory human rationale.
        reason: String,
    },
    /// `// rowfpga-lint: end-allow(<lint>)` — closes a `begin-allow`.
    EndAllow {
        /// Lint name whose region ends here.
        lint: String,
    },
    /// `// rowfpga-lint: allow-file(<lint>) reason=<text>` — suppresses
    /// the named lint for the entire file.
    AllowFile {
        /// Lint name being suppressed.
        lint: String,
        /// Mandatory human rationale.
        reason: String,
    },
    /// Anything after `rowfpga-lint:` that does not parse — itself a
    /// violation, so typos cannot silently disable a lint.
    Malformed {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::HotPath => write!(f, "hot-path"),
            Directive::NoPanic => write!(f, "no-panic"),
            Directive::Durable => write!(f, "durable"),
            Directive::Allow { lint, .. } => write!(f, "allow({lint})"),
            Directive::BeginAllow { lint, .. } => write!(f, "begin-allow({lint})"),
            Directive::EndAllow { lint } => write!(f, "end-allow({lint})"),
            Directive::AllowFile { lint, .. } => write!(f, "allow-file({lint})"),
            Directive::Malformed { detail } => write!(f, "malformed: {detail}"),
        }
    }
}

/// A directive with the line its comment starts on.
#[derive(Clone, Debug)]
pub struct PlacedDirective {
    /// 1-based line of the comment.
    pub line: u32,
    /// The parsed directive.
    pub directive: Directive,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// All `rowfpga-lint:` directives found in comments.
    pub directives: Vec<PlacedDirective>,
    /// Lines whose comments contain a `SAFETY:` annotation.
    pub safety_lines: Vec<u32>,
}

impl Lexed {
    /// The source text of token `i`.
    pub fn text<'a>(&self, src: &'a str, i: usize) -> &'a str {
        let t = &self.tokens[i];
        &src[t.start..t.start + t.len]
    }
}

/// Lexes `src` into tokens plus comment-borne directives.
///
/// The lexer never fails: unterminated strings or comments simply consume
/// the rest of the file, which is the most conservative behaviour for a
/// linter (nothing after the defect is mis-read as code).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in b[from..to] and advance the line counter.
    macro_rules! bump_lines {
        ($from:expr, $to:expr) => {
            line += b[$from..$to].iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                scan_comment(&src[start..i], line, &mut out);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_comment(&src[start..i], start_line, &mut out);
                bump_lines!(start, i);
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    start,
                    len: i - start,
                    line,
                });
                bump_lines!(start, i);
            }
            b'\'' => {
                let start = i;
                let (end, kind) = lex_quote(b, i);
                i = end;
                out.tokens.push(Token {
                    kind,
                    start,
                    len: i - start,
                    line,
                });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                // Raw strings / byte strings / raw identifiers share the
                // `r`/`b` prefix with plain identifiers; disambiguate by
                // lookahead before committing to an identifier.
                if let Some((end, kind)) = lex_prefixed_literal(b, i) {
                    i = end;
                    out.tokens.push(Token {
                        kind,
                        start,
                        len: i - start,
                        line,
                    });
                    bump_lines!(start, i);
                    continue;
                }
                if c == b'r' && i + 1 < n && b[i + 1] == b'#' && ident_start(b.get(i + 2)) {
                    // Raw identifier `r#type`: emit the bare name so lint
                    // matching sees `type`, not `r#type`.
                    i += 2;
                    let id_start = i;
                    while i < n && ident_continue(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        start: id_start,
                        len: i - id_start,
                        line,
                    });
                    continue;
                }
                while i < n && ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    start,
                    len: i - start,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < n {
                    let d = b[i];
                    if ident_continue(d) {
                        i += 1;
                    } else if d == b'.'
                        && i + 1 < n
                        && b[i + 1].is_ascii_digit()
                        && !src[start..i].contains('.')
                    {
                        // `1.5` continues the number; `0..10` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    start,
                    len: i - start,
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    start: i,
                    len: 1,
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn ident_start(c: Option<&u8>) -> bool {
    matches!(c, Some(&c) if c == b'_' || c.is_ascii_alphabetic())
}

fn ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || !c.is_ascii()
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
fn lex_quote(b: &[u8], start: usize) -> (usize, TokenKind) {
    let n = b.len();
    let mut i = start + 1;
    if i >= n {
        return (n, TokenKind::Char);
    }
    if b[i] == b'\\' {
        // Escaped char literal: `'\n'`, `'\u{1F600}'`, `'\''`.
        i += 2;
        while i < n && b[i] != b'\'' {
            i += 1;
        }
        return ((i + 1).min(n), TokenKind::Char);
    }
    if ident_start(b.get(i)) {
        let mut j = i;
        while j < n && ident_continue(b[j]) {
            j += 1;
        }
        if j < n && b[j] == b'\'' {
            // `'a'` — a one-ident char literal.
            return (j + 1, TokenKind::Char);
        }
        // `'a`, `'static` — a lifetime.
        return (j, TokenKind::Lifetime);
    }
    // `'.'`, `'('` … any single char followed by a quote.
    if i + 1 < n && b[i + 1] == b'\'' {
        return (i + 2, TokenKind::Char);
    }
    (i + 1, TokenKind::Char)
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` if present at `i`.
fn lex_prefixed_literal(b: &[u8], i: usize) -> Option<(usize, TokenKind)> {
    let n = b.len();
    let (mut j, byte) = match b[i] {
        b'r' => (i + 1, false),
        b'b' if b.get(i + 1) == Some(&b'r') => (i + 2, true),
        b'b' => (i + 1, true),
        _ => return None,
    };
    if byte && b.get(i + 1) == Some(&b'\'') {
        // `b'x'` byte literal.
        let (end, _) = lex_quote(b, i + 1);
        return Some((end, TokenKind::Char));
    }
    if byte && j == i + 1 && b.get(j) == Some(&b'"') {
        // `b"…"` plain byte string.
        return Some((skip_string(b, j), TokenKind::Str));
    }
    // Raw (byte) string: hashes then a quote.
    let hash_start = j;
    while j < n && b[j] == b'#' {
        j += 1;
    }
    let hashes = j - hash_start;
    if b.get(j) != Some(&b'"') || (b[i] == b'b' && !byte) {
        return None;
    }
    if b[i] == b'r' && hashes == 0 && j == i + 1 {
        // `r"…"` with no hashes — fall through to the search below.
    }
    // Find `"` followed by `hashes` hashes.
    let mut k = j + 1;
    while k < n {
        if b[k] == b'"' {
            let mut h = 0usize;
            while k + 1 + h < n && b[k + 1 + h] == b'#' && h < hashes {
                h += 1;
            }
            if h == hashes {
                return Some((k + 1 + hashes, TokenKind::Str));
            }
        }
        k += 1;
    }
    Some((n, TokenKind::Str))
}

/// Extracts directives and `SAFETY:` annotations from one comment's text.
fn scan_comment(text: &str, line: u32, out: &mut Lexed) {
    if text.contains("SAFETY:") {
        out.safety_lines.push(line);
    }
    const KEY: &str = "rowfpga-lint:";
    // Doc comments are documentation: they may *mention* the directive
    // grammar (this crate's own docs do) but never carry directives.
    if (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
    {
        return;
    }
    // A directive must be the comment's entire leading content; a comment
    // whose prose merely mentions the marker mid-sentence is not one.
    let body = text.trim_start_matches(['/', '*']).trim_start();
    let Some(tail) = body.strip_prefix(KEY) else {
        return;
    };
    let rest = tail
        .trim_end_matches("*/")
        .lines()
        .next()
        .unwrap_or("")
        .trim();
    out.directives.push(PlacedDirective {
        line,
        directive: parse_directive(rest),
    });
}

/// The lint names that may appear in allow directives. `panic` and
/// `reachability` are deliberately absent: panic sites are governed by
/// the budget ratchet, never by inline allows.
const ALLOWABLE: &[&str] = &[
    "hot-path",
    "determinism",
    "cfg-hygiene",
    "unsafe",
    "taint",
    "durability",
    "locks",
];

fn parse_directive(rest: &str) -> Directive {
    if rest == "hot-path" {
        return Directive::HotPath;
    }
    if rest == "no-panic" {
        return Directive::NoPanic;
    }
    if rest == "durable" {
        return Directive::Durable;
    }
    for (verb, wants_reason) in [
        ("allow", true),
        ("begin-allow", true),
        ("end-allow", false),
        ("allow-file", true),
    ] {
        let Some(tail) = rest.strip_prefix(verb) else {
            continue;
        };
        let Some(tail) = tail.strip_prefix('(') else {
            continue;
        };
        let Some(close) = tail.find(')') else {
            return Directive::Malformed {
                detail: format!("unclosed lint name in `{verb}(`"),
            };
        };
        let lint = tail[..close].trim().to_string();
        if !ALLOWABLE.contains(&lint.as_str()) {
            return Directive::Malformed {
                detail: format!(
                    "unknown lint `{lint}` (expected one of {})",
                    ALLOWABLE.join(", ")
                ),
            };
        }
        let after = tail[close + 1..].trim();
        if !wants_reason {
            if !after.is_empty() {
                return Directive::Malformed {
                    detail: format!("unexpected text after `end-allow({lint})`"),
                };
            }
            return Directive::EndAllow { lint };
        }
        let Some(reason) = after.strip_prefix("reason=") else {
            return Directive::Malformed {
                detail: format!("`{verb}({lint})` is missing `reason=<text>`"),
            };
        };
        let reason = reason.trim().to_string();
        if reason.is_empty() {
            return Directive::Malformed {
                detail: format!("`{verb}({lint})` has an empty reason"),
            };
        }
        return match verb {
            "allow" => Directive::Allow { lint, reason },
            "begin-allow" => Directive::BeginAllow { lint, reason },
            _ => Directive::AllowFile { lint, reason },
        };
    }
    Directive::Malformed {
        detail: format!("unrecognized directive `{rest}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let lx = lex(src);
        lx.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokenKind::Ident)
            .map(|(i, _)| lx.text(src, i).to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "call .clone() here"; // and .clone() here
            /* block .clone() */
            let r = r#"raw "quoted" .clone()"#;
            let c = '"'; let l: &'static str = "x";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"clone".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let lx = lex(src);
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn escaped_quote_char_does_not_derail() {
        let src = r"let q = '\''; let x = y.clone();";
        assert!(idents(src).contains(&"clone".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment .clone() */ real()";
        let ids = idents(src);
        assert_eq!(ids, vec!["real"]);
    }

    #[test]
    fn raw_identifier_is_normalized() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn directive_parsing() {
        let src = "\
// rowfpga-lint: hot-path
x(); // rowfpga-lint: allow(determinism) reason=order independent
// rowfpga-lint: begin-allow(hot-path) reason=constructor
// rowfpga-lint: end-allow(hot-path)
// rowfpga-lint: allow-file(cfg-hygiene) reason=module gated in lib.rs
// rowfpga-lint: allow(nonsense) reason=nope
// rowfpga-lint: allow(determinism)
";
        let lx = lex(src);
        let kinds: Vec<_> = lx.directives.iter().map(|d| &d.directive).collect();
        assert!(matches!(kinds[0], Directive::HotPath));
        assert!(matches!(kinds[1], Directive::Allow { .. }));
        assert!(matches!(kinds[2], Directive::BeginAllow { .. }));
        assert!(matches!(kinds[3], Directive::EndAllow { .. }));
        assert!(matches!(kinds[4], Directive::AllowFile { .. }));
        assert!(matches!(kinds[5], Directive::Malformed { .. }));
        assert!(matches!(kinds[6], Directive::Malformed { .. }));
        assert_eq!(lx.directives[1].line, 2);
    }

    #[test]
    fn doc_comments_and_prose_mentions_are_not_directives() {
        let src = "\
//! rowfpga-lint: this doc line mentions the marker in prose.
/// Opt in with a leading `// rowfpga-lint: hot-path` comment.
// The rowfpga-lint: marker must lead the comment to count.
/* rowfpga-lint: hot-path */
";
        let lx = lex(src);
        assert_eq!(lx.directives.len(), 1, "{:?}", lx.directives);
        assert!(matches!(lx.directives[0].directive, Directive::HotPath));
        assert_eq!(lx.directives[0].line, 4);
    }

    #[test]
    fn safety_lines_recorded() {
        let src = "// SAFETY: bounds checked above\nunsafe { x() }\n";
        let lx = lex(src);
        assert_eq!(lx.safety_lines, vec![1]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..10 { }";
        let lx = lex(src);
        let nums: Vec<_> = lx
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokenKind::Num)
            .map(|(i, _)| lx.text(src, i).to_string())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }
}
