//! The panic-discipline ratchet: `lint-budget.toml`.
//!
//! The budget records, per crate, how many panic sites (`.unwrap()`,
//! `.expect(`, `panic!`, `unreachable!`) its non-test library code
//! contains. The ratchet is strict in both directions:
//!
//! * a count **above** budget fails — new code must use typed errors;
//! * a count **below** budget also fails, telling you to run
//!   `rowfpga lint --fix-budget` — so improvements get locked in and the
//!   committed file never drifts from reality (a stale, slack budget
//!   would quietly absorb regressions).
//!
//! `--fix-budget` only ever writes counts **at or below** the committed
//! ones (or entries for new crates); it refuses to ratchet upward.
//!
//! The parser handles exactly the subset of TOML the file uses — one
//! `[panics]` table of `name = integer` lines with `#` comments — so the
//! lint engine stays dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed budget: crate name → permitted panic-site count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Per-crate ceilings, sorted by crate name.
    pub panics: BTreeMap<String, usize>,
}

/// Budget file problems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetError {
    /// A line that is neither a table header, a comment, nor `key = int`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// `--fix-budget` refused because a count rose.
    RatchetUp {
        /// Crate whose count increased.
        krate: String,
        /// Committed ceiling.
        budget: usize,
        /// Observed count.
        actual: usize,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Malformed { line, text } => {
                write!(f, "lint-budget.toml line {line}: cannot parse `{text}`")
            }
            BudgetError::RatchetUp {
                krate,
                budget,
                actual,
            } => write!(
                f,
                "refusing to ratchet upward: {krate} has {actual} panic sites, budget {budget}; \
                 convert the new sites to typed errors instead"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

impl Budget {
    /// Parses the budget file text.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::Malformed`] on any unrecognized line.
    pub fn parse(text: &str) -> Result<Budget, BudgetError> {
        let mut budget = Budget::default();
        let mut in_panics = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                in_panics = name.trim() == "panics";
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BudgetError::Malformed {
                    line: idx + 1,
                    text: raw.to_string(),
                });
            };
            let count = value
                .trim()
                .parse::<usize>()
                .map_err(|_| BudgetError::Malformed {
                    line: idx + 1,
                    text: raw.to_string(),
                })?;
            if in_panics {
                budget
                    .panics
                    .insert(key.trim().trim_matches('"').to_string(), count);
            }
        }
        Ok(budget)
    }

    /// Renders the budget back to file text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# rowfpga-lint panic-discipline budget (see DESIGN.md \u{a7}11).\n\
             #\n\
             # Non-test panic sites (.unwrap/.expect/panic!/unreachable!) per crate.\n\
             # Counts may only shrink: `rowfpga lint` fails when a crate exceeds its\n\
             # budget AND when it beats it (run `rowfpga lint --fix-budget` to lock\n\
             # an improvement in). Never edit a number upward by hand.\n\n[panics]\n",
        );
        for (krate, count) in &self.panics {
            out.push_str(&format!("{krate} = {count}\n"));
        }
        out
    }

    /// Compares observed counts against the budget; returns one message
    /// per discrepancy (exceeded, improved-but-not-ratcheted, missing
    /// entry, stale entry).
    pub fn check(&self, actual: &BTreeMap<String, usize>) -> Vec<String> {
        let mut problems = Vec::new();
        for (krate, &count) in actual {
            match self.panics.get(krate) {
                None if count > 0 => problems.push(format!(
                    "{krate}: {count} panic sites but no budget entry; run \
                     `rowfpga lint --fix-budget` to record the baseline"
                )),
                None => {}
                Some(&ceiling) if count > ceiling => problems.push(format!(
                    "{krate}: {count} panic sites exceed the budget of {ceiling}; \
                     convert the new unwrap/expect/panic sites to typed errors"
                )),
                Some(&ceiling) if count < ceiling => problems.push(format!(
                    "{krate}: {count} panic sites beat the budget of {ceiling}; \
                     run `rowfpga lint --fix-budget` to ratchet the budget down"
                )),
                Some(_) => {}
            }
        }
        for krate in self.panics.keys() {
            if !actual.contains_key(krate) {
                problems.push(format!(
                    "{krate}: budget entry for a crate the workspace no longer has; \
                     run `rowfpga lint --fix-budget` to drop it"
                ));
            }
        }
        problems
    }

    /// Produces the re-ratcheted budget for `--fix-budget`: counts may
    /// stay, shrink, or appear for new crates — never grow.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::RatchetUp`] if any crate's observed count
    /// exceeds its committed ceiling.
    pub fn ratcheted(&self, actual: &BTreeMap<String, usize>) -> Result<Budget, BudgetError> {
        let mut next = Budget::default();
        for (krate, &count) in actual {
            if let Some(&ceiling) = self.panics.get(krate) {
                if count > ceiling {
                    return Err(BudgetError::RatchetUp {
                        krate: krate.clone(),
                        budget: ceiling,
                        actual: count,
                    });
                }
            }
            next.panics.insert(krate.clone(), count);
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn round_trips() {
        let b = Budget {
            panics: counts(&[("rowfpga-route", 3), ("rowfpga-core", 10)]),
        };
        let parsed = Budget::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Budget::parse("[panics]\nroute three\n").is_err());
        assert!(Budget::parse("[panics]\nroute = many\n").is_err());
    }

    #[test]
    fn exceeding_and_beating_both_fail() {
        let b = Budget {
            panics: counts(&[("a", 5)]),
        };
        assert_eq!(b.check(&counts(&[("a", 5)])), Vec::<String>::new());
        assert_eq!(b.check(&counts(&[("a", 6)])).len(), 1);
        assert_eq!(b.check(&counts(&[("a", 4)])).len(), 1);
    }

    #[test]
    fn missing_and_stale_entries_reported() {
        let b = Budget {
            panics: counts(&[("gone", 2)]),
        };
        let problems = b.check(&counts(&[("new", 1)]));
        assert_eq!(problems.len(), 2);
        // A new crate with zero sites needs no entry.
        let b2 = Budget::default();
        assert!(b2.check(&counts(&[("clean", 0)])).is_empty());
    }

    #[test]
    fn ratchet_shrinks_but_never_grows() {
        let b = Budget {
            panics: counts(&[("a", 5), ("gone", 1)]),
        };
        let next = b.ratcheted(&counts(&[("a", 3), ("fresh", 7)])).unwrap();
        assert_eq!(next.panics, counts(&[("a", 3), ("fresh", 7)]));
        assert!(matches!(
            b.ratcheted(&counts(&[("a", 6)])),
            Err(BudgetError::RatchetUp { .. })
        ));
    }
}
