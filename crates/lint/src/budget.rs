//! The discipline ratchets: `lint-budget.toml`.
//!
//! The budget records three per-crate counts:
//!
//! * `[panics]` — non-test panic sites (`.unwrap()`, `.expect(`,
//!   `panic!`, `unreachable!`) in library code;
//! * `[taint]` — transitive determinism leaks into solver/digest code
//!   found by the call-graph taint analysis;
//! * `[reachability]` — panic sites (including slice indexing) reachable
//!   through any call path from hot-path / no-panic entry functions.
//!
//! Every table is strict in both directions:
//!
//! * a count **above** budget fails — new code must use typed errors (or
//!   thread values in explicitly, or restore the call-path guarantee);
//! * a count **below** budget also fails, telling you to run
//!   `rowfpga lint --fix-budget` — so improvements get locked in and the
//!   committed file never drifts from reality (a stale, slack budget
//!   would quietly absorb regressions).
//!
//! `--fix-budget` only ever writes counts **at or below** the committed
//! ones (or entries for new crates); it refuses to ratchet upward.
//!
//! The parser handles exactly the subset of TOML the file uses — named
//! tables of `name = integer` lines with `#` comments — so the lint
//! engine stays dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// The three budget tables, in file order.
const TABLES: &[&str] = &["panics", "taint", "reachability"];

/// Parsed budget: per table, crate name → permitted count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Per-crate panic-site ceilings.
    pub panics: BTreeMap<String, usize>,
    /// Per-crate transitive determinism-leak ceilings.
    pub taint: BTreeMap<String, usize>,
    /// Per-crate reachable-panic-site ceilings.
    pub reachability: BTreeMap<String, usize>,
}

/// Observed counts, mirroring the [`Budget`] tables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Observed {
    /// Non-test panic sites per crate.
    pub panics: BTreeMap<String, usize>,
    /// Transitive determinism leaks per sink crate.
    pub taint: BTreeMap<String, usize>,
    /// Reachable panic sites per entry crate.
    pub reachability: BTreeMap<String, usize>,
}

/// Budget file problems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetError {
    /// A line that is neither a table header, a comment, nor `key = int`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// `--fix-budget` refused because a count rose.
    RatchetUp {
        /// Table the increase is in.
        table: String,
        /// Crate whose count increased.
        krate: String,
        /// Committed ceiling.
        budget: usize,
        /// Observed count.
        actual: usize,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Malformed { line, text } => {
                write!(f, "lint-budget.toml line {line}: cannot parse `{text}`")
            }
            BudgetError::RatchetUp {
                table,
                krate,
                budget,
                actual,
            } => write!(
                f,
                "refusing to ratchet upward: [{table}] {krate} has {actual} sites, \
                 budget {budget}; fix the regression instead"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

impl Budget {
    fn table(&self, name: &str) -> &BTreeMap<String, usize> {
        match name {
            "taint" => &self.taint,
            "reachability" => &self.reachability,
            _ => &self.panics,
        }
    }

    fn table_mut(&mut self, name: &str) -> &mut BTreeMap<String, usize> {
        match name {
            "taint" => &mut self.taint,
            "reachability" => &mut self.reachability,
            _ => &mut self.panics,
        }
    }

    /// Parses the budget file text.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::Malformed`] on any unrecognized line.
    pub fn parse(text: &str) -> Result<Budget, BudgetError> {
        let mut budget = Budget::default();
        let mut current: Option<&str> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                current = TABLES.iter().copied().find(|t| *t == name.trim());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BudgetError::Malformed {
                    line: idx + 1,
                    text: raw.to_string(),
                });
            };
            let count = value
                .trim()
                .parse::<usize>()
                .map_err(|_| BudgetError::Malformed {
                    line: idx + 1,
                    text: raw.to_string(),
                })?;
            if let Some(table) = current {
                budget
                    .table_mut(table)
                    .insert(key.trim().trim_matches('"').to_string(), count);
            }
        }
        Ok(budget)
    }

    /// Renders the budget back to file text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# rowfpga-lint discipline budgets (see DESIGN.md \u{a7}11 and \u{a7}14).\n\
             #\n\
             # [panics]: non-test panic sites (.unwrap/.expect/panic!/unreachable!)\n\
             # per crate. [taint]: transitive determinism leaks into solver/digest\n\
             # code. [reachability]: panic sites (incl. slice indexing) reachable\n\
             # from hot-path / no-panic entry functions, per entry crate.\n\
             #\n\
             # Counts may only shrink: `rowfpga lint` fails when a crate exceeds its\n\
             # budget AND when it beats it (run `rowfpga lint --fix-budget` to lock\n\
             # an improvement in). Never edit a number upward by hand.\n",
        );
        for table in TABLES {
            out.push_str(&format!("\n[{table}]\n"));
            for (krate, count) in self.table(table) {
                out.push_str(&format!("{krate} = {count}\n"));
            }
        }
        out
    }

    /// Compares observed counts against the budget; returns one message
    /// per discrepancy (exceeded, improved-but-not-ratcheted, missing
    /// entry, stale entry).
    pub fn check(&self, observed: &Observed) -> Vec<String> {
        let mut problems = Vec::new();
        for table in TABLES {
            check_table(
                table,
                self.table(table),
                observed.table(table),
                &mut problems,
            );
        }
        problems
    }

    /// Produces the re-ratcheted budget for `--fix-budget`: counts may
    /// stay, shrink, or appear for new crates — never grow.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::RatchetUp`] if any crate's observed count
    /// exceeds its committed ceiling.
    pub fn ratcheted(&self, observed: &Observed) -> Result<Budget, BudgetError> {
        let mut next = Budget::default();
        for table in TABLES {
            for (krate, &count) in observed.table(table) {
                if let Some(&ceiling) = self.table(table).get(krate) {
                    if count > ceiling {
                        return Err(BudgetError::RatchetUp {
                            table: table.to_string(),
                            krate: krate.clone(),
                            budget: ceiling,
                            actual: count,
                        });
                    }
                }
                next.table_mut(table).insert(krate.clone(), count);
            }
        }
        Ok(next)
    }
}

impl Observed {
    fn table(&self, name: &str) -> &BTreeMap<String, usize> {
        match name {
            "taint" => &self.taint,
            "reachability" => &self.reachability,
            _ => &self.panics,
        }
    }
}

/// The fix hint per table, used in check messages.
fn fix_hint(table: &str) -> &'static str {
    match table {
        "taint" => "thread the value in explicitly or add a reasoned allow(taint)",
        "reachability" => "convert the reachable panic sites to typed errors or let-else",
        _ => "convert the new unwrap/expect/panic sites to typed errors",
    }
}

fn check_table(
    table: &str,
    budget: &BTreeMap<String, usize>,
    actual: &BTreeMap<String, usize>,
    problems: &mut Vec<String>,
) {
    for (krate, &count) in actual {
        match budget.get(krate) {
            None if count > 0 => problems.push(format!(
                "[{table}] {krate}: {count} sites but no budget entry; run \
                 `rowfpga lint --fix-budget` to record the baseline"
            )),
            None => {}
            Some(&ceiling) if count > ceiling => problems.push(format!(
                "[{table}] {krate}: {count} sites exceed the budget of {ceiling}; {}",
                fix_hint(table)
            )),
            Some(&ceiling) if count < ceiling => problems.push(format!(
                "[{table}] {krate}: {count} sites beat the budget of {ceiling}; \
                 run `rowfpga lint --fix-budget` to ratchet the budget down"
            )),
            Some(_) => {}
        }
    }
    for krate in budget.keys() {
        if !actual.contains_key(krate) {
            problems.push(format!(
                "[{table}] {krate}: budget entry for a crate the workspace no longer \
                 has; run `rowfpga lint --fix-budget` to drop it"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn observed(panics: &[(&str, usize)]) -> Observed {
        Observed {
            panics: counts(panics),
            ..Observed::default()
        }
    }

    #[test]
    fn round_trips_all_three_tables() {
        let b = Budget {
            panics: counts(&[("rowfpga-route", 3), ("rowfpga-core", 10)]),
            taint: counts(&[("rowfpga-core", 0)]),
            reachability: counts(&[("rowfpga-route", 41)]),
        };
        let parsed = Budget::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn parses_the_legacy_single_table_file() {
        let b = Budget::parse("[panics]\nrowfpga-route = 3\n").unwrap();
        assert_eq!(b.panics, counts(&[("rowfpga-route", 3)]));
        assert!(b.taint.is_empty() && b.reachability.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Budget::parse("[panics]\nroute three\n").is_err());
        assert!(Budget::parse("[panics]\nroute = many\n").is_err());
    }

    #[test]
    fn exceeding_and_beating_both_fail() {
        let b = Budget {
            panics: counts(&[("a", 5)]),
            ..Budget::default()
        };
        assert_eq!(b.check(&observed(&[("a", 5)])), Vec::<String>::new());
        assert_eq!(b.check(&observed(&[("a", 6)])).len(), 1);
        assert_eq!(b.check(&observed(&[("a", 4)])).len(), 1);
    }

    #[test]
    fn tables_are_checked_independently() {
        let b = Budget {
            panics: counts(&[("a", 5)]),
            taint: counts(&[("a", 0)]),
            reachability: counts(&[("a", 7)]),
        };
        let ob = Observed {
            panics: counts(&[("a", 5)]),
            taint: counts(&[("a", 1)]),
            reachability: counts(&[("a", 7)]),
        };
        let problems = b.check(&ob);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].starts_with("[taint] a: 1 sites exceed"));
    }

    #[test]
    fn missing_and_stale_entries_reported() {
        let b = Budget {
            panics: counts(&[("gone", 2)]),
            ..Budget::default()
        };
        let problems = b.check(&observed(&[("new", 1)]));
        assert_eq!(problems.len(), 2);
        // A new crate with zero sites needs no entry.
        let b2 = Budget::default();
        assert!(b2.check(&observed(&[("clean", 0)])).is_empty());
    }

    #[test]
    fn ratchet_shrinks_but_never_grows() {
        let b = Budget {
            panics: counts(&[("a", 5), ("gone", 1)]),
            ..Budget::default()
        };
        let next = b.ratcheted(&observed(&[("a", 3), ("fresh", 7)])).unwrap();
        assert_eq!(next.panics, counts(&[("a", 3), ("fresh", 7)]));
        assert!(matches!(
            b.ratcheted(&observed(&[("a", 6)])),
            Err(BudgetError::RatchetUp { .. })
        ));
    }

    #[test]
    fn ratchet_up_in_any_table_is_refused() {
        let b = Budget {
            reachability: counts(&[("a", 3)]),
            ..Budget::default()
        };
        let ob = Observed {
            reachability: counts(&[("a", 4)]),
            ..Observed::default()
        };
        match b.ratcheted(&ob) {
            Err(BudgetError::RatchetUp { table, .. }) => assert_eq!(table, "reachability"),
            other => panic!("expected RatchetUp, got {other:?}"),
        }
    }
}
