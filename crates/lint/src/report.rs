//! Lint results: violations, the aggregate report, and its text/JSON
//! renderings.

use std::collections::BTreeMap;
use std::fmt;

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Lint id (`hot-path`, `determinism`, `panic-budget`, `cfg-hygiene`,
    /// `unsafe`, `forbid-unsafe`, `directive`).
    pub lint: String,
    /// Workspace-relative file path (or `lint-budget.toml` for ratchet
    /// findings).
    pub file: String,
    /// 1-based line, 0 when the finding is file- or crate-scoped.
    pub line: u32,
    /// Human explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.lint, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.file, self.lint, self.message)
        }
    }
}

/// Everything one lint run produced.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All violations, in workspace-walk order (crate, file, line).
    pub violations: Vec<Violation>,
    /// Observed non-test panic sites per crate.
    pub panic_counts: BTreeMap<String, usize>,
    /// Crates walked.
    pub crates: usize,
    /// Files lexed and linted.
    pub files: usize,
    /// Files carrying the hot-path marker.
    pub hot_path_files: usize,
}

impl LintReport {
    /// Whether the run is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("{v}\n"));
        }
        let total: usize = self.panic_counts.values().sum();
        out.push_str(&format!(
            "rowfpga-lint: {} crate(s), {} file(s), {} hot-path module(s), \
             {} budgeted panic site(s): {}\n",
            self.crates,
            self.files,
            self.hot_path_files,
            total,
            if self.ok() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        ));
        out
    }

    /// Machine-readable report for CI artifacts.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"ok\": ");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push_str(&format!(
            ",\n  \"crates\": {},\n  \"files\": {},\n  \"hot_path_files\": {},\n",
            self.crates, self.files, self.hot_path_files
        ));
        out.push_str("  \"panic_counts\": {");
        for (i, (krate, count)) in self.panic_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {count}", json_str(krate)));
        }
        out.push_str("\n  },\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&v.lint),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (the report contains no exotic content,
/// but backslashes and quotes do appear in messages quoting attributes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn json_report_shape() {
        let mut r = LintReport::default();
        r.panic_counts.insert("rowfpga-route".to_string(), 3);
        r.violations.push(Violation {
            lint: "determinism".to_string(),
            file: "crates/x/src/lib.rs".to_string(),
            line: 4,
            message: "uses `HashMap`".to_string(),
        });
        let json = r.render_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"rowfpga-route\": 3"));
        assert!(json.contains("\"line\": 4"));
    }
}
