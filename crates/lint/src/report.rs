//! Lint results: violations, the aggregate report, and its text/JSON
//! renderings.

use std::collections::BTreeMap;
use std::fmt;

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Violation {
    /// Lint id (`hot-path`, `determinism`, `taint`, `reachability`,
    /// `durability`, `locks`, `panic-budget`, `cfg-hygiene`, `unsafe`,
    /// `forbid-unsafe`, `directive`).
    pub lint: String,
    /// Workspace-relative file path (or `lint-budget.toml` for ratchet
    /// findings).
    pub file: String,
    /// 1-based line, 0 when the finding is file- or crate-scoped.
    pub line: u32,
    /// Human explanation with the suggested fix.
    pub message: String,
    /// Interprocedural call chain (empty for token-level findings). Each
    /// frame is a `crate::module::fn (file:line)` string, ordered from
    /// the flagged function toward the root cause.
    pub chain: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.lint, self.message
            )?;
        } else {
            write!(f, "{}: [{}] {}", self.file, self.lint, self.message)?;
        }
        for frame in &self.chain {
            write!(f, "\n    via {frame}")?;
        }
        Ok(())
    }
}

/// Everything one lint run produced.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by (file, line, lint) for deterministic
    /// output.
    pub violations: Vec<Violation>,
    /// Observed non-test panic sites per crate.
    pub panic_counts: BTreeMap<String, usize>,
    /// Observed transitive determinism-taint leaks per sink crate.
    pub taint_counts: BTreeMap<String, usize>,
    /// Observed reachable panic sites per entry crate (hot-path and
    /// no-panic files).
    pub reach_counts: BTreeMap<String, usize>,
    /// Crates walked.
    pub crates: usize,
    /// Files lexed and linted.
    pub files: usize,
    /// Files carrying the hot-path marker.
    pub hot_path_files: usize,
}

impl LintReport {
    /// Whether the run is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sorts violations by (file, line, lint, message) so both renderings
    /// are byte-stable across runs and platforms.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| {
            (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
        });
    }

    /// Human-readable summary for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("{v}\n"));
        }
        let total: usize = self.panic_counts.values().sum();
        let reach: usize = self.reach_counts.values().sum();
        out.push_str(&format!(
            "rowfpga-lint: {} crate(s), {} file(s), {} hot-path module(s), \
             {} budgeted panic site(s), {} reachable panic site(s): {}\n",
            self.crates,
            self.files,
            self.hot_path_files,
            total,
            reach,
            if self.ok() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        ));
        out
    }

    /// Machine-readable report for CI artifacts. `violations` is always
    /// an array — `[]` on clean and budget-only runs, never `null`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"ok\": ");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push_str(&format!(
            ",\n  \"crates\": {},\n  \"files\": {},\n  \"hot_path_files\": {},\n",
            self.crates, self.files, self.hot_path_files
        ));
        for (key, counts) in [
            ("panic_counts", &self.panic_counts),
            ("taint_counts", &self.taint_counts),
            ("reach_counts", &self.reach_counts),
        ] {
            out.push_str(&format!("  \"{key}\": {{"));
            for (i, (krate, count)) in counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    {}: {count}", json_str(krate)));
            }
            if !counts.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("},\n");
        }
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"chain\": [{}]}}",
                json_str(&v.lint),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                v.chain
                    .iter()
                    .map(|f| json_str(f))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (the report contains no exotic content,
/// but backslashes and quotes do appear in messages quoting attributes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn json_report_shape() {
        let mut r = LintReport::default();
        r.panic_counts.insert("rowfpga-route".to_string(), 3);
        r.violations.push(Violation {
            lint: "determinism".to_string(),
            file: "crates/x/src/lib.rs".to_string(),
            line: 4,
            message: "uses `HashMap`".to_string(),
            chain: vec!["x::f (crates/x/src/lib.rs:4)".to_string()],
        });
        let json = r.render_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"rowfpga-route\": 3"));
        assert!(json.contains("\"line\": 4"));
        assert!(json.contains("\"chain\": [\"x::f (crates/x/src/lib.rs:4)\"]"));
    }

    #[test]
    fn clean_json_keeps_violations_an_empty_array() {
        let json = LintReport::default().render_json();
        assert!(json.contains("\"violations\": [\n  ]"), "{json}");
        assert!(!json.contains("null"), "{json}");
        assert!(json.contains("\"taint_counts\": {}"), "{json}");
    }

    #[test]
    fn sort_orders_by_file_line_lint() {
        let mut r = LintReport::default();
        let v = |file: &str, line: u32, lint: &str| Violation {
            lint: lint.to_string(),
            file: file.to_string(),
            line,
            ..Violation::default()
        };
        r.violations = vec![v("b.rs", 1, "x"), v("a.rs", 9, "x"), v("a.rs", 9, "a")];
        r.sort();
        let order: Vec<(String, u32, String)> = r
            .violations
            .iter()
            .map(|v| (v.file.clone(), v.line, v.lint.clone()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 9, "a".to_string()),
                ("a.rs".to_string(), 9, "x".to_string()),
                ("b.rs".to_string(), 1, "x".to_string()),
            ]
        );
    }
}
