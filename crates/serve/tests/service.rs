//! In-process service tests: one daemon per test on a private socket and
//! spool, real engine runs (small netlists, fast profile).
//!
//! The headline assertions are the robustness contracts from DESIGN.md
//! §13: bounded-queue backpressure, checkpoint-backed preemption with a
//! bit-identical final digest, graceful drain that leaves a resumable
//! spool, deadline degradation, and quarantine-not-crash recovery.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::time::Duration;

use rowfpga_core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga_netlist::{generate, parse_netlist, write_netlist, GenerateConfig};
use rowfpga_obs::Json;
use rowfpga_serve::daemon::{Daemon, ServeConfig};
use rowfpga_serve::{client, layout_digest, JobSpec, JobState, Spool};

const WAIT: Duration = Duration::from_secs(240);

fn netlist_text(cells: usize) -> String {
    write_netlist(&generate(&GenerateConfig {
        num_cells: cells,
        num_inputs: 8,
        num_outputs: 6,
        num_seq: 4,
        ..GenerateConfig::default()
    }))
}

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rowfpga-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(root: &Path) -> ServeConfig {
    ServeConfig::new(root.join("sock"), root.join("spool"))
}

fn spec(netlist: &str) -> JobSpec {
    JobSpec {
        netlist: netlist.to_string(),
        fast: true,
        ..JobSpec::default()
    }
}

/// What the engine produces for this spec when nothing interferes, under
/// the daemon's own engine configuration (checkpointing on, armed stop):
/// resilience turns on best-so-far tracking, so the service's digests are
/// compared against a resilience-configured run, not a bare one.
fn reference_digest(name: &str, netlist: &str, seed: u64) -> String {
    let nl = parse_netlist(netlist).unwrap();
    let arch = size_architecture(&nl, &SizingConfig::default()).unwrap();
    let scratch = temp_root(&format!("ref-{name}"));
    let mut cfg = SimPrConfig::fast().with_seed(seed);
    cfg.resilience.checkpoint_path = Some(scratch.join("checkpoint.json"));
    cfg.resilience.checkpoint_every = 1;
    let result = SimultaneousPlaceRoute::new(cfg)
        .run_with_stop(
            &arch,
            &nl,
            "reference",
            &rowfpga_obs::Obs::disabled(),
            &rowfpga_core::StopFlag::manual(),
        )
        .unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
    layout_digest(&nl, &result)
}

fn digest_of(status: &Json) -> String {
    status
        .get("result")
        .and_then(|r| r.get("digest"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn poll_until_running(socket: &Path, id: &str) {
    for _ in 0..24_000 {
        let doc = client::status(socket, id).unwrap();
        match client::state_of(&doc) {
            Some("running") => return,
            Some("queued") => std::thread::sleep(Duration::from_millis(5)),
            other => panic!("job {id} reached {other:?} before running"),
        }
    }
    panic!("job {id} never started running");
}

#[test]
fn submit_wait_status_list_round_trip() {
    let root = temp_root("basics");
    let handle = Daemon::start(config(&root)).unwrap();
    let socket = root.join("sock");

    let pong = client::request(&socket, &Json::obj(vec![("cmd", "ping".into())])).unwrap();
    assert_eq!(
        pong.get("service").and_then(Json::as_str),
        Some("rowfpga-serve")
    );

    let netlist = netlist_text(24);
    let id = client::submit(&socket, &spec(&netlist)).unwrap();
    let done = client::wait(&socket, &id, WAIT).unwrap();
    assert_eq!(client::state_of(&done), Some("done"));
    assert_eq!(
        done.get("job")
            .and_then(|j| j.get("stop_reason"))
            .and_then(Json::as_str),
        Some("converged")
    );
    assert_eq!(digest_of(&done), reference_digest("basics", &netlist, 1));

    let listed = client::request(&socket, &Json::obj(vec![("cmd", "list".into())])).unwrap();
    let rows = match listed.get("jobs") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("jobs is not an array: {other:?}"),
    };
    assert!(rows
        .iter()
        .any(|r| r.get("id").and_then(Json::as_str) == Some(id.as_str())));

    // Bad input is rejected at submit time, not on a worker.
    let err = client::submit(&socket, &spec("definitely not a netlist")).unwrap_err();
    assert!(err.to_string().contains("netlist"), "{err}");

    let stats = handle.shutdown();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.completed, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn full_queue_rejects_with_retry_after_and_cancel_works() {
    let root = temp_root("backpressure");
    let mut cfg = config(&root);
    cfg.queue_capacity = 1;
    let handle = Daemon::start(cfg).unwrap();
    let socket = root.join("sock");

    let long = netlist_text(140);
    let quick = netlist_text(24);
    let running = client::submit(&socket, &spec(&long)).unwrap();
    poll_until_running(&socket, &running);
    let queued = client::submit(&socket, &spec(&quick)).unwrap();

    // The queue (capacity 1) is now full: explicit backpressure.
    let err = client::submit(&socket, &spec(&quick)).unwrap_err();
    let rowfpga_serve::ClientError::Remote {
        retry_after_sec, ..
    } = &err
    else {
        panic!("expected a remote rejection, got {err}");
    };
    assert!(retry_after_sec.is_some(), "rejection carries no retry hint");

    // Canceling the queued job frees the slot immediately.
    let resp = client::request(
        &socket,
        &Json::obj(vec![
            ("cmd", "cancel".into()),
            ("job", queued.as_str().into()),
        ]),
    )
    .unwrap();
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("canceled"));
    let third = client::submit(&socket, &spec(&quick)).unwrap();

    // Canceling the running job stops it at a temperature boundary.
    client::request(
        &socket,
        &Json::obj(vec![
            ("cmd", "cancel".into()),
            ("job", running.as_str().into()),
        ]),
    )
    .unwrap();
    let ended = client::wait(&socket, &running, WAIT).unwrap();
    assert_eq!(client::state_of(&ended), Some("canceled"));
    let ok = client::wait(&socket, &third, WAIT).unwrap();
    assert_eq!(client::state_of(&ok), Some("done"));

    let stats = handle.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.canceled, 2);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn preemption_evicts_and_resumes_bit_identically() {
    let root = temp_root("preempt");
    let handle = Daemon::start(config(&root)).unwrap();
    let socket = root.join("sock");

    let long = netlist_text(140);
    let quick = netlist_text(24);
    let victim = client::submit(&socket, &spec(&long)).unwrap();
    poll_until_running(&socket, &victim);
    let urgent = client::submit(
        &socket,
        &JobSpec {
            priority: 10,
            ..spec(&quick)
        },
    )
    .unwrap();

    let urgent_done = client::wait(&socket, &urgent, WAIT).unwrap();
    assert_eq!(client::state_of(&urgent_done), Some("done"));
    let victim_done = client::wait(&socket, &victim, WAIT).unwrap();
    assert_eq!(client::state_of(&victim_done), Some("done"));

    let evictions = victim_done
        .get("job")
        .and_then(|j| j.get("evictions"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(evictions >= 1, "victim was never evicted");
    // The determinism contract: preempted-and-resumed equals uninterrupted.
    assert_eq!(
        digest_of(&victim_done),
        reference_digest("preempt-long", &long, 1)
    );
    assert_eq!(
        digest_of(&urgent_done),
        reference_digest("preempt-quick", &quick, 1)
    );

    let stats = handle.shutdown();
    assert!(stats.evictions >= 1);
    assert_eq!(stats.eviction_latency_sec.len() as u64, stats.evictions);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn drain_leaves_a_resumable_spool_and_the_restart_finishes_the_job() {
    let root = temp_root("drain");
    let handle = Daemon::start(config(&root)).unwrap();
    let socket = root.join("sock");

    let long = netlist_text(140);
    let id = client::submit(&socket, &spec(&long)).unwrap();
    poll_until_running(&socket, &id);
    let spool = Spool::open(&root.join("spool")).unwrap();
    // Wait for the first checkpoint so the drain has something to resume.
    for _ in 0..24_000 {
        if spool.has_checkpoint(&id) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(spool.has_checkpoint(&id), "no checkpoint before drain");
    handle.shutdown();

    // The drained job is durably Queued (not lost, not Running).
    let report = spool.scan();
    let rec = report.records.iter().find(|r| r.id == id).unwrap();
    assert_eq!(rec.state, JobState::Queued);
    assert!(rec.segments >= 1);

    // A restart on the same spool re-queues and finishes it.
    let handle = Daemon::start(config(&root)).unwrap();
    let done = client::wait(&socket, &id, WAIT).unwrap();
    assert_eq!(client::state_of(&done), Some("done"));
    assert_eq!(digest_of(&done), reference_digest("drain-long", &long, 1));
    let stats = handle.shutdown();
    assert_eq!(stats.recovered, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deadline_expiry_degrades_to_best_so_far() {
    let root = temp_root("deadline");
    let handle = Daemon::start(config(&root)).unwrap();
    let socket = root.join("sock");

    let id = client::submit(
        &socket,
        &JobSpec {
            deadline_sec: Some(0.05),
            ..spec(&netlist_text(140))
        },
    )
    .unwrap();
    let done = client::wait(&socket, &id, WAIT).unwrap();
    // Graceful degradation: the budget expiring is a completion, not a
    // failure, and the result is the engine's best-so-far layout.
    assert_eq!(client::state_of(&done), Some("done"));
    assert_eq!(
        done.get("job")
            .and_then(|j| j.get("stop_reason"))
            .and_then(Json::as_str),
        Some("deadline")
    );
    assert!(!digest_of(&done).is_empty());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn startup_quarantines_corrupt_spool_entries_instead_of_dying() {
    let root = temp_root("quarantine");
    let spool_dir = root.join("spool");
    std::fs::create_dir_all(spool_dir.join("jobs").join("job-000001")).unwrap();
    std::fs::write(
        spool_dir.join("jobs").join("job-000001").join("job.json"),
        "{\"format\":\"rowfpga-job\"",
    )
    .unwrap();

    let handle = Daemon::start(config(&root)).unwrap();
    let socket = root.join("sock");
    // The daemon is alive and serving despite the damage.
    let id = client::submit(&socket, &spec(&netlist_text(24))).unwrap();
    let done = client::wait(&socket, &id, WAIT).unwrap();
    assert_eq!(client::state_of(&done), Some("done"));

    let stats = handle.shutdown();
    assert_eq!(stats.quarantined, 1);
    assert!(spool_dir.join("quarantine").read_dir().unwrap().count() == 1);
    let _ = std::fs::remove_dir_all(&root);
}
