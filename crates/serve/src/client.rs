//! A thin blocking client for the daemon's line protocol, shared by the
//! CLI subcommands, the integration tests and the service benchmark.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use rowfpga_obs::Json;

use crate::job::JobSpec;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading the socket failed.
    Io(io::Error),
    /// The daemon answered, but with `ok:false`. The retry hint is set on
    /// backpressure rejections.
    Remote {
        /// The daemon's `error` detail.
        detail: String,
        /// `retry_after_sec`, when the daemon sent one.
        retry_after_sec: Option<f64>,
    },
    /// The daemon's answer was not a protocol response.
    Protocol(String),
    /// [`wait`] ran out of time.
    Timeout {
        /// The job that did not finish.
        id: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket i/o failed: {e}"),
            ClientError::Remote {
                detail,
                retry_after_sec: Some(after),
            } => write!(
                f,
                "daemon rejected the request: {detail} (retry after {after}s)"
            ),
            ClientError::Remote { detail, .. } => {
                write!(f, "daemon rejected the request: {detail}")
            }
            ClientError::Protocol(d) => write!(f, "malformed daemon response: {d}"),
            ClientError::Timeout { id } => write!(f, "timed out waiting for {id}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Sends one request document and returns the daemon's `ok:true`
/// response document.
///
/// # Errors
///
/// [`ClientError::Io`] on socket trouble, [`ClientError::Remote`] when
/// the daemon declines, [`ClientError::Protocol`] when the answer is not
/// a response.
pub fn request(socket: &Path, req: &Json) -> Result<Json, ClientError> {
    let mut stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    writeln!(stream, "{}", req.to_string_compact())?;
    stream.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let doc = rowfpga_obs::json::parse(&line)
        .map_err(|e| ClientError::Protocol(format!("not JSON: {e}")))?;
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(doc),
        Some(false) => Err(ClientError::Remote {
            detail: doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string(),
            retry_after_sec: doc.get("retry_after_sec").and_then(Json::as_f64),
        }),
        None => Err(ClientError::Protocol("response carries no 'ok'".into())),
    }
}

/// Submits a job and returns its id.
///
/// # Errors
///
/// See [`request`]; a full queue surfaces as [`ClientError::Remote`] with
/// `retry_after_sec` set.
pub fn submit(socket: &Path, spec: &JobSpec) -> Result<String, ClientError> {
    let opt_str = |v: &Option<String>| match v {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    };
    let req = Json::obj(vec![
        ("cmd", "submit".into()),
        ("netlist", spec.netlist.as_str().into()),
        ("arch", opt_str(&spec.arch)),
        (
            "tracks",
            spec.tracks.map_or(Json::Null, |t| (t as f64).into()),
        ),
        ("seed", Json::Str(spec.seed.to_string())),
        ("fast", spec.fast.into()),
        ("priority", (spec.priority as f64).into()),
        (
            "deadline_sec",
            spec.deadline_sec.map_or(Json::Null, Json::from),
        ),
        ("journal", opt_str(&spec.journal)),
    ]);
    let resp = request(socket, &req)?;
    resp.get("job")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol("submit response carries no 'job'".into()))
}

/// Fetches one job's status document (`job` + optional `result`).
///
/// # Errors
///
/// See [`request`].
pub fn status(socket: &Path, id: &str) -> Result<Json, ClientError> {
    request(
        socket,
        &Json::obj(vec![("cmd", "status".into()), ("job", id.into())]),
    )
}

/// The `state` string inside a status response.
pub fn state_of(status: &Json) -> Option<&str> {
    status.get("job")?.get("state")?.as_str()
}

/// Polls a job until it reaches a terminal state, returning its final
/// status document.
///
/// # Errors
///
/// [`ClientError::Timeout`] when `timeout` elapses first; otherwise see
/// [`request`].
pub fn wait(socket: &Path, id: &str, timeout: Duration) -> Result<Json, ClientError> {
    let start = Instant::now();
    loop {
        let doc = status(socket, id)?;
        if matches!(state_of(&doc), Some("done" | "failed" | "canceled")) {
            return Ok(doc);
        }
        if start.elapsed() >= timeout {
            return Err(ClientError::Timeout { id: id.to_string() });
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}
