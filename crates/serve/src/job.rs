//! Job specifications, lifecycle records and result summaries.
//!
//! A job is everything the daemon needs to run one layout independently
//! of the submitting client: the netlist text itself (embedded, so the
//! spool is self-contained and survives the client's working directory
//! disappearing), an optional architecture, the seed, the effort profile,
//! a priority and an execution budget. The [`JobRecord`] wraps the spec
//! with lifecycle state and accounting that must survive daemon crashes —
//! it is (re)written atomically to `job.json` in the job's spool
//! directory on every state transition, *before* the transition is
//! acknowledged to anyone.

use std::fmt;

use rowfpga_obs::Json;

/// `format` marker of a `job.json` document.
pub const JOB_FORMAT: &str = "rowfpga-job";
/// `format` marker of a `result.json` document.
pub const RESULT_FORMAT: &str = "rowfpga-job-result";
/// Current version of both documents.
pub const JOB_VERSION: u64 = 1;

/// A decode failure of a spool document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError(pub String);

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed job document: {}", self.0)
    }
}

impl std::error::Error for JobError {}

/// What to run: the client-controlled half of a job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Netlist text (the `.net` format of [`rowfpga_netlist::parse_netlist`]).
    pub netlist: String,
    /// Architecture text; when absent the fabric is auto-sized.
    pub arch: Option<String>,
    /// Tracks-per-channel override.
    pub tracks: Option<usize>,
    /// Placement seed (the anneal seed derives from it).
    pub seed: u64,
    /// Use the low-effort annealing profile.
    pub fast: bool,
    /// Scheduling priority; higher runs first and may evict lower.
    pub priority: i64,
    /// Execution budget in seconds, counted across preemptions and
    /// restarts. On expiry the job *completes* with its best-so-far
    /// layout and `stop_reason = "deadline"` (graceful degradation).
    pub deadline_sec: Option<f64>,
    /// Per-job journal sink spec (a file path or `unix:PATH`).
    pub journal: Option<String>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            netlist: String::new(),
            arch: None,
            tracks: None,
            seed: 1,
            fast: false,
            priority: 0,
            deadline_sec: None,
            journal: None,
        }
    }
}

/// Lifecycle state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker (also the state an evicted or
    /// crash-interrupted job returns to).
    Queued,
    /// A worker is annealing it right now.
    Running,
    /// Finished with a layout (including deadline-degraded best-so-far).
    Done,
    /// Finished without a layout (bad input, engine error).
    Failed,
    /// Canceled by a client before completion.
    Canceled,
}

impl JobState {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "canceled" => JobState::Canceled,
            _ => return None,
        })
    }

    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// One job's durable record: spec + lifecycle + accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Stable id, `job-NNNNNN`.
    pub id: String,
    /// Admission sequence number (FIFO tiebreak).
    pub seq: u64,
    /// What to run.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Annealing seconds consumed so far, across segments and restarts.
    pub spent_sec: f64,
    /// Run segments started (1 for an uninterrupted job).
    pub segments: u64,
    /// Times this job was preempted by a higher-priority one.
    pub evictions: u64,
    /// Failure detail when `state == Failed`.
    pub error: Option<String>,
    /// Engine stop reason of the final segment, once finished.
    pub stop_reason: Option<String>,
}

impl JobRecord {
    /// A fresh queued record.
    pub fn new(id: String, seq: u64, spec: JobSpec) -> JobRecord {
        JobRecord {
            id,
            seq,
            spec,
            state: JobState::Queued,
            spent_sec: 0.0,
            segments: 0,
            evictions: 0,
            error: None,
            stop_reason: None,
        }
    }

    /// Remaining execution budget in seconds, `None` when unbounded.
    pub fn remaining_budget(&self) -> Option<f64> {
        self.spec
            .deadline_sec
            .map(|d| (d - self.spent_sec).max(0.0))
    }

    /// Serializes the record as one JSON document.
    pub fn to_json(&self) -> Json {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => Json::Str(s.clone()),
            None => Json::Null,
        };
        let opt_num = |v: Option<f64>| match v {
            Some(n) => n.into(),
            None => Json::Null,
        };
        Json::obj(vec![
            ("format", JOB_FORMAT.into()),
            ("version", JOB_VERSION.into()),
            ("id", self.id.as_str().into()),
            ("seq", self.seq.into()),
            ("netlist", self.spec.netlist.as_str().into()),
            ("arch", opt_str(&self.spec.arch)),
            ("tracks", opt_num(self.spec.tracks.map(|t| t as f64))),
            ("seed", Json::Str(self.spec.seed.to_string())),
            ("fast", self.spec.fast.into()),
            ("priority", (self.spec.priority as f64).into()),
            ("deadline_sec", opt_num(self.spec.deadline_sec)),
            ("journal", opt_str(&self.spec.journal)),
            ("state", self.state.as_str().into()),
            ("spent_sec", self.spent_sec.into()),
            ("segments", self.segments.into()),
            ("evictions", self.evictions.into()),
            ("error", opt_str(&self.error)),
            ("stop_reason", opt_str(&self.stop_reason)),
        ])
    }

    /// Decodes a record document.
    ///
    /// # Errors
    ///
    /// Returns [`JobError`] on a missing or mistyped field, a foreign
    /// format marker, or an unsupported version.
    pub fn from_json(j: &Json) -> Result<JobRecord, JobError> {
        if get_str(j, "format")? != JOB_FORMAT {
            return Err(JobError(format!("not a {JOB_FORMAT} document")));
        }
        let version = get_u64(j, "version")?;
        if version != JOB_VERSION {
            return Err(JobError(format!("unsupported job version {version}")));
        }
        let state_str = get_str(j, "state")?;
        let state = JobState::parse(&state_str)
            .ok_or_else(|| JobError(format!("unknown state '{state_str}'")))?;
        Ok(JobRecord {
            id: get_str(j, "id")?,
            seq: get_u64(j, "seq")?,
            spec: JobSpec {
                netlist: get_str(j, "netlist")?,
                arch: opt_str_of(j, "arch")?,
                tracks: opt_f64_of(j, "tracks")?.map(|t| t as usize),
                seed: get_u64(j, "seed")?,
                fast: get_bool(j, "fast")?,
                priority: get_f64(j, "priority")? as i64,
                deadline_sec: opt_f64_of(j, "deadline_sec")?,
                journal: opt_str_of(j, "journal")?,
            },
            state,
            spent_sec: get_f64(j, "spent_sec")?,
            segments: get_u64(j, "segments")?,
            evictions: get_u64(j, "evictions")?,
            error: opt_str_of(j, "error")?,
            stop_reason: opt_str_of(j, "stop_reason")?,
        })
    }
}

/// The layout summary a finished job leaves in `result.json`.
///
/// `digest` fingerprints the final placement (site and pinmap per cell,
/// in cell order) together with the delay, move and temperature counts,
/// so two runs can be compared bit-for-bit without shipping layouts.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// Id of the job this result belongs to.
    pub id: String,
    /// Engine stop reason of the final segment.
    pub stop_reason: String,
    /// Worst-case path delay (ps).
    pub worst_delay: f64,
    /// Whether every net routed.
    pub fully_routed: bool,
    /// Nets without a global route.
    pub globally_unrouted: usize,
    /// Nets without a complete detailed route.
    pub incomplete: usize,
    /// Temperatures executed, across all segments.
    pub temperatures: usize,
    /// Annealing moves attempted, across all segments.
    pub total_moves: usize,
    /// Annealing seconds consumed, across segments and restarts.
    pub spent_sec: f64,
    /// Segments this job ran in.
    pub segments: u64,
    /// Times the job was preempted.
    pub evictions: u64,
    /// FNV-1a fingerprint of the final layout (hex).
    pub digest: String,
}

impl JobOutcome {
    /// Serializes the outcome as one JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format", RESULT_FORMAT.into()),
            ("version", JOB_VERSION.into()),
            ("id", self.id.as_str().into()),
            ("stop_reason", self.stop_reason.as_str().into()),
            ("worst_delay", self.worst_delay.into()),
            ("fully_routed", self.fully_routed.into()),
            ("globally_unrouted", self.globally_unrouted.into()),
            ("incomplete", self.incomplete.into()),
            ("temperatures", self.temperatures.into()),
            ("total_moves", self.total_moves.into()),
            ("spent_sec", self.spent_sec.into()),
            ("segments", self.segments.into()),
            ("evictions", self.evictions.into()),
            ("digest", self.digest.as_str().into()),
        ])
    }

    /// Decodes an outcome document.
    ///
    /// # Errors
    ///
    /// Returns [`JobError`] on a missing or mistyped field or a foreign
    /// format marker.
    pub fn from_json(j: &Json) -> Result<JobOutcome, JobError> {
        if get_str(j, "format")? != RESULT_FORMAT {
            return Err(JobError(format!("not a {RESULT_FORMAT} document")));
        }
        Ok(JobOutcome {
            id: get_str(j, "id")?,
            stop_reason: get_str(j, "stop_reason")?,
            worst_delay: get_f64(j, "worst_delay")?,
            fully_routed: get_bool(j, "fully_routed")?,
            globally_unrouted: get_f64(j, "globally_unrouted")? as usize,
            incomplete: get_f64(j, "incomplete")? as usize,
            temperatures: get_f64(j, "temperatures")? as usize,
            total_moves: get_f64(j, "total_moves")? as usize,
            spent_sec: get_f64(j, "spent_sec")?,
            segments: get_u64(j, "segments")?,
            evictions: get_u64(j, "evictions")?,
            digest: get_str(j, "digest")?,
        })
    }
}

/// FNV-1a 64-bit fingerprint of the final layout of `result`, taken over
/// a canonical text of (site, pinmap) per cell plus the run counters.
pub fn layout_digest(
    netlist: &rowfpga_netlist::Netlist,
    result: &rowfpga_core::LayoutResult,
) -> String {
    let mut text = String::new();
    for (id, _) in netlist.cells() {
        text.push_str(&format!(
            "{}:{} ",
            result.placement.site_of(id).index(),
            result.placement.pinmap_index(id)
        ));
    }
    text.push_str(&format!(
        "delay={:016x} moves={} temps={} gu={} inc={}",
        result.worst_delay.to_bits(),
        result.total_moves,
        result.temperatures,
        result.globally_unrouted,
        result.incomplete,
    ));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

// --- JSON field helpers ----------------------------------------------------

pub(crate) fn get_str(j: &Json, key: &str) -> Result<String, JobError> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| JobError(format!("missing or non-string '{key}'")))
}

pub(crate) fn get_u64(j: &Json, key: &str) -> Result<u64, JobError> {
    let v = j
        .get(key)
        .ok_or_else(|| JobError(format!("missing '{key}'")))?;
    match v {
        Json::Str(s) => s
            .parse::<u64>()
            .map_err(|_| JobError(format!("'{key}' is not a decimal u64"))),
        _ => v
            .as_u64()
            .ok_or_else(|| JobError(format!("'{key}' is not a u64"))),
    }
}

pub(crate) fn get_f64(j: &Json, key: &str) -> Result<f64, JobError> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| JobError(format!("missing or non-numeric '{key}'")))
}

pub(crate) fn get_bool(j: &Json, key: &str) -> Result<bool, JobError> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| JobError(format!("missing or non-bool '{key}'")))
}

pub(crate) fn opt_str_of(j: &Json, key: &str) -> Result<Option<String>, JobError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(JobError(format!("'{key}' is not a string or null"))),
    }
}

pub(crate) fn opt_f64_of(j: &Json, key: &str) -> Result<Option<f64>, JobError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| JobError(format!("'{key}' is not a number or null"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> JobRecord {
        JobRecord {
            id: "job-000007".into(),
            seq: 7,
            spec: JobSpec {
                netlist: "# netlist\ncell c0 comb\n".into(),
                arch: Some("rows 4\ncols 10\n".into()),
                tracks: Some(14),
                seed: u64::MAX,
                fast: true,
                priority: -3,
                deadline_sec: Some(2.5),
                journal: Some("unix:/tmp/j.sock".into()),
            },
            state: JobState::Running,
            spent_sec: 1.25,
            segments: 2,
            evictions: 1,
            error: None,
            stop_reason: None,
        }
    }

    #[test]
    fn record_round_trips_exactly() {
        let rec = sample_record();
        let text = rec.to_json().to_string_compact();
        let back = JobRecord::from_json(&rowfpga_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rec);

        // Optional fields absent.
        let mut rec = sample_record();
        rec.spec = JobSpec {
            netlist: "n".into(),
            ..JobSpec::default()
        };
        rec.state = JobState::Failed;
        rec.error = Some("boom".into());
        let text = rec.to_json().to_string_compact();
        let back = JobRecord::from_json(&rowfpga_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn embedded_netlist_text_survives_the_wire_format() {
        // Newlines and quotes in the netlist must survive JSON escaping:
        // the spool is only self-contained if the text parses back.
        let nl = rowfpga_netlist::generate(&rowfpga_netlist::GenerateConfig {
            num_cells: 12,
            num_inputs: 3,
            num_outputs: 2,
            num_seq: 1,
            ..rowfpga_netlist::GenerateConfig::default()
        });
        let mut rec = sample_record();
        rec.spec.netlist = rowfpga_netlist::write_netlist(&nl);
        let text = rec.to_json().to_string_compact();
        let back = JobRecord::from_json(&rowfpga_obs::json::parse(&text).unwrap()).unwrap();
        let reparsed = rowfpga_netlist::parse_netlist(&back.spec.netlist).unwrap();
        assert_eq!(reparsed.num_cells(), nl.num_cells());
        assert_eq!(reparsed.num_nets(), nl.num_nets());
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        let not_ours = Json::obj(vec![("format", "something".into())]);
        assert!(JobRecord::from_json(&not_ours).is_err());
        let mut doc = sample_record().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "seed");
        }
        let err = JobRecord::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn outcome_round_trips() {
        let out = JobOutcome {
            id: "job-000001".into(),
            stop_reason: "deadline".into(),
            worst_delay: 12345.5,
            fully_routed: false,
            globally_unrouted: 0,
            incomplete: 2,
            temperatures: 40,
            total_moves: 123_456,
            spent_sec: 3.5,
            segments: 3,
            evictions: 2,
            digest: "00ff00ff00ff00ff".into(),
        };
        let text = out.to_json().to_string_compact();
        let back = JobOutcome::from_json(&rowfpga_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, out);
    }

    #[test]
    fn remaining_budget_saturates_at_zero() {
        let mut rec = sample_record();
        rec.spec.deadline_sec = Some(2.0);
        rec.spent_sec = 0.5;
        assert_eq!(rec.remaining_budget(), Some(1.5));
        rec.spent_sec = 3.0;
        assert_eq!(rec.remaining_budget(), Some(0.0));
        rec.spec.deadline_sec = None;
        assert_eq!(rec.remaining_budget(), None);
    }
}
