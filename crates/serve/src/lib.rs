//! Layout-as-a-service: a crash-safe job daemon around the layout engine.
//!
//! `rowfpga serve` turns the one-shot layout flow into a long-running
//! service: clients submit jobs (netlist + seed + priority + execution
//! budget) over a unix socket, a bounded queue feeds a worker pool, and
//! every state transition is durable in an on-disk spool *before* it is
//! acknowledged. The robustness properties the crate exists for:
//!
//! * **Crash recovery** — a SIGKILL at any instant loses no accepted
//!   job. The startup scan ([`Spool::scan`]) rebuilds the job table,
//!   re-queues interrupted work, resumes from the newest valid engine
//!   checkpoint, and quarantines (never deletes) anything corrupt.
//! * **Checkpoint-backed preemption** — a higher-priority submission
//!   evicts the lowest-priority running job at a temperature boundary;
//!   the victim resumes later from its checkpoint, bit-identically.
//! * **Graceful degradation** — deadline expiry completes the job with
//!   its best-so-far layout (`stop_reason = "deadline"`); a full queue
//!   rejects with `retry_after_sec` instead of growing without bound; a
//!   corrupt resume snapshot falls back to a fresh run.
//! * **Graceful drain** — SIGTERM (or a `shutdown` request) checkpoints
//!   running jobs, persists the queue, and exits cleanly.
//!
//! The determinism contract of the engine carries through the service:
//! for a given (netlist, architecture, seed), the final layout digest is
//! the same whether the job ran uninterrupted, was preempted and
//! resumed, or the daemon was killed and restarted mid-run.
//!
//! See DESIGN.md §13 for the protocol grammar, the scheduler state
//! machine and the failure matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod proto;
pub mod spool;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod daemon;

pub use job::{
    layout_digest, JobError, JobOutcome, JobRecord, JobSpec, JobState, JOB_FORMAT, JOB_VERSION,
    RESULT_FORMAT,
};
pub use proto::{parse_request, Request};
pub use spool::{ScanReport, Spool};

#[cfg(unix)]
pub use client::ClientError;
#[cfg(unix)]
pub use daemon::{Daemon, DaemonHandle, ServeConfig, ServiceStats};
