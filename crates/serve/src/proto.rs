//! The daemon's wire protocol: one JSON object per line, one request per
//! connection, one JSON object line back.
//!
//! Requests (`cmd` selects):
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"submit","netlist":TEXT,
//!   "arch":TEXT?,"tracks":N?,"seed":N?,"fast":BOOL?,
//!   "priority":N?,"deadline_sec":SECS?,"journal":SPEC?}
//! {"cmd":"status","job":"job-000001"}
//! {"cmd":"list"}
//! {"cmd":"cancel","job":"job-000001"}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`. Failures carry `"error"`, and — for
//! load-shed rejections specifically — `"retry_after_sec"`, the
//! explicit backpressure contract: the queue is bounded, a full queue
//! rejects at admission instead of growing without bound, and the client
//! is told when to come back.

use rowfpga_obs::Json;

use crate::job::{self, JobError, JobSpec};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Admit a job.
    Submit(Box<JobSpec>),
    /// One job's full record (and result, when finished).
    Status {
        /// Job id.
        id: String,
    },
    /// Brief rows for every known job.
    List,
    /// Cancel a queued or running job.
    Cancel {
        /// Job id.
        id: String,
    },
    /// Service counters and latency percentiles.
    Stats,
    /// Graceful drain, same as SIGTERM.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable complaint for unknown commands or malformed
/// fields; the daemon sends it back verbatim in the error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = rowfpga_obs::json::parse(line).map_err(|e| format!("request is not JSON: {e}"))?;
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing 'cmd'".to_string())?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "submit" => parse_submit(&doc).map_err(|JobError(d)| d),
        "status" => Ok(Request::Status { id: job_id(&doc)? }),
        "list" => Ok(Request::List),
        "cancel" => Ok(Request::Cancel { id: job_id(&doc)? }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd '{other}'")),
    }
}

fn job_id(doc: &Json) -> Result<String, String> {
    doc.get("job")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing 'job'".to_string())
}

fn parse_submit(doc: &Json) -> Result<Request, JobError> {
    let spec = JobSpec {
        netlist: job::get_str(doc, "netlist")?,
        arch: job::opt_str_of(doc, "arch")?,
        tracks: job::opt_f64_of(doc, "tracks")?.map(|t| t as usize),
        seed: match doc.get("seed") {
            None | Some(Json::Null) => 1,
            Some(_) => job::get_u64(doc, "seed")?,
        },
        fast: match doc.get("fast") {
            None | Some(Json::Null) => false,
            Some(_) => job::get_bool(doc, "fast")?,
        },
        priority: match doc.get("priority") {
            None | Some(Json::Null) => 0,
            Some(_) => job::get_f64(doc, "priority")? as i64,
        },
        deadline_sec: job::opt_f64_of(doc, "deadline_sec")?,
        journal: job::opt_str_of(doc, "journal")?,
    };
    if spec.netlist.trim().is_empty() {
        return Err(JobError("'netlist' is empty".into()));
    }
    if spec.deadline_sec.is_some_and(|d| d <= 0.0 || d.is_nan()) {
        return Err(JobError("'deadline_sec' must be positive".into()));
    }
    Ok(Request::Submit(Box::new(spec)))
}

/// Builds a success response from extra fields.
pub fn ok(mut fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.append(&mut fields);
    Json::obj(all)
}

/// Builds a failure response.
pub fn err(detail: &str) -> Json {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", detail.into())])
}

/// Builds a load-shed rejection: the client should retry no sooner than
/// `retry_after_sec` seconds from now.
pub fn err_retry(detail: &str, retry_after_sec: f64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", detail.into()),
        ("retry_after_sec", retry_after_sec.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request("{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"cmd\":\"list\"}").unwrap(), Request::List);
        assert_eq!(
            parse_request("{\"cmd\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request("{\"cmd\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request("{\"cmd\":\"status\",\"job\":\"job-000009\"}").unwrap(),
            Request::Status {
                id: "job-000009".into()
            }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"cancel\",\"job\":\"job-000001\"}").unwrap(),
            Request::Cancel {
                id: "job-000001".into()
            }
        );
    }

    #[test]
    fn submit_defaults_and_validation() {
        let r = parse_request("{\"cmd\":\"submit\",\"netlist\":\"cell a comb\\n\"}").unwrap();
        let Request::Submit(spec) = r else {
            panic!("not a submit");
        };
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.priority, 0);
        assert!(!spec.fast);
        assert_eq!(spec.deadline_sec, None);

        let full = "{\"cmd\":\"submit\",\"netlist\":\"x\",\"seed\":\"9\",\"fast\":true,\
                    \"priority\":5,\"deadline_sec\":2.5,\"tracks\":12}";
        let Request::Submit(spec) = parse_request(full).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!(spec.seed, 9);
        assert!(spec.fast);
        assert_eq!(spec.priority, 5);
        assert_eq!(spec.deadline_sec, Some(2.5));
        assert_eq!(spec.tracks, Some(12));

        assert!(parse_request("{\"cmd\":\"submit\",\"netlist\":\"  \"}").is_err());
        assert!(
            parse_request("{\"cmd\":\"submit\",\"netlist\":\"x\",\"deadline_sec\":0}").is_err()
        );
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn responses_carry_ok_and_backpressure() {
        let good = ok(vec![("job", "job-000001".into())]);
        assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
        let shed = err_retry("queue full", 3.0);
        assert_eq!(shed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            shed.get("retry_after_sec").and_then(Json::as_f64),
            Some(3.0)
        );
    }
}
