// rowfpga-lint: no-panic
//! The layout service: a unix-socket daemon that runs layout jobs from a
//! crash-safe spool with deadline-aware scheduling, checkpoint-backed
//! preemption and graceful drain.
//!
//! ## Scheduler states
//!
//! ```text
//!            submit                    pick                    finish
//! (client) ─────────▶ Queued ────────────────────▶ Running ───────────▶ Done
//!                       ▲                            │  │ │
//!                       │   evict / crash / drain    │  │ └───────────▶ Failed
//!                       └────────────────────────────┘  └─────────────▶ Canceled
//! ```
//!
//! Every arrow is persisted to `job.json` (fsync + rename) *before* it is
//! acknowledged, so a SIGKILL at any instant loses no accepted job: the
//! startup scan finds each record either in its old state or its new one,
//! re-queues anything non-terminal, and resumes from the newest valid
//! engine checkpoint.
//!
//! ## Preemption
//!
//! One worker pool, priority scheduling. When a submission outranks every
//! queued job and all workers are busy, the lowest-priority running job is
//! asked to stop (cooperatively, at the next temperature boundary). The
//! engine writes a final checkpoint and returns; the victim goes back to
//! `Queued` and later resumes from that checkpoint — bit-identically, per
//! the engine's resume-equivalence guarantee. Eviction latency
//! (stop-request → worker free) is recorded in [`ServiceStats`].
//!
//! ## Graceful degradation
//!
//! A job whose execution budget expires is not an error: the engine
//! returns its best-so-far layout tagged `deadline` and the job completes
//! `Done`. A corrupt resume snapshot quarantines the snapshot and reruns
//! the job from scratch. A full queue rejects with `retry_after_sec`
//! instead of growing without bound.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, BufRead, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rowfpga_arch::Architecture;
use rowfpga_core::{
    size_architecture, LayoutError, LayoutResult, SimPrConfig, SimultaneousPlaceRoute,
    SizingConfig, StopFlag, StopReason,
};
use rowfpga_netlist::Netlist;
use rowfpga_obs::{Json, Obs};

use crate::job::{layout_digest, JobOutcome, JobRecord, JobSpec, JobState};
use crate::proto::{self, Request};
use crate::spool::Spool;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Spool directory (created if needed).
    pub spool: PathBuf,
    /// Worker threads.
    pub workers: usize,
    /// Queue capacity; submissions beyond it are rejected with
    /// `retry_after_sec` (bounded queue, explicit backpressure).
    pub queue_capacity: usize,
    /// Engine checkpoint cadence in temperatures.
    pub checkpoint_every: usize,
    /// Snapshot generations retained per job.
    pub checkpoint_keep: usize,
}

impl ServeConfig {
    /// Defaults for the given socket and spool paths: 1 worker, queue of
    /// 16, checkpoint every temperature keeping 3 generations.
    pub fn new(socket: PathBuf, spool: PathBuf) -> ServeConfig {
        ServeConfig {
            socket,
            spool,
            workers: 1,
            queue_capacity: 16,
            checkpoint_every: 1,
            checkpoint_keep: 3,
        }
    }
}

/// Service counters, readable over the wire (`stats`) and returned by
/// [`DaemonHandle::join`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs finished with a layout (including deadline-degraded).
    pub completed: u64,
    /// Jobs finished without a layout.
    pub failed: u64,
    /// Jobs canceled by clients.
    pub canceled: u64,
    /// Submissions rejected for a full queue.
    pub rejected: u64,
    /// Preemptions performed.
    pub evictions: u64,
    /// Non-terminal jobs re-queued by the startup recovery scan.
    pub recovered: u64,
    /// Spool entries quarantined by the startup scan.
    pub quarantined: u64,
    /// Per-eviction latency, stop-request → worker free, in seconds.
    pub eviction_latency_sec: Vec<f64>,
}

impl ServiceStats {
    /// Serializes the counters.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("submitted", self.submitted.into()),
            ("completed", self.completed.into()),
            ("failed", self.failed.into()),
            ("canceled", self.canceled.into()),
            ("rejected", self.rejected.into()),
            ("evictions", self.evictions.into()),
            ("recovered", self.recovered.into()),
            ("quarantined", self.quarantined.into()),
            (
                "eviction_latency_sec",
                Json::Arr(
                    self.eviction_latency_sec
                        .iter()
                        .map(|&s| s.into())
                        .collect(),
                ),
            ),
        ])
    }
}

/// A job currently on a worker.
#[derive(Debug)]
struct RunningJob {
    stop: StopFlag,
    priority: i64,
    evict_started: Option<Instant>,
    cancel: bool,
}

/// Mutable daemon core, behind one mutex.
#[derive(Debug, Default)]
struct Core {
    jobs: BTreeMap<String, JobRecord>,
    queue: Vec<String>,
    running: BTreeMap<String, RunningJob>,
    shutdown: bool,
    next_seq: u64,
    stats: ServiceStats,
}

#[derive(Debug)]
struct Shared {
    cfg: ServeConfig,
    spool: Spool,
    state: Mutex<Core>,
    work: Condvar,
    closing: AtomicBool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn initiate_shutdown(&self) {
        self.closing.store(true, Ordering::SeqCst);
        let mut core = self.lock();
        core.shutdown = true;
        for rj in core.running.values() {
            rj.stop.request_stop();
        }
        drop(core);
        self.work.notify_all();
    }
}

/// A started daemon: socket listener plus worker pool.
#[derive(Debug)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The daemon entry point.
#[derive(Debug)]
pub struct Daemon;

impl Daemon {
    /// Opens the spool, recovers interrupted jobs, binds the socket and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// Returns an error when the spool cannot be created or the socket
    /// cannot be bound.
    pub fn start(cfg: ServeConfig) -> io::Result<DaemonHandle> {
        let spool = Spool::open(&cfg.spool)?;
        let mut core = Core::default();
        recover(&spool, &mut core);

        // A previous SIGKILL leaves the socket file behind; replace it.
        let _ = fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            cfg,
            spool,
            state: Mutex::new(core),
            work: Condvar::new(),
            closing: AtomicBool::new(false),
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let acceptor = thread::spawn(move || accept_loop(&accept_shared, &listener));

        // Recovered jobs may already be runnable.
        shared.work.notify_all();
        Ok(DaemonHandle {
            shared,
            listener: Some(acceptor),
            workers,
        })
    }
}

impl DaemonHandle {
    /// Begins a graceful drain: running jobs are asked to checkpoint and
    /// stop, the queue stays on disk, the listener closes.
    pub fn initiate_shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Whether a drain is in progress (a client may have requested it).
    pub fn is_closing(&self) -> bool {
        self.shared.closing.load(Ordering::SeqCst)
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.lock().stats.clone()
    }

    /// Waits for the drain to finish and returns the final counters.
    /// Call [`DaemonHandle::initiate_shutdown`] first (or rely on a
    /// client `shutdown` request) or this blocks until one arrives.
    pub fn join(mut self) -> ServiceStats {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        let _ = fs::remove_file(&self.shared.cfg.socket);
        self.shared.lock().stats.clone()
    }

    /// [`DaemonHandle::initiate_shutdown`] + [`DaemonHandle::join`].
    pub fn shutdown(self) -> ServiceStats {
        self.initiate_shutdown();
        self.join()
    }
}

/// Rebuilds the job table from the spool. Terminal records are kept as
/// queryable history; anything `Queued`/`Running` at crash time goes back
/// to the queue (persisted as `Queued` first, so a crash *during*
/// recovery is also safe).
fn recover(spool: &Spool, core: &mut Core) {
    let report = spool.scan();
    core.stats.quarantined = report.quarantined.len() as u64;
    for mut rec in report.records {
        core.next_seq = core.next_seq.max(rec.seq + 1);
        if !rec.state.is_terminal() {
            rec.state = JobState::Queued;
            if spool.save_record(&rec).is_err() {
                // Undurable transition: leave it out of the queue rather
                // than run work we could not record.
                continue;
            }
            core.stats.recovered += 1;
            core.queue.push(rec.id.clone());
        }
        core.jobs.insert(rec.id.clone(), rec);
    }
    core.next_seq = core.next_seq.max(1);
}

// --- scheduling ------------------------------------------------------------

/// Millisecond key for "least remaining budget first"; unbounded last.
fn budget_key(rec: &JobRecord) -> u64 {
    rec.remaining_budget()
        .map_or(u64::MAX, |b| (b * 1000.0) as u64)
}

/// Removes and returns the next job to run: highest priority, then least
/// remaining budget (deadline-aware: urgent work first), then FIFO.
fn pick_job(core: &mut Core) -> Option<String> {
    let mut best: Option<(usize, (i64, u64, u64))> = None;
    for (i, id) in core.queue.iter().enumerate() {
        let Some(rec) = core.jobs.get(id) else {
            continue;
        };
        let key = (-rec.spec.priority, budget_key(rec), rec.seq);
        if best.as_ref().is_none_or(|(_, k)| key < *k) {
            best = Some((i, key));
        }
    }
    best.map(|(i, _)| core.queue.remove(i))
}

/// If the best queued job outranks a running one and no worker is idle,
/// ask the lowest-priority running job to stop at the next temperature
/// boundary. Caller holds the lock.
fn maybe_preempt(core: &mut Core, workers: usize) {
    if core.queue.is_empty() || core.running.len() < workers.max(1) {
        return;
    }
    let Some(best_queued) = core
        .queue
        .iter()
        .filter_map(|id| core.jobs.get(id))
        .map(|r| r.spec.priority)
        .max()
    else {
        return;
    };
    let victim = core
        .running
        .values_mut()
        .filter(|rj| rj.evict_started.is_none() && !rj.cancel && !rj.stop.is_set())
        .min_by_key(|rj| rj.priority);
    if let Some(rj) = victim {
        if rj.priority < best_queued {
            rj.evict_started = Some(Instant::now());
            rj.stop.request_stop();
        }
    }
}

// --- worker ----------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let claimed = {
            let mut core = shared.lock();
            loop {
                if let Some(id) = pick_job(&mut core) {
                    // rowfpga-lint: allow(locks) reason=claim spools the Running transition under the lock so a crash never loses a claimed job
                    break Some(claim(shared, &mut core, &id));
                }
                if core.shutdown {
                    break None;
                }
                core = shared
                    .work
                    .wait(core)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match claimed {
            Some(Some((rec, stop))) => run_job(shared, &rec, &stop),
            Some(None) => continue, // record vanished or persist failed
            None => return,         // drained
        }
    }
}

/// Transitions a picked job to `Running` (durably) and registers its stop
/// flag. Returns the record snapshot the segment will run from.
fn claim(shared: &Shared, core: &mut Core, id: &str) -> Option<(JobRecord, StopFlag)> {
    let rec = core.jobs.get_mut(id)?;
    rec.state = JobState::Running;
    rec.segments += 1;
    if let Err(e) = shared.spool.save_record(rec) {
        rec.state = JobState::Failed;
        rec.error = Some(format!("spool write failed: {e}"));
        core.stats.failed += 1;
        let _ = shared.spool.save_record(rec);
        return None;
    }
    let stop = StopFlag::manual();
    core.running.insert(
        id.to_string(),
        RunningJob {
            stop: stop.clone(),
            priority: rec.spec.priority,
            evict_started: None,
            cancel: false,
        },
    );
    Some((rec.clone(), stop))
}

/// Parses the job's inputs. Also run at submit time, so a failure here on
/// a worker is a spool-tampering corner, not the normal path.
fn prepare(spec: &JobSpec) -> Result<(Architecture, Netlist), String> {
    let netlist =
        rowfpga_netlist::parse_netlist(&spec.netlist).map_err(|e| format!("netlist: {e}"))?;
    let arch = match &spec.arch {
        Some(text) => {
            let arch =
                rowfpga_arch::parse_architecture(text).map_err(|e| format!("architecture: {e}"))?;
            match spec.tracks {
                Some(t) => arch.with_tracks(t).map_err(|e| format!("tracks: {e}"))?,
                None => arch,
            }
        }
        None => {
            let mut sizing = SizingConfig::default();
            if let Some(t) = spec.tracks {
                sizing.tracks_per_channel = t;
            }
            size_architecture(&netlist, &sizing).map_err(|e| format!("sizing: {e}"))?
        }
    };
    Ok((arch, netlist))
}

/// Engine configuration for one segment of `rec`.
fn segment_config(shared: &Shared, rec: &JobRecord) -> SimPrConfig {
    let base = if rec.spec.fast {
        SimPrConfig::fast()
    } else {
        SimPrConfig::default()
    };
    let mut cfg = base.with_seed(rec.spec.seed);
    let ckpt = shared.spool.checkpoint_path(&rec.id);
    cfg.resilience.checkpoint_every = shared.cfg.checkpoint_every.max(1);
    cfg.resilience.checkpoint_keep = shared.cfg.checkpoint_keep;
    cfg.resilience.resume_path = shared.spool.has_checkpoint(&rec.id).then(|| ckpt.clone());
    cfg.resilience.checkpoint_path = Some(ckpt);
    cfg.resilience.deadline = rec.remaining_budget().map(Duration::from_secs_f64);
    cfg
}

/// Runs one segment of a job and applies the resulting transition.
fn run_job(shared: &Shared, rec: &JobRecord, stop: &StopFlag) {
    let (arch, netlist) = match prepare(&rec.spec) {
        Ok(pair) => pair,
        Err(detail) => return fail_job(shared, &rec.id, detail),
    };
    let cfg = segment_config(shared, rec);
    // A sink that cannot open must not fail the job: run unobserved.
    let obs = match rec.spec.journal.as_deref() {
        Some(spec) => rowfpga_obs::open_sink(spec).map_or_else(|_| Obs::disabled(), Obs::with_sink),
        None => Obs::disabled(),
    };
    let resumed = cfg.resilience.resume_path.is_some();
    let mut attempt = SimultaneousPlaceRoute::new(cfg.clone())
        .run_with_stop(&arch, &netlist, &rec.id, &obs, stop);
    if resumed && matches!(attempt, Err(LayoutError::Checkpoint(_))) {
        // The snapshot exists but does not decode or match this job
        // (validation failure): quarantine it and degrade to a fresh run
        // instead of failing the job.
        let base = shared.spool.checkpoint_path(&rec.id);
        let mut quarantined = base.clone();
        quarantined.set_extension("json.corrupt");
        let _ = fs::rename(&base, &quarantined);
        let mut fresh = cfg;
        fresh.resilience.resume_path = None;
        attempt =
            SimultaneousPlaceRoute::new(fresh).run_with_stop(&arch, &netlist, &rec.id, &obs, stop);
    }
    match attempt {
        Ok(result) => finish_job(shared, &rec.id, &netlist, &result),
        Err(e) => fail_job(shared, &rec.id, e.to_string()),
    }
}

/// Applies a segment's outcome under the lock and persists it.
fn finish_job(shared: &Shared, id: &str, netlist: &Netlist, result: &LayoutResult) {
    let mut core = shared.lock();
    let rj = core.running.remove(id);
    let shutdown = core.shutdown;
    let Some(mut rec) = core.jobs.remove(id) else {
        return;
    };
    rec.spent_sec += result.runtime.as_secs_f64();
    let mut requeued = false;
    if matches!(result.stop_reason, StopReason::Interrupted) {
        if rj.as_ref().is_some_and(|r| r.cancel) {
            rec.state = JobState::Canceled;
            rec.stop_reason = Some(result.stop_reason.as_str().to_string());
            core.stats.canceled += 1;
        } else if shutdown {
            // Drain: back to Queued on disk; the next start re-queues and
            // resumes from the final checkpoint the engine just wrote.
            rec.state = JobState::Queued;
        } else {
            // Evicted. Requeue; the checkpoint makes the resume seamless.
            rec.state = JobState::Queued;
            rec.evictions += 1;
            core.stats.evictions += 1;
            if let Some(t0) = rj.and_then(|r| r.evict_started) {
                core.stats
                    .eviction_latency_sec
                    .push(t0.elapsed().as_secs_f64());
            }
            core.queue.push(id.to_string());
            requeued = true;
        }
        // rowfpga-lint: allow(locks) reason=the requeue must be spooled before the job becomes claimable again
        let _ = shared.spool.save_record(&rec);
    } else {
        rec.state = JobState::Done;
        rec.stop_reason = Some(result.stop_reason.as_str().to_string());
        let outcome = JobOutcome {
            id: id.to_string(),
            stop_reason: result.stop_reason.as_str().to_string(),
            worst_delay: result.worst_delay,
            fully_routed: result.fully_routed,
            globally_unrouted: result.globally_unrouted,
            incomplete: result.incomplete,
            temperatures: result.temperatures,
            total_moves: result.total_moves,
            spent_sec: rec.spent_sec,
            segments: rec.segments,
            evictions: rec.evictions,
            digest: layout_digest(netlist, result),
        };
        core.stats.completed += 1;
        // rowfpga-lint: begin-allow(locks) reason=record and outcome are spooled under the lock so a crash never acknowledges an unpersisted completion
        let _ = shared.spool.save_record(&rec);
        let _ = shared.spool.save_outcome(&outcome);
        // rowfpga-lint: end-allow(locks)
    }
    core.jobs.insert(id.to_string(), rec);
    drop(core);
    if requeued {
        shared.work.notify_all();
    }
}

fn fail_job(shared: &Shared, id: &str, detail: String) {
    let mut core = shared.lock();
    core.running.remove(id);
    core.stats.failed += 1;
    if let Some(rec) = core.jobs.get_mut(id) {
        rec.state = JobState::Failed;
        rec.error = Some(detail);
        // rowfpga-lint: allow(locks) reason=the failure must hit the spool before any client can observe the Failed state
        let _ = shared.spool.save_record(rec);
    }
}

// --- listener --------------------------------------------------------------

fn accept_loop(shared: &Shared, listener: &UnixListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                serve_connection(shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.closing.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if shared.closing.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// One request line in, one response line out.
fn serve_connection(shared: &Shared, stream: UnixStream) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let response = match proto::parse_request(&line) {
        Ok(req) => dispatch(shared, req),
        Err(detail) => proto::err(&detail),
    };
    let mut stream = reader.into_inner();
    let _ = writeln!(stream, "{}", response.to_string_compact());
    let _ = stream.flush();
}

fn dispatch(shared: &Shared, req: Request) -> Json {
    match req {
        Request::Ping => proto::ok(vec![
            ("service", "rowfpga-serve".into()),
            ("version", crate::job::JOB_VERSION.into()),
        ]),
        Request::Submit(spec) => submit(shared, *spec),
        Request::Status { id } => status(shared, &id),
        Request::List => list(shared),
        Request::Cancel { id } => cancel(shared, &id),
        Request::Stats => {
            let core = shared.lock();
            proto::ok(vec![
                ("stats", core.stats.to_json()),
                ("queued", (core.queue.len() as u64).into()),
                ("running", (core.running.len() as u64).into()),
            ])
        }
        Request::Shutdown => {
            shared.initiate_shutdown();
            proto::ok(vec![("draining", true.into())])
        }
    }
}

fn submit(shared: &Shared, spec: JobSpec) -> Json {
    // Validate inputs synchronously so bad submissions fail at the
    // client, not minutes later on a worker.
    if let Err(detail) = prepare(&spec) {
        return proto::err(&detail);
    }
    let mut core = shared.lock();
    if core.shutdown {
        return proto::err("daemon is draining");
    }
    if core.queue.len() >= shared.cfg.queue_capacity.max(1) {
        core.stats.rejected += 1;
        let retry = 1.0 + core.queue.len() as f64 * 0.5;
        return proto::err_retry("queue full", retry);
    }
    let seq = core.next_seq;
    core.next_seq += 1;
    let id = format!("job-{seq:06}");
    let rec = JobRecord::new(id.clone(), seq, spec);
    // Durability before acknowledgement: the record hits the spool
    // (fsynced) before the id is handed back or a worker can see it.
    // rowfpga-lint: allow(locks) reason=submit holds the lock across the fsync by design; the id is only acknowledged once the record is durable
    if let Err(e) = shared.spool.save_record(&rec) {
        return proto::err(&format!("spool write failed: {e}"));
    }
    core.jobs.insert(id.clone(), rec);
    core.queue.push(id.clone());
    core.stats.submitted += 1;
    let queued = core.queue.len() as u64;
    maybe_preempt(&mut core, shared.cfg.workers);
    drop(core);
    shared.work.notify_all();
    proto::ok(vec![("job", id.as_str().into()), ("queued", queued.into())])
}

fn status(shared: &Shared, id: &str) -> Json {
    let rec = {
        let core = shared.lock();
        core.jobs.get(id).cloned()
    };
    let Some(rec) = rec else {
        return proto::err(&format!("unknown job '{id}'"));
    };
    let result = match shared.spool.load_outcome(id) {
        Some(out) => out.to_json(),
        None => Json::Null,
    };
    proto::ok(vec![("job", rec.to_json()), ("result", result)])
}

fn list(shared: &Shared) -> Json {
    let core = shared.lock();
    let rows = core
        .jobs
        .values()
        .map(|rec| {
            Json::obj(vec![
                ("id", rec.id.as_str().into()),
                ("state", rec.state.as_str().into()),
                ("priority", (rec.spec.priority as f64).into()),
                ("spent_sec", rec.spent_sec.into()),
                ("segments", rec.segments.into()),
                ("evictions", rec.evictions.into()),
            ])
        })
        .collect();
    proto::ok(vec![("jobs", Json::Arr(rows))])
}

fn cancel(shared: &Shared, id: &str) -> Json {
    let mut core = shared.lock();
    let Some(rec) = core.jobs.get(id) else {
        return proto::err(&format!("unknown job '{id}'"));
    };
    match rec.state {
        JobState::Queued => {
            core.queue.retain(|q| q != id);
            if let Some(rec) = core.jobs.get_mut(id) {
                rec.state = JobState::Canceled;
                // rowfpga-lint: allow(locks) reason=the cancellation must be spooled before the client sees the Canceled reply
                let _ = shared.spool.save_record(rec);
            }
            core.stats.canceled += 1;
            proto::ok(vec![("state", "canceled".into())])
        }
        JobState::Running => {
            if let Some(rj) = core.running.get_mut(id) {
                rj.cancel = true;
                rj.stop.request_stop();
            }
            proto::ok(vec![("state", "canceling".into())])
        }
        state => proto::err(&format!("job is already {}", state.as_str())),
    }
}
