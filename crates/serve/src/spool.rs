// rowfpga-lint: durable
//! The on-disk job spool: the daemon's only durable state.
//!
//! Layout:
//!
//! ```text
//! SPOOL/
//!   jobs/
//!     job-000001/
//!       job.json          # JobRecord, atomically rewritten per transition
//!       checkpoint.json   # engine snapshot (+ .gNNNNNNNN generations)
//!       result.json       # JobOutcome, written once on completion
//!   quarantine/
//!     job-000002.bad-record/   # corrupt entries moved aside, never deleted
//! ```
//!
//! Every mutation follows write-temp → fsync → rename, so a SIGKILL at
//! any instant leaves each document either old or new, never torn. The
//! startup [`Spool::scan`] rebuilds the daemon's entire job table from
//! this directory; anything that does not decode is quarantined (moved,
//! not deleted — operators can inspect it) instead of taking the daemon
//! down.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::job::{JobOutcome, JobRecord};

/// Handle on a spool directory (paths + I/O helpers; no in-memory state).
#[derive(Clone, Debug)]
pub struct Spool {
    root: PathBuf,
}

/// What a startup scan found.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Decodable job records, in admission (seq) order.
    pub records: Vec<JobRecord>,
    /// Entries moved to quarantine, as (directory name, reason).
    pub quarantined: Vec<(String, String)>,
}

impl Spool {
    /// Opens (creating if needed) a spool rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the error of creating either subdirectory.
    pub fn open(root: &Path) -> io::Result<Spool> {
        fs::create_dir_all(root.join("jobs"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        Ok(Spool {
            root: root.to_path_buf(),
        })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of one job.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(id)
    }

    /// `job.json` of one job.
    pub fn record_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("job.json")
    }

    /// Checkpoint base path of one job (generations are siblings).
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("checkpoint.json")
    }

    /// `result.json` of one job.
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("result.json")
    }

    /// Whether a resumable snapshot exists for `id`: the checkpoint base
    /// or any retention generation probes as structurally valid.
    pub fn has_checkpoint(&self, id: &str) -> bool {
        let base = self.checkpoint_path(id);
        rowfpga_core::probe_snapshot(&base)
            || rowfpga_core::list_generations(&base)
                .iter()
                .any(|(_, p)| rowfpga_core::probe_snapshot(p))
    }

    /// Atomically (re)writes `job.json`. The fsync-before-rename makes
    /// the record durable before the daemon acknowledges the transition,
    /// which is what "zero lost accepted jobs under SIGKILL" rests on.
    ///
    /// # Errors
    ///
    /// Returns the first failing filesystem step.
    pub fn save_record(&self, rec: &JobRecord) -> io::Result<()> {
        fs::create_dir_all(self.job_dir(&rec.id))?;
        write_atomic(
            &self.record_path(&rec.id),
            &rec.to_json().to_string_compact(),
        )
    }

    /// Atomically writes `result.json`.
    ///
    /// # Errors
    ///
    /// Returns the first failing filesystem step.
    pub fn save_outcome(&self, out: &JobOutcome) -> io::Result<()> {
        write_atomic(
            &self.result_path(&out.id),
            &out.to_json().to_string_compact(),
        )
    }

    /// Loads `result.json` of a finished job, if present and decodable.
    pub fn load_outcome(&self, id: &str) -> Option<JobOutcome> {
        let text = fs::read_to_string(self.result_path(id)).ok()?;
        let doc = rowfpga_obs::json::parse(&text).ok()?;
        JobOutcome::from_json(&doc).ok()
    }

    /// Moves a job directory into quarantine instead of deleting it.
    ///
    /// # Errors
    ///
    /// Returns the rename error.
    pub fn quarantine(&self, dir_name: &str, reason: &str) -> io::Result<PathBuf> {
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(32)
            .collect();
        let mut dest = self
            .root
            .join("quarantine")
            .join(format!("{dir_name}.{slug}"));
        let mut n = 1;
        while dest.exists() {
            dest = self
                .root
                .join("quarantine")
                .join(format!("{dir_name}.{slug}.{n}"));
            n += 1;
        }
        fs::rename(self.root.join("jobs").join(dir_name), &dest)?;
        Ok(dest)
    }

    /// Scans the spool: decodes every `jobs/*/job.json`, quarantining
    /// entries that are unreadable or undecodable. Never fails the
    /// startup — a damaged spool yields a report, not an error.
    pub fn scan(&self) -> ScanReport {
        let mut report = ScanReport::default();
        let Ok(entries) = fs::read_dir(self.root.join("jobs")) else {
            return report;
        };
        let mut names: Vec<String> = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .collect();
        names.sort_unstable();
        for name in names {
            let path = self.root.join("jobs").join(&name).join("job.json");
            let outcome = fs::read_to_string(&path)
                .map_err(|e| format!("unreadable job.json: {e}"))
                .and_then(|text| {
                    rowfpga_obs::json::parse(&text).map_err(|e| format!("not JSON: {e}"))
                })
                .and_then(|doc| JobRecord::from_json(&doc).map_err(|e| e.to_string()));
            match outcome {
                Ok(rec) if rec.id == name => report.records.push(rec),
                Ok(rec) => {
                    let reason = format!("id '{}' does not match directory '{name}'", rec.id);
                    let _ = self.quarantine(&name, "id-mismatch");
                    report.quarantined.push((name, reason));
                }
                Err(reason) => {
                    let _ = self.quarantine(&name, "bad-record");
                    report.quarantined.push((name, reason));
                }
            }
        }
        report.records.sort_by_key(|r| r.seq);
        report
    }
}

/// Write-temp → fsync → rename.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, JobState};

    fn temp_spool(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rowfpga-spool-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(id: &str, seq: u64) -> JobRecord {
        JobRecord::new(
            id.to_string(),
            seq,
            JobSpec {
                netlist: "# empty\n".into(),
                ..JobSpec::default()
            },
        )
    }

    #[test]
    fn records_survive_a_save_scan_round_trip() {
        let root = temp_spool("roundtrip");
        let spool = Spool::open(&root).unwrap();
        let mut a = record("job-000002", 2);
        a.state = JobState::Running;
        a.spent_sec = 0.75;
        spool.save_record(&a).unwrap();
        spool.save_record(&record("job-000001", 1)).unwrap();

        let report = spool.scan();
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[0].seq, 1, "scan is seq-ordered");
        assert_eq!(report.records[1], a);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_records_are_quarantined_not_fatal() {
        let root = temp_spool("corrupt");
        let spool = Spool::open(&root).unwrap();
        spool.save_record(&record("job-000001", 1)).unwrap();
        // A torn record and a directory with no record at all.
        fs::create_dir_all(spool.job_dir("job-000002")).unwrap();
        fs::write(
            spool.record_path("job-000002"),
            "{\"format\":\"rowfpga-job\"",
        )
        .unwrap();
        fs::create_dir_all(spool.job_dir("job-000003")).unwrap();

        let report = spool.scan();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.quarantined.len(), 2, "{:?}", report.quarantined);
        assert!(!spool.job_dir("job-000002").exists());
        // Quarantined, not deleted: the entries moved under quarantine/.
        let moved: Vec<_> = fs::read_dir(root.join("quarantine"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_str().unwrap().to_string())
            .collect();
        assert_eq!(moved.len(), 2, "{moved:?}");
        // A rescan is clean and still serves the healthy job.
        let again = spool.scan();
        assert_eq!(again.records.len(), 1);
        assert!(again.quarantined.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn has_checkpoint_accepts_base_or_generation() {
        let root = temp_spool("ckpt");
        let spool = Spool::open(&root).unwrap();
        spool.save_record(&record("job-000001", 1)).unwrap();
        assert!(!spool.has_checkpoint("job-000001"));
        // A valid-looking generation alone is enough (base torn).
        let base = spool.checkpoint_path("job-000001");
        fs::write(&base, "{\"format\":\"rowfpga-checkpoint\"").unwrap();
        assert!(
            !spool.has_checkpoint("job-000001"),
            "torn base is not resumable"
        );
        fs::write(
            rowfpga_core::generation_path(&base, 4),
            "{\"format\":\"rowfpga-checkpoint\", \"version\": 1}\n",
        )
        .unwrap();
        assert!(spool.has_checkpoint("job-000001"));
        let _ = fs::remove_dir_all(&root);
    }
}
