//! The placement data structure.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rowfpga_arch::{Architecture, SiteId, SiteKind};
use rowfpga_netlist::{pinmap_palette, CellId, CellKind, Netlist, Pinmap};

/// Errors raised while creating a [`Placement`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CreatePlacementError {
    /// The chip does not have enough sites of the required kind.
    NotEnoughSites {
        /// The site kind that ran out.
        kind: SiteKind,
        /// Cells needing that kind.
        needed: usize,
        /// Sites of that kind available.
        available: usize,
    },
    /// A restored assignment is malformed: wrong lengths, an out-of-range
    /// site or pinmap index, a doubly occupied site, or a kind-incompatible
    /// cell/site pairing.
    InvalidAssignment {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for CreatePlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CreatePlacementError::NotEnoughSites {
                kind,
                needed,
                available,
            } => write!(
                f,
                "need {needed} {kind:?} sites but the chip provides only {available}"
            ),
            CreatePlacementError::InvalidAssignment { detail } => {
                write!(f, "invalid placement assignment: {detail}")
            }
        }
    }
}

impl Error for CreatePlacementError {}

/// A complete, always-legal assignment of cells to sites plus a pinmap
/// choice per cell.
///
/// Legality invariants maintained by construction:
///
/// * every cell occupies exactly one site and every site holds at most one
///   cell;
/// * I/O cells sit on I/O sites and logic cells on logic sites;
/// * every cell's pinmap index is valid for its kind's palette.
#[derive(Clone, Debug)]
pub struct Placement {
    site_of: Vec<SiteId>,
    cell_at: Vec<Option<CellId>>,
    pinmap_choice: Vec<u16>,
    /// Palette per cell kind, shared across cells of the same kind.
    palettes: BTreeMap<CellKind, Vec<Pinmap>>,
}

impl Placement {
    /// Creates a uniformly random legal placement with default (index 0)
    /// pinmaps, deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CreatePlacementError::NotEnoughSites`] if the chip cannot
    /// hold the design.
    pub fn random(
        arch: &Architecture,
        netlist: &Netlist,
        seed: u64,
    ) -> Result<Placement, CreatePlacementError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let geom = arch.geometry();

        let mut io_cells = Vec::new();
        let mut logic_cells = Vec::new();
        for (id, cell) in netlist.cells() {
            if cell.kind().is_io() {
                io_cells.push(id);
            } else {
                logic_cells.push(id);
            }
        }
        let mut io_sites: Vec<SiteId> = geom.sites_of_kind(SiteKind::Io).map(|s| s.id()).collect();
        let mut logic_sites: Vec<SiteId> = geom
            .sites_of_kind(SiteKind::Logic)
            .map(|s| s.id())
            .collect();
        if io_cells.len() > io_sites.len() {
            return Err(CreatePlacementError::NotEnoughSites {
                kind: SiteKind::Io,
                needed: io_cells.len(),
                available: io_sites.len(),
            });
        }
        if logic_cells.len() > logic_sites.len() {
            return Err(CreatePlacementError::NotEnoughSites {
                kind: SiteKind::Logic,
                needed: logic_cells.len(),
                available: logic_sites.len(),
            });
        }
        io_sites.shuffle(&mut rng);
        logic_sites.shuffle(&mut rng);

        let mut site_of = vec![SiteId::new(0); netlist.num_cells()];
        let mut cell_at = vec![None; geom.num_sites()];
        for (cell, site) in io_cells.iter().zip(io_sites.iter()) {
            site_of[cell.index()] = *site;
            cell_at[site.index()] = Some(*cell);
        }
        for (cell, site) in logic_cells.iter().zip(logic_sites.iter()) {
            site_of[cell.index()] = *site;
            cell_at[site.index()] = Some(*cell);
        }

        let mut palettes = BTreeMap::new();
        for (_, cell) in netlist.cells() {
            palettes
                .entry(cell.kind())
                .or_insert_with(|| pinmap_palette(cell.kind()));
        }

        Ok(Placement {
            site_of,
            cell_at,
            pinmap_choice: vec![0; netlist.num_cells()],
            palettes,
        })
    }

    /// Exports the cell→site assignment as bare site indices, in cell-id
    /// order — the placement half of a layout checkpoint (together with
    /// [`Placement::export_pinmaps`]).
    pub fn export_sites(&self) -> Vec<usize> {
        self.site_of.iter().map(|s| s.index()).collect()
    }

    /// Exports every cell's pinmap index, in cell-id order.
    pub fn export_pinmaps(&self) -> Vec<u16> {
        self.pinmap_choice.clone()
    }

    /// Rebuilds a placement from exported site and pinmap assignments,
    /// validating every legality invariant (bijection, kind compatibility,
    /// palette bounds) so a corrupt checkpoint yields a typed error rather
    /// than an illegal placement or a panic downstream.
    ///
    /// # Errors
    ///
    /// Returns [`CreatePlacementError::InvalidAssignment`] on any malformed
    /// input.
    pub fn from_parts(
        arch: &Architecture,
        netlist: &Netlist,
        sites: &[usize],
        pinmaps: &[u16],
    ) -> Result<Placement, CreatePlacementError> {
        let geom = arch.geometry();
        if sites.len() != netlist.num_cells() || pinmaps.len() != netlist.num_cells() {
            return Err(CreatePlacementError::InvalidAssignment {
                detail: format!(
                    "{} sites / {} pinmaps for {} cells",
                    sites.len(),
                    pinmaps.len(),
                    netlist.num_cells()
                ),
            });
        }
        let mut palettes = BTreeMap::new();
        for (_, cell) in netlist.cells() {
            palettes
                .entry(cell.kind())
                .or_insert_with(|| pinmap_palette(cell.kind()));
        }
        let mut site_of = vec![SiteId::new(0); netlist.num_cells()];
        let mut cell_at: Vec<Option<CellId>> = vec![None; geom.num_sites()];
        for (id, cell) in netlist.cells() {
            let s = sites[id.index()];
            if s >= geom.num_sites() {
                return Err(CreatePlacementError::InvalidAssignment {
                    detail: format!("cell {id} assigned to nonexistent site {s}"),
                });
            }
            let site = SiteId::new(s);
            let want = if cell.kind().is_io() {
                SiteKind::Io
            } else {
                SiteKind::Logic
            };
            if geom.site(site).kind() != want {
                return Err(CreatePlacementError::InvalidAssignment {
                    detail: format!(
                        "cell {id} ({:?}) on {:?} site {s}",
                        cell.kind(),
                        geom.site(site).kind()
                    ),
                });
            }
            if let Some(prev) = cell_at[s] {
                return Err(CreatePlacementError::InvalidAssignment {
                    detail: format!("site {s} assigned to both {prev} and {id}"),
                });
            }
            let palette_len = palettes[&cell.kind()].len();
            if pinmaps[id.index()] as usize >= palette_len {
                return Err(CreatePlacementError::InvalidAssignment {
                    detail: format!(
                        "cell {id} pinmap index {} exceeds palette of {palette_len}",
                        pinmaps[id.index()]
                    ),
                });
            }
            site_of[id.index()] = site;
            cell_at[s] = Some(id);
        }
        Ok(Placement {
            site_of,
            cell_at,
            pinmap_choice: pinmaps.to_vec(),
            palettes,
        })
    }

    /// The site holding `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn site_of(&self, cell: CellId) -> SiteId {
        self.site_of[cell.index()]
    }

    /// The cell at `site`, if occupied.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn cell_at(&self, site: SiteId) -> Option<CellId> {
        self.cell_at[site.index()]
    }

    /// The index of `cell`'s current pinmap within its palette.
    pub fn pinmap_index(&self, cell: CellId) -> u16 {
        self.pinmap_choice[cell.index()]
    }

    /// The current pinmap of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn pinmap<'a>(&'a self, netlist: &Netlist, cell: CellId) -> &'a Pinmap {
        let kind = netlist.cell(cell).kind();
        &self.palettes[&kind][self.pinmap_choice[cell.index()] as usize]
    }

    /// The pinmap palette of a cell kind.
    pub fn palette(&self, kind: CellKind) -> &[Pinmap] {
        &self.palettes[&kind]
    }

    /// Sets `cell`'s pinmap and returns the previous index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the cell's palette.
    pub fn set_pinmap(&mut self, netlist: &Netlist, cell: CellId, index: u16) -> u16 {
        let kind = netlist.cell(cell).kind();
        assert!(
            (index as usize) < self.palettes[&kind].len(),
            "pinmap index {index} out of range for {kind:?}"
        );
        std::mem::replace(&mut self.pinmap_choice[cell.index()], index)
    }

    /// Exchanges the occupants of two sites. Either site may be empty, so
    /// this implements both cell swaps and single-cell translations
    /// (paper §3.2). The operation is its own inverse.
    ///
    /// # Panics
    ///
    /// Panics if the exchange would place a cell on an incompatible site
    /// kind. Callers (move generators) must propose kind-compatible
    /// exchanges.
    pub fn swap_sites(&mut self, arch: &Architecture, a: SiteId, b: SiteId) {
        if a == b {
            return;
        }
        let geom = arch.geometry();
        let (ka, kb) = (geom.site(a).kind(), geom.site(b).kind());
        let ca = self.cell_at[a.index()];
        let cb = self.cell_at[b.index()];
        if ca.is_some() || cb.is_some() {
            assert_eq!(
                ka, kb,
                "cannot exchange occupied sites of different kinds ({ka:?} vs {kb:?})"
            );
        }
        self.cell_at[a.index()] = cb;
        self.cell_at[b.index()] = ca;
        if let Some(c) = ca {
            self.site_of[c.index()] = b;
        }
        if let Some(c) = cb {
            self.site_of[c.index()] = a;
        }
    }

    /// Verifies all legality invariants against the architecture and
    /// netlist; used by tests and debug assertions.
    pub fn check_invariants(&self, arch: &Architecture, netlist: &Netlist) -> bool {
        self.check_invariants_detailed(arch, netlist).is_ok()
    }

    /// Like [`Placement::check_invariants`], but names the first broken
    /// invariant — the form the fuzzing oracles report and shrink against.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found: a broken
    /// cell↔site bijection, a stale occupant entry, a kind-incompatible
    /// site assignment, or an out-of-palette pinmap choice.
    pub fn check_invariants_detailed(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
    ) -> Result<(), String> {
        let geom = arch.geometry();
        // bijection
        for (id, _) in netlist.cells() {
            let site = self.site_of[id.index()];
            if self.cell_at[site.index()] != Some(id) {
                return Err(format!(
                    "cell {id} maps to site {site}, but the site records occupant {:?}",
                    self.cell_at[site.index()]
                ));
            }
        }
        let occupied = self.cell_at.iter().flatten().count();
        if occupied != netlist.num_cells() {
            return Err(format!(
                "{occupied} sites record occupants but the netlist has {} cells",
                netlist.num_cells()
            ));
        }
        // kind compatibility + pinmap validity
        for (id, cell) in netlist.cells() {
            let site = geom.site(self.site_of[id.index()]);
            let want = if cell.kind().is_io() {
                SiteKind::Io
            } else {
                SiteKind::Logic
            };
            if site.kind() != want {
                return Err(format!(
                    "cell {id} ({:?}) sits on a {:?} site, needs {want:?}",
                    cell.kind(),
                    site.kind()
                ));
            }
            let palette_len = self.palettes[&cell.kind()].len();
            if self.pinmap_choice[id.index()] as usize >= palette_len {
                return Err(format!(
                    "cell {id} pinmap index {} out of palette (len {palette_len})",
                    self.pinmap_choice[id.index()]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_arch::SegmentationScheme;
    use rowfpga_netlist::{generate, GenerateConfig};

    fn setup() -> (Architecture, Netlist) {
        let netlist = generate(&GenerateConfig {
            num_cells: 60,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 4,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(6)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(10)
            .segmentation(SegmentationScheme::Uniform { len: 4 })
            .build()
            .unwrap();
        (arch, netlist)
    }

    #[test]
    fn random_placement_is_legal() {
        let (arch, nl) = setup();
        let p = Placement::random(&arch, &nl, 42).unwrap();
        assert!(p.check_invariants(&arch, &nl));
    }

    #[test]
    fn random_placement_is_deterministic_in_seed() {
        let (arch, nl) = setup();
        let a = Placement::random(&arch, &nl, 7).unwrap();
        let b = Placement::random(&arch, &nl, 7).unwrap();
        let c = Placement::random(&arch, &nl, 8).unwrap();
        let same_ab = nl.cells().all(|(id, _)| a.site_of(id) == b.site_of(id));
        let same_ac = nl.cells().all(|(id, _)| a.site_of(id) == c.site_of(id));
        assert!(same_ab);
        assert!(!same_ac);
    }

    #[test]
    fn swap_is_involutive() {
        let (arch, nl) = setup();
        let mut p = Placement::random(&arch, &nl, 1).unwrap();
        let a = p.site_of(CellId::new(10));
        let b = p.site_of(CellId::new(11));
        let before = p.clone();
        p.swap_sites(&arch, a, b);
        assert!(p.check_invariants(&arch, &nl));
        p.swap_sites(&arch, a, b);
        for (id, _) in nl.cells() {
            assert_eq!(p.site_of(id), before.site_of(id));
        }
    }

    #[test]
    fn translate_to_empty_site_moves_one_cell() {
        let (arch, nl) = setup();
        let mut p = Placement::random(&arch, &nl, 3).unwrap();
        // find an empty logic site
        let empty = arch
            .geometry()
            .sites_of_kind(SiteKind::Logic)
            .map(|s| s.id())
            .find(|s| p.cell_at(*s).is_none())
            .expect("chip has spare capacity");
        // find a logic cell
        let (cell, _) = nl.cells().find(|(_, c)| !c.kind().is_io()).unwrap();
        let from = p.site_of(cell);
        p.swap_sites(&arch, from, empty);
        assert_eq!(p.site_of(cell), empty);
        assert_eq!(p.cell_at(from), None);
        assert!(p.check_invariants(&arch, &nl));
    }

    #[test]
    fn pinmap_updates_round_trip() {
        let (arch, nl) = setup();
        let mut p = Placement::random(&arch, &nl, 4).unwrap();
        let (cell, c) = nl.cells().find(|(_, c)| !c.kind().is_io()).unwrap();
        let palette_len = p.palette(c.kind()).len() as u16;
        assert!(palette_len >= 2);
        let old = p.set_pinmap(&nl, cell, 1);
        assert_eq!(old, 0);
        assert_eq!(p.pinmap_index(cell), 1);
        let _ = arch;
    }

    #[test]
    #[should_panic(expected = "pinmap index")]
    fn pinmap_out_of_range_panics() {
        let (_arch, nl) = setup();
        let arch = Architecture::builder()
            .rows(6)
            .cols(14)
            .io_columns(2)
            .build()
            .unwrap();
        let mut p = Placement::random(&arch, &nl, 4).unwrap();
        p.set_pinmap(&nl, CellId::new(0), 999);
    }

    #[test]
    fn export_from_parts_round_trips() {
        let (arch, nl) = setup();
        let mut p = Placement::random(&arch, &nl, 13).unwrap();
        let (cell, _) = nl.cells().find(|(_, c)| !c.kind().is_io()).unwrap();
        p.set_pinmap(&nl, cell, 1);
        let sites = p.export_sites();
        let pinmaps = p.export_pinmaps();
        let q = Placement::from_parts(&arch, &nl, &sites, &pinmaps).unwrap();
        assert!(q.check_invariants(&arch, &nl));
        for (id, _) in nl.cells() {
            assert_eq!(q.site_of(id), p.site_of(id));
            assert_eq!(q.pinmap_index(id), p.pinmap_index(id));
        }
        for s in 0..arch.geometry().num_sites() {
            assert_eq!(q.cell_at(SiteId::new(s)), p.cell_at(SiteId::new(s)));
        }
    }

    #[test]
    fn from_parts_rejects_malformed_assignments() {
        let (arch, nl) = setup();
        let p = Placement::random(&arch, &nl, 13).unwrap();
        let sites = p.export_sites();
        let pinmaps = p.export_pinmaps();
        let bad = |s: &[usize], m: &[u16]| {
            matches!(
                Placement::from_parts(&arch, &nl, s, m),
                Err(CreatePlacementError::InvalidAssignment { .. })
            )
        };
        assert!(bad(&sites[1..], &pinmaps));
        let mut oob = sites.clone();
        oob[0] = arch.geometry().num_sites();
        assert!(bad(&oob, &pinmaps));
        let mut dup = sites.clone();
        dup[1] = dup[0];
        assert!(bad(&dup, &pinmaps));
        let mut badmap = pinmaps.clone();
        badmap[0] = u16::MAX;
        assert!(bad(&sites, &badmap));
        // IO cell moved to a logic site
        let (io_cell, _) = nl.cells().find(|(_, c)| c.kind().is_io()).unwrap();
        let logic_site = arch
            .geometry()
            .sites_of_kind(SiteKind::Logic)
            .map(|s| s.id())
            .find(|s| p.cell_at(*s).is_none())
            .unwrap();
        let mut wrong_kind = sites.clone();
        wrong_kind[io_cell.index()] = logic_site.index();
        assert!(bad(&wrong_kind, &pinmaps));
    }

    #[test]
    fn rejects_overfull_designs() {
        let nl = generate(&GenerateConfig {
            num_cells: 200,
            num_inputs: 10,
            num_outputs: 10,
            num_seq: 10,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(2)
            .build()
            .unwrap();
        assert!(matches!(
            Placement::random(&arch, &nl, 0).unwrap_err(),
            CreatePlacementError::NotEnoughSites { .. }
        ));
    }
}
