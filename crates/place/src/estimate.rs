//! Wirelength and congestion estimation.
//!
//! These are the placement-level predictors the *sequential* baseline placer
//! optimizes (half-perimeter wirelength plus channel congestion, in the
//! TimberWolfSC tradition the paper's TI comparison flow is built on). The
//! paper argues such estimators are "especially prone to error" for
//! segmented row-based fabrics — reproducing that weakness faithfully is the
//! point of the baseline.

use rowfpga_arch::Architecture;
use rowfpga_netlist::{NetId, Netlist};

use crate::pins::net_pin_locs;
use crate::placement::Placement;

/// The bounding box of a net's pin locations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetBbox {
    /// Leftmost pin column.
    pub col_min: usize,
    /// Rightmost pin column.
    pub col_max: usize,
    /// Lowest pin channel.
    pub chan_min: usize,
    /// Highest pin channel.
    pub chan_max: usize,
}

impl NetBbox {
    /// Computes the bounding box of `net` under `placement`.
    ///
    /// # Panics
    ///
    /// Panics if the net has no pins (nets always have a driver and at least
    /// one sink by construction).
    pub fn compute(
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        net: NetId,
    ) -> NetBbox {
        let locs = net_pin_locs(arch, netlist, placement, net);
        let mut bbox = NetBbox {
            col_min: usize::MAX,
            col_max: 0,
            chan_min: usize::MAX,
            chan_max: 0,
        };
        for l in &locs {
            bbox.col_min = bbox.col_min.min(l.col.index());
            bbox.col_max = bbox.col_max.max(l.col.index());
            bbox.chan_min = bbox.chan_min.min(l.channel.index());
            bbox.chan_max = bbox.chan_max.max(l.channel.index());
        }
        assert!(bbox.col_min != usize::MAX, "net has no pins");
        bbox
    }

    /// Horizontal extent in columns (0 for a single-column net).
    pub fn width(&self) -> usize {
        self.col_max - self.col_min
    }

    /// Vertical extent in channels (0 for a single-channel net).
    pub fn height(&self) -> usize {
        self.chan_max - self.chan_min
    }

    /// Half-perimeter wirelength, the classic placement estimator, with
    /// channel crossings weighted by `vertical_weight` (vertical hops cost
    /// antifuses, so they are weighted heavier than horizontal columns).
    pub fn hpwl(&self, vertical_weight: f64) -> f64 {
        self.width() as f64 + vertical_weight * self.height() as f64
    }
}

/// Half-perimeter wirelength of a net with the conventional vertical weight
/// of 2.0 (one channel hop demands vertical segments and two cross
/// antifuses).
pub fn hpwl(arch: &Architecture, netlist: &Netlist, placement: &Placement, net: NetId) -> f64 {
    NetBbox::compute(arch, netlist, placement, net).hpwl(2.0)
}

/// Incremental per-channel routing-demand tracker.
///
/// Each net contributes its column span to every channel in its channel
/// range (the usual uniform-probability congestion model). The cost is the
/// sum over channels of the *squared* overflow beyond the channel's track
/// capacity, so the baseline placer is only penalized where estimated demand
/// exceeds supply.
#[derive(Clone, Debug)]
pub struct CongestionMap {
    /// Estimated wire demand (column-units) per channel.
    demand: Vec<f64>,
    /// Capacity per channel: tracks × columns.
    capacity: f64,
}

impl CongestionMap {
    /// Creates an empty map for the chip.
    pub fn new(arch: &Architecture) -> CongestionMap {
        CongestionMap {
            demand: vec![0.0; arch.geometry().num_channels()],
            capacity: (arch.tracks_per_channel() * arch.geometry().num_cols()) as f64,
        }
    }

    /// Demand a single net adds to each channel of its bbox: its width,
    /// split evenly when the net spans several channels.
    fn per_channel_demand(bbox: &NetBbox) -> f64 {
        let span = (bbox.height() + 1) as f64;
        (bbox.width() as f64 + 1.0) / span.sqrt()
    }

    /// Adds a net's demand.
    pub fn add_net(&mut self, bbox: &NetBbox) {
        let d = Self::per_channel_demand(bbox);
        for c in bbox.chan_min..=bbox.chan_max {
            self.demand[c] += d;
        }
    }

    /// Removes a net's demand (inverse of [`CongestionMap::add_net`] with
    /// the same bbox).
    pub fn remove_net(&mut self, bbox: &NetBbox) {
        let d = Self::per_channel_demand(bbox);
        for c in bbox.chan_min..=bbox.chan_max {
            self.demand[c] -= d;
        }
    }

    /// Total squared overflow over all channels.
    pub fn cost(&self) -> f64 {
        self.demand
            .iter()
            .map(|&d| {
                let over = (d - self.capacity).max(0.0);
                over * over
            })
            .sum()
    }

    /// Estimated demand of one channel.
    pub fn demand_of(&self, channel: usize) -> f64 {
        self.demand[channel]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, CellId, GenerateConfig};

    fn setup() -> (Architecture, Netlist, Placement) {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(14)
            .io_columns(2)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 11).unwrap();
        (arch, nl, p)
    }

    #[test]
    fn bbox_contains_all_pins() {
        let (arch, nl, p) = setup();
        for (id, _) in nl.nets() {
            let bbox = NetBbox::compute(&arch, &nl, &p, id);
            for l in net_pin_locs(&arch, &nl, &p, id) {
                assert!(bbox.col_min <= l.col.index() && l.col.index() <= bbox.col_max);
                assert!(bbox.chan_min <= l.channel.index() && l.channel.index() <= bbox.chan_max);
            }
        }
    }

    #[test]
    fn hpwl_is_nonnegative_and_move_sensitive() {
        let (arch, nl, mut p) = setup();
        let total: f64 = nl.nets().map(|(id, _)| hpwl(&arch, &nl, &p, id)).sum();
        assert!(total >= 0.0);
        // swapping some pair of logic cells must change total hpwl
        let cells: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| !c.kind().is_io())
            .map(|(id, _)| id)
            .collect();
        let mut changed = false;
        for pair in cells.windows(2) {
            p.swap_sites(&arch, p.site_of(pair[0]), p.site_of(pair[1]));
            let total2: f64 = nl.nets().map(|(id, _)| hpwl(&arch, &nl, &p, id)).sum();
            if (total2 - total).abs() > 1e-9 {
                changed = true;
                break;
            }
        }
        assert!(changed, "no swap changed total hpwl");
    }

    #[test]
    fn congestion_add_remove_is_identity() {
        let (arch, nl, p) = setup();
        let mut map = CongestionMap::new(&arch);
        let bboxes: Vec<NetBbox> = nl
            .nets()
            .map(|(id, _)| NetBbox::compute(&arch, &nl, &p, id))
            .collect();
        for b in &bboxes {
            map.add_net(b);
        }
        let full_cost = map.cost();
        for b in &bboxes {
            map.remove_net(b);
        }
        for c in 0..arch.geometry().num_channels() {
            assert!(map.demand_of(c).abs() < 1e-9);
        }
        assert_eq!(map.cost(), 0.0);
        // cost is monotone: fewer nets never cost more
        let mut partial = CongestionMap::new(&arch);
        for b in &bboxes[..bboxes.len() / 2] {
            partial.add_net(b);
        }
        assert!(partial.cost() <= full_cost + 1e-9);
    }

    #[test]
    fn congestion_cost_zero_until_overflow() {
        let arch = Architecture::builder()
            .rows(2)
            .cols(10)
            .io_columns(1)
            .tracks_per_channel(100)
            .build()
            .unwrap();
        let mut map = CongestionMap::new(&arch);
        map.add_net(&NetBbox {
            col_min: 0,
            col_max: 9,
            chan_min: 0,
            chan_max: 0,
        });
        assert_eq!(map.cost(), 0.0, "demand far below capacity must be free");
    }
}
