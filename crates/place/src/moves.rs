// rowfpga-lint: hot-path
//! Annealing move proposal over placements.
//!
//! The paper's move-set is deliberately simple (§3.2): random exchanges of
//! two module locations (one of which may be empty, giving single-cell
//! translations) and pinmap reassignments from the legal palette. There are
//! *no* moves that alter nets — routing reacts to placement moves through
//! rip-up and incremental reroute, which is the caller's (the layout
//! engine's) job.
//!
//! Exchanges can be **range limited**: the classic TimberWolf refinement in
//! which the target site is drawn from a window around the cell's current
//! location, shrunk as the temperature falls so that cold-regime moves are
//! local refinements. The paper's §5 mentions exactly this class of
//! "technical improvements to the core of the annealing formulation" as
//! ongoing work; engines opt in via [`MoveGenerator::propose_in_window`].

use rand::rngs::StdRng;
use rand::Rng;

use rowfpga_arch::{Architecture, SiteId, SiteKind};
use rowfpga_netlist::{CellId, Netlist};

use crate::placement::Placement;

/// A reversible placement perturbation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Exchange the occupants of two same-kind sites (swap if both occupied,
    /// translation if one is empty).
    Exchange {
        /// First site.
        a: SiteId,
        /// Second site.
        b: SiteId,
    },
    /// Change a cell's pinmap.
    Pinmap {
        /// The reconfigured cell.
        cell: CellId,
        /// Previous palette index (for undo).
        from: u16,
        /// New palette index.
        to: u16,
    },
}

impl Move {
    /// Applies the move to a placement.
    pub fn apply(&self, arch: &Architecture, netlist: &Netlist, placement: &mut Placement) {
        match *self {
            Move::Exchange { a, b } => placement.swap_sites(arch, a, b),
            Move::Pinmap { cell, to, .. } => {
                placement.set_pinmap(netlist, cell, to);
            }
        }
    }

    /// Reverts the move (exact inverse of [`Move::apply`]).
    pub fn undo(&self, arch: &Architecture, netlist: &Netlist, placement: &mut Placement) {
        match *self {
            Move::Exchange { a, b } => placement.swap_sites(arch, a, b),
            Move::Pinmap { cell, from, .. } => {
                placement.set_pinmap(netlist, cell, from);
            }
        }
    }

    /// The cells whose pin locations this move disturbs. For an exchange the
    /// set is identical before and after application. At most two cells are
    /// affected, so the result is an inline, allocation-free iterator.
    pub fn affected_cells(&self, placement: &Placement) -> AffectedCells {
        match *self {
            Move::Exchange { a, b } => {
                AffectedCells::pair(placement.cell_at(a), placement.cell_at(b))
            }
            Move::Pinmap { cell, .. } => AffectedCells::pair(Some(cell), None),
        }
    }
}

/// The (at most two) cells a [`Move`] disturbs, yielded by value so the
/// move-evaluation loop never touches the allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct AffectedCells {
    cells: [Option<CellId>; 2],
    next: usize,
}

impl AffectedCells {
    /// Front-packs up to two occupants into the inline array.
    fn pair(a: Option<CellId>, b: Option<CellId>) -> AffectedCells {
        let cells = if a.is_none() { [b, None] } else { [a, b] };
        AffectedCells { cells, next: 0 }
    }

    /// Cells not yet yielded.
    pub fn len(&self) -> usize {
        self.cells[self.next..].iter().flatten().count()
    }

    /// Whether every cell has been yielded (or none existed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for AffectedCells {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        let item = self.cells.get(self.next).copied().flatten();
        self.next += 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for AffectedCells {}

/// Relative frequencies of the move classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveWeights {
    /// Weight of site exchanges.
    pub exchange: f64,
    /// Weight of pinmap reassignments.
    pub pinmap: f64,
}

impl Default for MoveWeights {
    fn default() -> Self {
        // Placement changes carry most of the optimization leverage
        // (paper §2.1); pinmap tweaks are a finer-grained minority move.
        Self {
            exchange: 0.85,
            pinmap: 0.15,
        }
    }
}

/// Proposes random legal moves.
#[derive(Clone, Debug)]
pub struct MoveGenerator {
    weights: MoveWeights,
    io_sites: Vec<SiteId>,
    logic_sites: Vec<SiteId>,
    cells: Vec<CellId>,
    /// `is_io_site[site]` for O(1) pool selection.
    is_io_site: Vec<bool>,
    /// (row, col) per site for window tests.
    site_pos: Vec<(u32, u32)>,
    /// Largest possible window half-width (covers the whole chip).
    max_window: usize,
}

impl MoveGenerator {
    /// Creates a generator for the given problem.
    // rowfpga-lint: begin-allow(hot-path) reason=one-time constructor builds the site/cell pools for the whole run
    pub fn new(arch: &Architecture, netlist: &Netlist, weights: MoveWeights) -> MoveGenerator {
        let geom = arch.geometry();
        let mut is_io_site = vec![false; geom.num_sites()];
        let mut site_pos = vec![(0u32, 0u32); geom.num_sites()];
        for site in geom.sites() {
            is_io_site[site.id().index()] = site.kind() == SiteKind::Io;
            site_pos[site.id().index()] = (site.row().index() as u32, site.col().index() as u32);
        }
        MoveGenerator {
            weights,
            io_sites: geom.sites_of_kind(SiteKind::Io).map(|s| s.id()).collect(),
            logic_sites: geom
                .sites_of_kind(SiteKind::Logic)
                .map(|s| s.id())
                .collect(),
            cells: netlist.cells().map(|(id, _)| id).collect(),
            is_io_site,
            site_pos,
            max_window: geom.num_rows().max(geom.num_cols()),
        }
    }
    // rowfpga-lint: end-allow(hot-path)

    /// The window half-width that covers the whole chip (the "no limit"
    /// value).
    pub fn max_window(&self) -> usize {
        self.max_window
    }

    /// Proposes a random legal move against the current placement, with no
    /// range limit.
    ///
    /// The move always changes state: an exchange never pairs a site with
    /// itself or two empty sites, and a pinmap move always selects a
    /// different palette index (cells with singleton palettes are skipped).
    pub fn propose(&self, netlist: &Netlist, placement: &Placement, rng: &mut StdRng) -> Move {
        self.propose_in_window(netlist, placement, rng, None)
    }

    /// Like [`MoveGenerator::propose`], but exchange targets are drawn from
    /// a Chebyshev window of half-width `window` (in rows/columns) around
    /// the moving cell's current site. `None` disables the limit.
    ///
    /// The window is best-effort: if no in-window target is found after a
    /// bounded number of draws (tiny windows on sparse I/O rings), the
    /// limit is waived for that proposal so the generator never stalls.
    pub fn propose_in_window(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        rng: &mut StdRng,
        window: Option<usize>,
    ) -> Move {
        let p: f64 = rng.gen();
        let want_pinmap = p < self.weights.pinmap / (self.weights.pinmap + self.weights.exchange);
        if want_pinmap {
            if let Some(m) = self.propose_pinmap(netlist, placement, rng) {
                return m;
            }
            // All palettes singleton (degenerate); fall through to exchange.
        }
        self.propose_exchange(placement, rng, window)
    }

    fn propose_exchange(
        &self,
        placement: &Placement,
        rng: &mut StdRng,
        window: Option<usize>,
    ) -> Move {
        let cell = self.cells[rng.gen_range(0..self.cells.len())];
        let a = placement.site_of(cell);
        let pool = if self.is_io_site[a.index()] {
            &self.io_sites
        } else {
            &self.logic_sites
        };
        if let Some(w) = window {
            let (ar, ac) = self.site_pos[a.index()];
            for _ in 0..32 {
                let b = pool[rng.gen_range(0..pool.len())];
                if b == a {
                    continue;
                }
                let (br, bc) = self.site_pos[b.index()];
                if ar.abs_diff(br) as usize <= w && ac.abs_diff(bc) as usize <= w {
                    return Move::Exchange { a, b };
                }
            }
            // Window too tight for this pool; waive it below.
        }
        loop {
            let b = pool[rng.gen_range(0..pool.len())];
            if b != a {
                return Move::Exchange { a, b };
            }
        }
    }

    fn propose_pinmap(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        rng: &mut StdRng,
    ) -> Option<Move> {
        for _ in 0..8 {
            let cell = self.cells[rng.gen_range(0..self.cells.len())];
            let palette_len = placement.palette(netlist.cell(cell).kind()).len() as u16;
            if palette_len < 2 {
                continue;
            }
            let from = placement.pinmap_index(cell);
            let mut to = rng.gen_range(0..palette_len - 1);
            if to >= from {
                to += 1;
            }
            return Some(Move::Pinmap { cell, from, to });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rowfpga_netlist::{generate, GenerateConfig};

    fn setup() -> (Architecture, Netlist, Placement) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(1)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 2).unwrap();
        (arch, nl, p)
    }

    #[test]
    fn proposed_moves_apply_and_undo_cleanly() {
        let (arch, nl, mut p) = setup();
        let gen = MoveGenerator::new(&arch, &nl, MoveWeights::default());
        let mut rng = StdRng::seed_from_u64(3);
        let reference = p.clone();
        for _ in 0..500 {
            let m = gen.propose(&nl, &p, &mut rng);
            m.apply(&arch, &nl, &mut p);
            assert!(p.check_invariants(&arch, &nl));
            m.undo(&arch, &nl, &mut p);
        }
        for (id, _) in nl.cells() {
            assert_eq!(p.site_of(id), reference.site_of(id));
            assert_eq!(p.pinmap_index(id), reference.pinmap_index(id));
        }
    }

    #[test]
    fn both_move_classes_are_proposed() {
        let (arch, nl, p) = setup();
        let gen = MoveGenerator::new(&arch, &nl, MoveWeights::default());
        let mut rng = StdRng::seed_from_u64(4);
        let mut exchanges = 0;
        let mut pinmaps = 0;
        for _ in 0..1000 {
            match gen.propose(&nl, &p, &mut rng) {
                Move::Exchange { .. } => exchanges += 1,
                Move::Pinmap { .. } => pinmaps += 1,
            }
        }
        assert!(exchanges > 500, "exchanges too rare: {exchanges}");
        assert!(pinmaps > 50, "pinmaps too rare: {pinmaps}");
    }

    #[test]
    fn pinmap_moves_always_change_the_index() {
        let (arch, nl, p) = setup();
        let gen = MoveGenerator::new(
            &arch,
            &nl,
            MoveWeights {
                exchange: 0.0,
                pinmap: 1.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            if let Move::Pinmap { cell, from, to } = gen.propose(&nl, &p, &mut rng) {
                assert_ne!(from, to);
                assert_eq!(from, p.pinmap_index(cell));
            }
        }
    }

    #[test]
    fn affected_cells_covers_exchange_occupants() {
        let (arch, nl, mut p) = setup();
        let gen = MoveGenerator::new(&arch, &nl, MoveWeights::default());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let m = gen.propose(&nl, &p, &mut rng);
            let affected = m.affected_cells(&p);
            assert!(!affected.is_empty());
            m.apply(&arch, &nl, &mut p);
            let mut x: Vec<CellId> = affected.collect();
            let mut y: Vec<CellId> = m.affected_cells(&p).collect();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y, "affected set must be stable across application");
        }
    }

    #[test]
    fn windowed_exchanges_stay_local_on_logic_sites() {
        let (arch, nl, p) = setup();
        let gen = MoveGenerator::new(
            &arch,
            &nl,
            MoveWeights {
                exchange: 1.0,
                pinmap: 0.0,
            },
        );
        let geom = arch.geometry();
        let mut rng = StdRng::seed_from_u64(7);
        let mut local = 0;
        let mut total = 0;
        for _ in 0..500 {
            if let Move::Exchange { a, b } = gen.propose_in_window(&nl, &p, &mut rng, Some(2)) {
                let (sa, sb) = (geom.site(a), geom.site(b));
                // I/O pools are sparse rings where tiny windows are often
                // waived; measure locality on the dense logic pool.
                if sa.kind() == SiteKind::Logic {
                    total += 1;
                    if sa.row().index().abs_diff(sb.row().index()) <= 2
                        && sa.col().index().abs_diff(sb.col().index()) <= 2
                    {
                        local += 1;
                    }
                }
            }
        }
        assert!(total > 100);
        assert!(
            local as f64 >= 0.95 * total as f64,
            "window not respected: {local}/{total}"
        );
    }

    #[test]
    fn tiny_windows_never_stall() {
        let (arch, nl, p) = setup();
        let gen = MoveGenerator::new(&arch, &nl, MoveWeights::default());
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            // window 0 cannot be satisfied (b != a) — must waive, not hang
            let m = gen.propose_in_window(&nl, &p, &mut rng, Some(0));
            if let Move::Exchange { a, b } = m {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn max_window_covers_the_chip() {
        let (arch, nl, _) = setup();
        let gen = MoveGenerator::new(&arch, &nl, MoveWeights::default());
        assert_eq!(gen.max_window(), 12);
    }
}
