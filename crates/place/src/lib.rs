//! Placement state and moves for row-based FPGA layout.
//!
//! A placement assigns every cell of a [`rowfpga_netlist::Netlist`] to a
//! compatible site of a [`rowfpga_arch::Architecture`] — I/O cells on I/O
//! sites, logic cells on logic sites — and gives every cell a pinmap chosen
//! from its legal palette. The paper's annealer keeps all intermediate
//! states legally placed (no overlaps, no unassigned cells; §3.2), which
//! [`Placement`] guarantees by construction: it only exposes swap, translate
//! and pinmap-change operations.
//!
//! The crate also provides the *physical pin location* computation — which
//! column and channel each logical pin touches, given the cell's site and
//! pinmap — and the wirelength/congestion estimators that the *sequential*
//! baseline placer optimizes (the simultaneous flow deliberately has no such
//! term in its cost; paper §3.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod moves;
mod pins;
mod placement;

pub use estimate::{hpwl, CongestionMap, NetBbox};
pub use moves::{Move, MoveGenerator, MoveWeights};
pub use pins::{net_pin_locs, pin_loc, PinLoc};
pub use placement::{CreatePlacementError, Placement};
