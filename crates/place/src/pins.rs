//! Physical pin locations.
//!
//! A pin's physical location is determined by its cell's site and pinmap: it
//! lands in the cell's column, in the channel above the row (top-side port)
//! or below it (bottom-side port). Routing and timing consume nothing about
//! a net's pins beyond this `(column, channel)` pair.

use rowfpga_arch::{Architecture, ChannelId, ColId};
use rowfpga_netlist::{NetId, Netlist, PinRef, PortSide};

use crate::placement::Placement;

/// Where a pin physically attaches to the routing fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PinLoc {
    /// Column of the cell's site.
    pub col: ColId,
    /// Channel the pin's port faces.
    pub channel: ChannelId,
}

/// Computes the physical location of `pin` under the current placement and
/// pinmap.
///
/// # Panics
///
/// Panics if `pin` is out of range for its cell.
pub fn pin_loc(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    pin: PinRef,
) -> PinLoc {
    let site = arch.geometry().site(placement.site_of(pin.cell));
    let side = placement.pinmap(netlist, pin.cell).pin_side(pin.pin);
    let channel = match side {
        PortSide::Top => site.channel_above(),
        PortSide::Bottom => site.channel_below(),
    };
    PinLoc {
        col: site.col(),
        channel,
    }
}

/// The locations of all pins of `net`, driver first.
pub fn net_pin_locs(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    net: NetId,
) -> Vec<PinLoc> {
    netlist
        .net(net)
        .pins()
        .map(|p| pin_loc(arch, netlist, placement, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_arch::SiteKind;
    use rowfpga_netlist::{CellKind, Netlist};

    fn setup() -> (Architecture, Netlist, Placement) {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(2));
        let h = b.add_cell("h", CellKind::comb(1));
        let q = b.add_cell("q", CellKind::Output);
        b.connect("na", a, [(g, 1), (g, 2)]).unwrap();
        b.connect("ng", g, [(h, 1)]).unwrap();
        b.connect("nh", h, [(q, 0)]).unwrap();
        let nl = b.build().unwrap();
        let arch = Architecture::builder()
            .rows(3)
            .cols(8)
            .io_columns(1)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 5).unwrap();
        (arch, nl, p)
    }

    #[test]
    fn pin_channel_tracks_site_row_and_side() {
        let (arch, nl, p) = setup();
        let g = nl.cell_by_name("g").unwrap();
        let site = arch.geometry().site(p.site_of(g));
        for pin in 0..nl.cell(g).kind().num_pins() as u8 {
            let loc = pin_loc(&arch, &nl, &p, PinRef::new(g, pin));
            assert_eq!(loc.col, site.col());
            let side = p.pinmap(&nl, g).pin_side(pin);
            let expected = match side {
                PortSide::Top => site.channel_above(),
                PortSide::Bottom => site.channel_below(),
            };
            assert_eq!(loc.channel, expected);
        }
    }

    #[test]
    fn pinmap_change_flips_the_channel() {
        let (arch, nl, mut p) = setup();
        let g = nl.cell_by_name("g").unwrap();
        let before = pin_loc(&arch, &nl, &p, PinRef::new(g, 0));
        // find a palette entry whose output side differs from index 0
        let kind = nl.cell(g).kind();
        let cur_side = p.palette(kind)[0].pin_side(0);
        let flipped = p
            .palette(kind)
            .iter()
            .position(|pm| pm.pin_side(0) != cur_side)
            .expect("palette has both output sides") as u16;
        p.set_pinmap(&nl, g, flipped);
        let after = pin_loc(&arch, &nl, &p, PinRef::new(g, 0));
        assert_eq!(before.col, after.col);
        assert_ne!(before.channel, after.channel);
        let diff = before.channel.index().abs_diff(after.channel.index());
        assert_eq!(diff, 1);
    }

    #[test]
    fn net_pin_locs_lists_driver_first() {
        let (arch, nl, p) = setup();
        let na = nl.net_by_name("na").unwrap();
        let locs = net_pin_locs(&arch, &nl, &p, na);
        assert_eq!(locs.len(), 3);
        let a = nl.cell_by_name("a").unwrap();
        let a_site = arch.geometry().site(p.site_of(a));
        assert_eq!(locs[0].col, a_site.col());
        assert_eq!(a_site.kind(), SiteKind::Io);
    }
}
