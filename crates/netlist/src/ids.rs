//! Identifiers for netlist objects.

use std::fmt;

/// Index of a cell within a [`crate::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CellId(u32);

/// Index of a net within a [`crate::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetId(u32);

/// Index of a pin within a cell.
///
/// Pin 0 is the cell's output for kinds that drive a signal
/// ([`crate::CellKind::Input`], [`crate::CellKind::Comb`],
/// [`crate::CellKind::Seq`]); input pins follow. For
/// [`crate::CellKind::Output`] cells, pin 0 is the single input.
pub type PinIndex = u8;

/// A specific pin of a specific cell.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PinRef {
    /// The cell the pin belongs to.
    pub cell: CellId,
    /// The pin's index within the cell.
    pub pin: PinIndex,
}

impl PinRef {
    /// Creates a pin reference.
    pub fn new(cell: CellId, pin: PinIndex) -> Self {
        Self { cell, pin }
    }
}

impl fmt::Debug for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}.{}", self.cell, self.pin)
    }
}

macro_rules! impl_id {
    ($name:ident, $tag:literal) => {
        impl $name {
            /// Wraps a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("netlist index overflows u32"))
            }

            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

impl_id!(CellId, "cell");
impl_id!(NetId, "net");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        assert_eq!(CellId::new(7).index(), 7);
        assert_eq!(NetId::new(9).index(), 9);
    }

    #[test]
    fn pin_ref_formats_compactly() {
        let p = PinRef::new(CellId::new(3), 2);
        assert_eq!(format!("{p:?}"), "cell3.2");
    }

    #[test]
    fn pin_refs_are_ordered_by_cell_then_pin() {
        let a = PinRef::new(CellId::new(1), 3);
        let b = PinRef::new(CellId::new(2), 0);
        let c = PinRef::new(CellId::new(2), 1);
        assert!(a < b && b < c);
    }
}
