//! Seeded synthetic benchmark generation.
//!
//! The paper evaluates on five technology-mapped MCNC designs (s1, cse, ex1,
//! bw, s1a) plus one 529-cell design. The original mapped netlists are not
//! redistributable, so this module generates synthetic equivalents with
//! matching cell counts and realistic structure: bounded fan-in, a skewed
//! fan-out distribution (a few high-fanout control signals, many 1–2 sink
//! nets), locality between logically adjacent cells, and sequential elements
//! that close feedback loops as in FSM benchmarks. Generation is fully
//! deterministic in the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cell::{CellKind, MAX_FANIN};
use crate::ids::CellId;
use crate::netlist::Netlist;

/// Parameters of the synthetic benchmark generator.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateConfig {
    /// Total cells, including I/O cells.
    pub num_cells: usize,
    /// Primary-input cells.
    pub num_inputs: usize,
    /// Primary-output cells.
    pub num_outputs: usize,
    /// Sequential cells.
    pub num_seq: usize,
    /// Maximum fan-in of generated combinational cells (2..=[`MAX_FANIN`]).
    pub max_fanin: usize,
    /// Probability that an input connects to an already-popular signal
    /// (preferential attachment); raises fan-out skew.
    pub fanout_skew: f64,
    /// Probability that an input connects to a recently created cell;
    /// raises logic depth and locality.
    pub locality: f64,
    /// RNG seed; equal configs generate identical netlists.
    pub seed: u64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        Self {
            num_cells: 100,
            num_inputs: 8,
            num_outputs: 8,
            num_seq: 6,
            max_fanin: 4,
            fanout_skew: 0.25,
            locality: 0.55,
            seed: 1,
        }
    }
}

/// The designs evaluated in the paper, by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperBenchmark {
    /// MCNC `s1`, 181 cells (paper Tables 1 and 2).
    S1,
    /// MCNC `cse`, 156 cells.
    Cse,
    /// MCNC `ex1`, 227 cells.
    Ex1,
    /// MCNC `bw`, 158 cells.
    Bw,
    /// MCNC `s1a`, 163 cells.
    S1a,
    /// The 529-cell design of Figure 7.
    Big529,
}

impl PaperBenchmark {
    /// All presets in paper order.
    pub fn all() -> [PaperBenchmark; 6] {
        [
            PaperBenchmark::S1,
            PaperBenchmark::Cse,
            PaperBenchmark::Ex1,
            PaperBenchmark::Bw,
            PaperBenchmark::S1a,
            PaperBenchmark::Big529,
        ]
    }

    /// The benchmark's name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PaperBenchmark::S1 => "s1",
            PaperBenchmark::Cse => "cse",
            PaperBenchmark::Ex1 => "ex1",
            PaperBenchmark::Bw => "bw",
            PaperBenchmark::S1a => "s1a",
            PaperBenchmark::Big529 => "big529",
        }
    }

    /// Total cell count, matching the paper.
    pub fn num_cells(&self) -> usize {
        match self {
            PaperBenchmark::S1 => 181,
            PaperBenchmark::Cse => 156,
            PaperBenchmark::Ex1 => 227,
            PaperBenchmark::Bw => 158,
            PaperBenchmark::S1a => 163,
            PaperBenchmark::Big529 => 529,
        }
    }
}

/// The generator configuration for a paper benchmark: cell count from the
/// paper, I/O and flip-flop counts from the MCNC FSM descriptions.
pub fn paper_preset(benchmark: PaperBenchmark) -> GenerateConfig {
    let (num_inputs, num_outputs, num_seq, seed) = match benchmark {
        PaperBenchmark::S1 => (8, 6, 5, 0x5101),
        PaperBenchmark::Cse => (7, 7, 4, 0xC5E0),
        PaperBenchmark::Ex1 => (9, 19, 5, 0xE810),
        PaperBenchmark::Bw => (5, 28, 5, 0xB300),
        PaperBenchmark::S1a => (8, 6, 5, 0x51A0),
        PaperBenchmark::Big529 => (24, 24, 30, 0x5290),
    };
    GenerateConfig {
        num_cells: benchmark.num_cells(),
        num_inputs,
        num_outputs,
        num_seq,
        ..GenerateConfig {
            seed,
            ..GenerateConfig::default()
        }
    }
}

/// Generates a synthetic technology-mapped netlist.
///
/// The result always levelizes (no combinational loops): combinational cells
/// only consume signals created before them; feedback is closed exclusively
/// through sequential cells.
///
/// # Panics
///
/// Panics if the configuration is inconsistent: fewer cells than
/// `inputs + outputs + seq + 1`, no primary inputs, no primary outputs, or a
/// `max_fanin` outside `2..=`[`MAX_FANIN`].
pub fn generate(config: &GenerateConfig) -> Netlist {
    let io_and_seq = config.num_inputs + config.num_outputs + config.num_seq;
    assert!(
        config.num_cells > io_and_seq,
        "num_cells={} leaves no combinational cells (inputs+outputs+seq={})",
        config.num_cells,
        io_and_seq
    );
    assert!(config.num_inputs > 0, "designs need at least one input");
    assert!(config.num_outputs > 0, "designs need at least one output");
    assert!(
        (2..=MAX_FANIN).contains(&config.max_fanin),
        "max_fanin must be in 2..={MAX_FANIN}"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let num_comb = config.num_cells - io_and_seq;
    let mut b = Netlist::builder();

    // Primary inputs.
    let pis: Vec<CellId> = (0..config.num_inputs)
        .map(|i| b.add_cell(format!("pi{i}"), CellKind::Input))
        .collect();

    // Internal cells in creation (topological) order: combinational cells
    // with random fan-in, sequential cells sprinkled throughout.
    let mut internal: Vec<CellId> = Vec::with_capacity(num_comb + config.num_seq);
    let mut seq_positions: Vec<usize> = (0..(num_comb + config.num_seq)).collect();
    // Fisher–Yates partial shuffle picks which creation slots hold FFs.
    for i in 0..config.num_seq {
        let j = rng.gen_range(i..seq_positions.len());
        seq_positions.swap(i, j);
    }
    let mut is_seq_slot = vec![false; num_comb + config.num_seq];
    for &p in &seq_positions[..config.num_seq] {
        is_seq_slot[p] = true;
    }
    let mut comb_count = 0usize;
    let mut seq_count = 0usize;
    for slot in &is_seq_slot {
        if *slot {
            internal.push(b.add_cell(format!("ff{seq_count}"), CellKind::Seq));
            seq_count += 1;
        } else {
            let fanin = rng.gen_range(2..=config.max_fanin);
            internal.push(b.add_cell(format!("c{comb_count}"), CellKind::comb(fanin)));
            comb_count += 1;
        }
    }

    // sink assignment: per driver cell, the (cell, pin) sinks it collects.
    let total = config.num_inputs + internal.len();
    let mut sinks_of: Vec<Vec<(CellId, u8)>> = vec![Vec::new(); total + config.num_outputs];
    // drivers available to combinational consumers created at position i:
    // all PIs + internal cells at earlier positions + any FF (feedback).
    let all_drivers: Vec<CellId> = pis
        .iter()
        .copied()
        .chain(internal.iter().copied())
        .collect();

    let pick_driver = |rng: &mut StdRng,
                       upto: usize, // internal cells with position < upto are eligible
                       allow_all_seq: bool,
                       sinks_of: &Vec<Vec<(CellId, u8)>>,
                       b: &crate::netlist::NetlistBuilder|
     -> CellId {
        let eligible_len = config.num_inputs + upto;
        loop {
            let r: f64 = rng.gen();
            let candidate = if r < config.fanout_skew && eligible_len > 0 {
                // preferential attachment: pick the driver of a random
                // already-made connection
                let loaded: Vec<usize> = (0..eligible_len)
                    .filter(|&i| !sinks_of[i].is_empty())
                    .collect();
                if loaded.is_empty() {
                    all_drivers[rng.gen_range(0..eligible_len)]
                } else {
                    all_drivers[loaded[rng.gen_range(0..loaded.len())]]
                }
            } else if r < config.fanout_skew + config.locality && upto > 0 {
                // locality: one of the last few created internal cells
                let window = upto.min(16);
                internal[upto - 1 - rng.gen_range(0..window)]
            } else if allow_all_seq && rng.gen_bool(0.3) && config.num_seq > 0 {
                // feedback source: any FF, even a later one
                let ffs: Vec<CellId> = internal
                    .iter()
                    .copied()
                    .filter(|c| b.cell_kind(*c) == CellKind::Seq)
                    .collect();
                ffs[rng.gen_range(0..ffs.len())]
            } else {
                all_drivers[rng.gen_range(0..eligible_len.max(config.num_inputs))]
            };
            // Combinational consumers must not read later comb cells.
            let pos = all_drivers.iter().position(|c| *c == candidate).unwrap();
            let is_ff = b.cell_kind(candidate) == CellKind::Seq;
            if pos < eligible_len || (allow_all_seq && is_ff) {
                return candidate;
            }
        }
    };

    // Wire internal cell inputs.
    for (pos, &cell) in internal.iter().enumerate() {
        let kind = b.cell_kind(cell);
        let n_in = kind.num_inputs();
        let is_ff = kind == CellKind::Seq;
        for pin in 1..=n_in {
            // FFs may read any signal (feedback through the FF is legal);
            // comb cells only read earlier signals.
            let driver = pick_driver(&mut rng, pos, is_ff, &sinks_of, &b);
            let didx = all_drivers.iter().position(|c| *c == driver).unwrap();
            sinks_of[didx].push((cell, pin as u8));
        }
    }

    // Primary outputs consume danglers first, then random internal signals.
    let mut danglers: Vec<usize> = (config.num_inputs..total)
        .filter(|&i| sinks_of[i].is_empty())
        .collect();
    let pos: Vec<CellId> = (0..config.num_outputs)
        .map(|i| b.add_cell(format!("po{i}"), CellKind::Output))
        .collect();
    for po in &pos {
        let didx = if let Some(d) = danglers.pop() {
            d
        } else {
            config.num_inputs + rng.gen_range(0..internal.len())
        };
        sinks_of[didx].push((*po, 0));
    }

    // Any remaining danglers get absorbed as extra primary-output taps is
    // impossible (POs have one pin), so instead leave them dangling: real
    // mapped designs occasionally have unobserved outputs too. They still
    // have all inputs wired, so they participate in placement and routing.

    // Emit nets.
    for (didx, driver) in all_drivers.iter().enumerate() {
        if sinks_of[didx].is_empty() {
            continue;
        }
        let name = format!("n_{}", didx);
        b.connect(name, *driver, sinks_of[didx].iter().copied())
            .expect("generator produced invalid connectivity");
    }

    b.build().expect("generator produced incomplete netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::Levels;

    #[test]
    fn default_config_generates_valid_netlist() {
        let nl = generate(&GenerateConfig::default());
        assert_eq!(nl.num_cells(), 100);
        let s = nl.stats();
        assert_eq!(s.num_inputs, 8);
        assert_eq!(s.num_outputs, 8);
        assert_eq!(s.num_seq, 6);
        assert_eq!(s.num_comb, 78);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenerateConfig::default());
        let b = generate(&GenerateConfig::default());
        assert_eq!(a.num_nets(), b.num_nets());
        for (id, net) in a.nets() {
            assert_eq!(net.sinks(), b.net(id).sinks());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenerateConfig::default());
        let b = generate(&GenerateConfig {
            seed: 99,
            ..GenerateConfig::default()
        });
        let same = a
            .nets()
            .zip(b.nets())
            .all(|((_, x), (_, y))| x.sinks() == y.sinks());
        assert!(!same, "seeds 1 and 99 produced identical netlists");
    }

    #[test]
    fn generated_netlists_levelize() {
        for seed in [1, 2, 3, 4, 5] {
            let nl = generate(&GenerateConfig {
                seed,
                ..GenerateConfig::default()
            });
            let lv = Levels::compute(&nl).expect("no combinational loops");
            assert!(lv.max_level() >= 2, "unrealistically shallow netlist");
        }
    }

    #[test]
    fn paper_presets_match_published_cell_counts() {
        for bench in PaperBenchmark::all() {
            let nl = generate(&paper_preset(bench));
            assert_eq!(nl.num_cells(), bench.num_cells(), "{}", bench.name());
            Levels::compute(&nl).expect("preset must levelize");
        }
    }

    #[test]
    fn fanout_distribution_is_skewed() {
        let nl = generate(&GenerateConfig {
            num_cells: 300,
            num_inputs: 10,
            num_outputs: 10,
            num_seq: 10,
            ..GenerateConfig::default()
        });
        let s = nl.stats();
        assert!(s.max_fanout >= 5, "expected some high-fanout nets");
        assert!(s.avg_fanout < 4.0, "average fanout unrealistically high");
    }

    #[test]
    #[should_panic(expected = "num_cells")]
    fn rejects_impossible_cell_budget() {
        generate(&GenerateConfig {
            num_cells: 10,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 2,
            ..GenerateConfig::default()
        });
    }
}
