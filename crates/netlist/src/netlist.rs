//! The netlist container and its builder.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::cell::{Cell, CellKind};
use crate::ids::{CellId, NetId, PinIndex, PinRef};

/// A signal: one driving pin and one or more sink pins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    name: String,
    driver: PinRef,
    sinks: Vec<PinRef>,
}

impl Net {
    /// The net's (unique) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pin driving the net.
    pub fn driver(&self) -> PinRef {
        self.driver
    }

    /// The pins the net fans out to.
    pub fn sinks(&self) -> &[PinRef] {
        &self.sinks
    }

    /// Number of sink pins.
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }

    /// Iterates over all pins on the net (driver first).
    pub fn pins(&self) -> impl Iterator<Item = PinRef> + '_ {
        std::iter::once(self.driver).chain(self.sinks.iter().copied())
    }

    /// Number of distinct cells touched by the net.
    pub fn num_cells(&self) -> usize {
        let mut cells: Vec<CellId> = self.pins().map(|p| p.cell).collect();
        cells.sort_unstable();
        cells.dedup();
        cells.len()
    }
}

/// Errors raised while building a [`Netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildNetlistError {
    /// Two cells share a name.
    DuplicateCellName(String),
    /// Two nets share a name.
    DuplicateNetName(String),
    /// The named driver cell has no output pin (it is a primary output).
    DriverHasNoOutput(String),
    /// The driver's output already drives another net.
    DriverAlreadyConnected(String),
    /// A sink pin index is out of range for its cell.
    PinOutOfRange {
        /// The offending cell's name.
        cell: String,
        /// The requested pin index.
        pin: PinIndex,
    },
    /// The referenced sink pin is an output pin, not an input.
    SinkIsOutput {
        /// The offending cell's name.
        cell: String,
    },
    /// The sink pin is already connected to another net.
    SinkAlreadyConnected {
        /// The offending cell's name.
        cell: String,
        /// The pin index.
        pin: PinIndex,
    },
    /// A net was declared with no sinks.
    EmptyNet(String),
    /// After all connections, an input pin remains unconnected.
    UnconnectedInput {
        /// The offending cell's name.
        cell: String,
        /// The unconnected pin index.
        pin: PinIndex,
    },
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::DuplicateCellName(n) => write!(f, "duplicate cell name `{n}`"),
            BuildNetlistError::DuplicateNetName(n) => write!(f, "duplicate net name `{n}`"),
            BuildNetlistError::DriverHasNoOutput(n) => {
                write!(f, "cell `{n}` is a primary output and cannot drive a net")
            }
            BuildNetlistError::DriverAlreadyConnected(n) => {
                write!(f, "output of cell `{n}` already drives a net")
            }
            BuildNetlistError::PinOutOfRange { cell, pin } => {
                write!(f, "pin {pin} is out of range for cell `{cell}`")
            }
            BuildNetlistError::SinkIsOutput { cell } => {
                write!(f, "sink pin on cell `{cell}` is its output pin")
            }
            BuildNetlistError::SinkAlreadyConnected { cell, pin } => {
                write!(f, "pin {pin} of cell `{cell}` is already connected")
            }
            BuildNetlistError::EmptyNet(n) => write!(f, "net `{n}` has no sinks"),
            BuildNetlistError::UnconnectedInput { cell, pin } => {
                write!(f, "input pin {pin} of cell `{cell}` is unconnected")
            }
        }
    }
}

impl Error for BuildNetlistError {}

/// Builder for [`Netlist`]: add cells, then connect them with nets.
#[derive(Clone, Debug, Default)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pin_nets: Vec<Vec<Option<NetId>>>,
    cell_names: BTreeMap<String, CellId>,
    net_names: BTreeMap<String, NetId>,
    error: Option<BuildNetlistError>,
}

impl NetlistBuilder {
    /// Adds a cell and returns its id.
    ///
    /// A duplicate name is recorded as a deferred error reported by
    /// [`NetlistBuilder::build`]; the cell is still created so that id
    /// arithmetic in caller loops stays simple.
    pub fn add_cell(&mut self, name: impl Into<String>, kind: CellKind) -> CellId {
        let name = name.into();
        let id = CellId::new(self.cells.len());
        if self.cell_names.insert(name.clone(), id).is_some() && self.error.is_none() {
            self.error = Some(BuildNetlistError::DuplicateCellName(name.clone()));
        }
        self.pin_nets.push(vec![None; kind.num_pins()]);
        self.cells.push(Cell::new(name, kind));
        id
    }

    /// Connects the output of `driver` to the given `(cell, pin)` sinks as a
    /// new net.
    ///
    /// Pin indices are absolute: for signal-driving cells, inputs are pins
    /// `1..`; for primary-output cells the single input is pin `0`.
    ///
    /// # Errors
    ///
    /// Returns an error if the driver cannot drive, any pin reference is
    /// invalid or already connected, or the sink list is empty.
    pub fn connect(
        &mut self,
        name: impl Into<String>,
        driver: CellId,
        sinks: impl IntoIterator<Item = (CellId, PinIndex)>,
    ) -> Result<NetId, BuildNetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(BuildNetlistError::DuplicateNetName(name));
        }
        let driver_cell = &self.cells[driver.index()];
        if !driver_cell.kind().has_output() {
            return Err(BuildNetlistError::DriverHasNoOutput(
                driver_cell.name().to_owned(),
            ));
        }
        if self.pin_nets[driver.index()][0].is_some() {
            return Err(BuildNetlistError::DriverAlreadyConnected(
                driver_cell.name().to_owned(),
            ));
        }

        let mut sink_refs = Vec::new();
        for (cell, pin) in sinks {
            let c = &self.cells[cell.index()];
            let kind = c.kind();
            if (pin as usize) >= kind.num_pins() {
                return Err(BuildNetlistError::PinOutOfRange {
                    cell: c.name().to_owned(),
                    pin,
                });
            }
            let is_input_pin = if kind.has_output() {
                pin >= 1
            } else {
                pin == 0
            };
            if !is_input_pin {
                return Err(BuildNetlistError::SinkIsOutput {
                    cell: c.name().to_owned(),
                });
            }
            if self.pin_nets[cell.index()][pin as usize].is_some()
                || sink_refs.contains(&PinRef::new(cell, pin))
            {
                return Err(BuildNetlistError::SinkAlreadyConnected {
                    cell: c.name().to_owned(),
                    pin,
                });
            }
            sink_refs.push(PinRef::new(cell, pin));
        }
        if sink_refs.is_empty() {
            return Err(BuildNetlistError::EmptyNet(name));
        }

        let id = NetId::new(self.nets.len());
        self.pin_nets[driver.index()][0] = Some(id);
        for s in &sink_refs {
            self.pin_nets[s.cell.index()][s.pin as usize] = Some(id);
        }
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: PinRef::new(driver, 0),
            sinks: sink_refs,
        });
        Ok(id)
    }

    /// Next unconnected input pin of `cell`, if any. Useful for generators
    /// that fill fan-in incrementally.
    pub fn free_input_pin(&self, cell: CellId) -> Option<PinIndex> {
        let kind = self.cells[cell.index()].kind();
        let first_input = usize::from(kind.has_output());
        (first_input..kind.num_pins())
            .find(|&p| self.pin_nets[cell.index()][p].is_none())
            .map(|p| p as PinIndex)
    }

    /// Whether the output pin of `cell` already drives a net.
    pub fn output_connected(&self, cell: CellId) -> bool {
        self.cells[cell.index()].kind().has_output() && self.pin_nets[cell.index()][0].is_some()
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Kind of an already-added cell.
    pub fn cell_kind(&self, cell: CellId) -> CellKind {
        self.cells[cell.index()].kind()
    }

    /// Validates the design and produces the immutable [`Netlist`].
    ///
    /// # Errors
    ///
    /// Reports any deferred duplicate-name error, or an
    /// [`BuildNetlistError::UnconnectedInput`] if an input pin was left
    /// dangling.
    pub fn build(self) -> Result<Netlist, BuildNetlistError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        for (ci, cell) in self.cells.iter().enumerate() {
            let kind = cell.kind();
            let first_input = usize::from(kind.has_output());
            for p in first_input..kind.num_pins() {
                if self.pin_nets[ci][p].is_none() {
                    return Err(BuildNetlistError::UnconnectedInput {
                        cell: cell.name().to_owned(),
                        pin: p as PinIndex,
                    });
                }
            }
        }
        Ok(Netlist {
            cells: self.cells,
            nets: self.nets,
            pin_nets: self.pin_nets,
            cell_names: self.cell_names,
            net_names: self.net_names,
        })
    }
}

/// An immutable technology-mapped design: cells plus the nets connecting
/// them.
#[derive(Clone, Debug)]
pub struct Netlist {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pin_nets: Vec<Vec<Option<NetId>>>,
    cell_names: BTreeMap<String, CellId>,
    net_names: BTreeMap<String, NetId>,
}

impl Netlist {
    /// Starts building a netlist.
    pub fn builder() -> NetlistBuilder {
        NetlistBuilder::default()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Finds a cell by name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Finds a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::new(i), c))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::new(i), n))
    }

    /// The net connected to `pin`, if any (an unconnected pin can only be a
    /// primary input's unused output).
    pub fn net_of(&self, pin: PinRef) -> Option<NetId> {
        self.pin_nets[pin.cell.index()][pin.pin as usize]
    }

    /// The net driven by `cell`'s output, if any.
    pub fn driven_net(&self, cell: CellId) -> Option<NetId> {
        if self.cells[cell.index()].kind().has_output() {
            self.pin_nets[cell.index()][0]
        } else {
            None
        }
    }

    /// The distinct nets touching any pin of `cell`, in ascending id order.
    pub fn nets_of_cell(&self, cell: CellId) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self.pin_nets[cell.index()]
            .iter()
            .flatten()
            .copied()
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// Summary statistics of the design.
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind = [0usize; 4];
        for c in &self.cells {
            let k = match c.kind() {
                CellKind::Input => 0,
                CellKind::Output => 1,
                CellKind::Comb { .. } => 2,
                CellKind::Seq => 3,
            };
            by_kind[k] += 1;
        }
        let total_fanout: usize = self.nets.iter().map(Net::fanout).sum();
        NetlistStats {
            num_cells: self.cells.len(),
            num_inputs: by_kind[0],
            num_outputs: by_kind[1],
            num_comb: by_kind[2],
            num_seq: by_kind[3],
            num_nets: self.nets.len(),
            num_pins: total_fanout + self.nets.len(),
            avg_fanout: if self.nets.is_empty() {
                0.0
            } else {
                total_fanout as f64 / self.nets.len() as f64
            },
            max_fanout: self.nets.iter().map(Net::fanout).max().unwrap_or(0),
        }
    }
}

/// Aggregate statistics of a [`Netlist`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetlistStats {
    /// Total cells.
    pub num_cells: usize,
    /// Primary-input cells.
    pub num_inputs: usize,
    /// Primary-output cells.
    pub num_outputs: usize,
    /// Combinational cells.
    pub num_comb: usize,
    /// Sequential cells.
    pub num_seq: usize,
    /// Nets.
    pub num_nets: usize,
    /// Connected pins (drivers plus sinks).
    pub num_pins: usize,
    /// Mean sinks per net.
    pub avg_fanout: f64,
    /// Largest sink count of any net.
    pub max_fanout: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let ff = b.add_cell("ff", CellKind::Seq);
        let g = b.add_cell("g", CellKind::comb(2));
        let q = b.add_cell("q", CellKind::Output);
        b.connect("na", a, [(g, 1)]).unwrap();
        b.connect("nff", ff, [(g, 2)]).unwrap();
        b.connect("ng", g, [(q, 0), (ff, 1)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let nl = tiny();
        assert_eq!(nl.num_cells(), 4);
        assert_eq!(nl.num_nets(), 3);
        let g = nl.cell_by_name("g").unwrap();
        assert_eq!(nl.cell(g).kind(), CellKind::comb(2));
        let ng = nl.net_by_name("ng").unwrap();
        assert_eq!(nl.net(ng).fanout(), 2);
        assert_eq!(nl.net(ng).driver().cell, g);
        assert_eq!(nl.driven_net(g), Some(ng));
        assert_eq!(nl.net_of(PinRef::new(g, 1)), nl.net_by_name("na"));
    }

    #[test]
    fn nets_of_cell_are_distinct_and_sorted() {
        let nl = tiny();
        let g = nl.cell_by_name("g").unwrap();
        let nets = nl.nets_of_cell(g);
        assert_eq!(nets.len(), 3);
        assert!(nets.windows(2).all(|w| w[0] < w[1]));
        let ff = nl.cell_by_name("ff").unwrap();
        assert_eq!(nl.nets_of_cell(ff).len(), 2);
    }

    #[test]
    fn stats_count_kinds_and_fanout() {
        let s = tiny().stats();
        assert_eq!(s.num_inputs, 1);
        assert_eq!(s.num_outputs, 1);
        assert_eq!(s.num_comb, 1);
        assert_eq!(s.num_seq, 1);
        assert_eq!(s.num_pins, 3 + 4);
        assert_eq!(s.max_fanout, 2);
        assert!((s.avg_fanout - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_double_driving() {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(2));
        b.connect("n1", a, [(g, 1)]).unwrap();
        assert_eq!(
            b.connect("n2", a, [(g, 2)]).unwrap_err(),
            BuildNetlistError::DriverAlreadyConnected("a".into())
        );
    }

    #[test]
    fn rejects_output_cell_as_driver() {
        let mut b = Netlist::builder();
        let q = b.add_cell("q", CellKind::Output);
        let g = b.add_cell("g", CellKind::comb(1));
        assert_eq!(
            b.connect("n", q, [(g, 1)]).unwrap_err(),
            BuildNetlistError::DriverHasNoOutput("q".into())
        );
    }

    #[test]
    fn rejects_bad_sink_pins() {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(2));
        assert!(matches!(
            b.connect("n1", a, [(g, 9)]).unwrap_err(),
            BuildNetlistError::PinOutOfRange { .. }
        ));
        assert!(matches!(
            b.connect("n2", a, [(g, 0)]).unwrap_err(),
            BuildNetlistError::SinkIsOutput { .. }
        ));
        assert!(matches!(
            b.connect("n3", a, [(g, 1), (g, 1)]).unwrap_err(),
            BuildNetlistError::SinkAlreadyConnected { .. }
        ));
        assert!(matches!(
            b.connect("n4", a, []).unwrap_err(),
            BuildNetlistError::EmptyNet(_)
        ));
    }

    #[test]
    fn rejects_unconnected_inputs_at_build() {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(2));
        b.connect("n1", a, [(g, 1)]).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildNetlistError::UnconnectedInput { pin: 2, .. }
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = Netlist::builder();
        b.add_cell("x", CellKind::Input);
        b.add_cell("x", CellKind::Input);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildNetlistError::DuplicateCellName(_)
        ));

        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let c = b.add_cell("c", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(2));
        b.connect("n", a, [(g, 1)]).unwrap();
        assert!(matches!(
            b.connect("n", c, [(g, 2)]).unwrap_err(),
            BuildNetlistError::DuplicateNetName(_)
        ));
    }

    #[test]
    fn free_input_pin_walks_the_inputs() {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(3));
        assert_eq!(b.free_input_pin(g), Some(1));
        b.connect("n1", a, [(g, 1)]).unwrap();
        assert_eq!(b.free_input_pin(g), Some(2));
        assert_eq!(b.free_input_pin(a), None);
        assert!(!b.output_connected(g));
        assert!(b.output_connected(a));
    }
}
