//! Native text format for netlists.
//!
//! A minimal, line-oriented exchange format:
//!
//! ```text
//! # comment
//! .cell <name> input|output|seq|comb<k>
//! .net  <name> <driver-cell> <sink-cell>:<pin> [<sink-cell>:<pin> ...]
//! ```
//!
//! Sink pin indices are absolute (see [`crate::PinRef`]). The writer
//! ([`write_netlist`]) produces exactly this format, and
//! `parse_netlist(&write_netlist(&nl))` round-trips any netlist.

use std::error::Error;
use std::fmt;

use crate::cell::{CellKind, MAX_FANIN};
use crate::netlist::{BuildNetlistError, Netlist};

/// Errors raised by [`parse_netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseNetlistError {
    /// A line had an unknown directive or too few fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A `.net` line referenced an undeclared cell.
    UnknownCell {
        /// 1-based line number.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// The connectivity was structurally invalid.
    Build(BuildNetlistError),
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseNetlistError::UnknownCell { line, name } => {
                write!(f, "line {line}: unknown cell `{name}`")
            }
            ParseNetlistError::Build(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseNetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseNetlistError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildNetlistError> for ParseNetlistError {
    fn from(e: BuildNetlistError) -> Self {
        ParseNetlistError::Build(e)
    }
}

fn parse_kind(s: &str, line: usize) -> Result<CellKind, ParseNetlistError> {
    match s {
        "input" => Ok(CellKind::Input),
        "output" => Ok(CellKind::Output),
        "seq" => Ok(CellKind::Seq),
        _ => {
            if let Some(k) = s.strip_prefix("comb") {
                let inputs: usize = k.parse().map_err(|_| ParseNetlistError::Malformed {
                    line,
                    reason: format!("bad comb fan-in `{k}`"),
                })?;
                if !(1..=MAX_FANIN).contains(&inputs) {
                    return Err(ParseNetlistError::Malformed {
                        line,
                        reason: format!("comb fan-in {inputs} out of range 1..={MAX_FANIN}"),
                    });
                }
                Ok(CellKind::comb(inputs))
            } else {
                Err(ParseNetlistError::Malformed {
                    line,
                    reason: format!("unknown cell kind `{s}`"),
                })
            }
        }
    }
}

/// Parses the native netlist format.
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] describing the first offending line, or a
/// wrapped [`BuildNetlistError`] if the file parses but the design is
/// structurally invalid (dangling inputs, double-driven pins, …).
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    // (line number, net name, driver cell, sinks as (cell, pin)).
    type PendingNet = (usize, String, String, Vec<(String, u8)>);
    let mut b = Netlist::builder();
    let mut pending_nets: Vec<PendingNet> = Vec::new();
    // Cell name -> id of its first declaration. Nets may be declared before
    // the cells they reference, so connectivity is resolved after the scan.
    let mut names: std::collections::BTreeMap<String, crate::CellId> =
        std::collections::BTreeMap::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some(".cell") => {
                let name = fields.next().ok_or_else(|| ParseNetlistError::Malformed {
                    line: line_no,
                    reason: ".cell needs a name".into(),
                })?;
                let kind_str = fields.next().ok_or_else(|| ParseNetlistError::Malformed {
                    line: line_no,
                    reason: ".cell needs a kind".into(),
                })?;
                let kind = parse_kind(kind_str, line_no)?;
                let id = b.add_cell(name, kind);
                names.entry(name.to_owned()).or_insert(id);
            }
            Some(".net") => {
                let name = fields.next().ok_or_else(|| ParseNetlistError::Malformed {
                    line: line_no,
                    reason: ".net needs a name".into(),
                })?;
                let driver = fields.next().ok_or_else(|| ParseNetlistError::Malformed {
                    line: line_no,
                    reason: ".net needs a driver".into(),
                })?;
                let mut sinks = Vec::new();
                for f in fields {
                    let (cell, pin) =
                        f.split_once(':')
                            .ok_or_else(|| ParseNetlistError::Malformed {
                                line: line_no,
                                reason: format!("sink `{f}` is not <cell>:<pin>"),
                            })?;
                    let pin: u8 = pin.parse().map_err(|_| ParseNetlistError::Malformed {
                        line: line_no,
                        reason: format!("bad pin index in `{f}`"),
                    })?;
                    sinks.push((cell.to_owned(), pin));
                }
                pending_nets.push((line_no, name.to_owned(), driver.to_owned(), sinks));
            }
            Some(other) => {
                return Err(ParseNetlistError::Malformed {
                    line: line_no,
                    reason: format!("unknown directive `{other}`"),
                })
            }
            None => unreachable!(),
        }
    }

    for (line, name, driver, sinks) in pending_nets {
        let d = *names
            .get(&driver)
            .ok_or_else(|| ParseNetlistError::UnknownCell {
                line,
                name: driver.clone(),
            })?;
        let mut sink_refs = Vec::with_capacity(sinks.len());
        for (cell, pin) in sinks {
            let c = *names
                .get(&cell)
                .ok_or_else(|| ParseNetlistError::UnknownCell {
                    line,
                    name: cell.clone(),
                })?;
            sink_refs.push((c, pin));
        }
        b.connect(name, d, sink_refs)?;
    }

    Ok(b.build()?)
}

/// Serializes a netlist in the native format parsed by [`parse_netlist`].
pub fn write_netlist(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (_, cell) in netlist.cells() {
        let _ = writeln!(out, ".cell {} {}", cell.name(), cell.kind());
    }
    for (_, net) in netlist.nets() {
        let _ = write!(
            out,
            ".net {} {}",
            net.name(),
            netlist.cell(net.driver().cell).name()
        );
        for s in net.sinks() {
            let _ = write!(out, " {}:{}", netlist.cell(s.cell).name(), s.pin);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny design
.cell a input
.cell g comb2
.cell ff seq
.cell q output

.net na a g:1
.net nf ff g:2
.net ng g q:0 ff:1
";

    #[test]
    fn parses_sample() {
        let nl = parse_netlist(SAMPLE).unwrap();
        assert_eq!(nl.num_cells(), 4);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(
            nl.cell(nl.cell_by_name("g").unwrap()).kind(),
            CellKind::comb(2)
        );
    }

    #[test]
    fn round_trips() {
        let nl = parse_netlist(SAMPLE).unwrap();
        let text = write_netlist(&nl);
        let nl2 = parse_netlist(&text).unwrap();
        assert_eq!(nl.num_cells(), nl2.num_cells());
        assert_eq!(nl.num_nets(), nl2.num_nets());
        for (id, net) in nl.nets() {
            let other = nl2.net_by_name(net.name()).unwrap();
            assert_eq!(nl2.net(other).fanout(), net.fanout());
            let _ = id;
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let nl = parse_netlist("# only a comment\n\n.cell a input # trailing\n").unwrap();
        assert_eq!(nl.num_cells(), 1);
    }

    #[test]
    fn reports_unknown_directive_with_line() {
        let err = parse_netlist(".cell a input\n.wire x\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::Malformed { line: 2, .. }));
    }

    #[test]
    fn reports_unknown_cell() {
        let err = parse_netlist(".cell a input\n.net n a ghost:1\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownCell { ref name, .. } if name == "ghost"));
    }

    #[test]
    fn reports_bad_kind_and_bad_pin() {
        assert!(matches!(
            parse_netlist(".cell a blob\n").unwrap_err(),
            ParseNetlistError::Malformed { .. }
        ));
        assert!(matches!(
            parse_netlist(".cell a input\n.cell g comb2\n.net n a g:x\n").unwrap_err(),
            ParseNetlistError::Malformed { .. }
        ));
        assert!(matches!(
            parse_netlist(".cell a comb99\n").unwrap_err(),
            ParseNetlistError::Malformed { .. }
        ));
    }

    #[test]
    fn nets_may_precede_their_cells() {
        let nl = parse_netlist(".net n a g:1\n.cell a input\n.cell g comb1\n").unwrap();
        assert_eq!(nl.num_nets(), 1);
        assert_eq!(nl.net(nl.net_by_name("n").unwrap()).fanout(), 1);
    }

    #[test]
    fn first_declaration_wins_on_duplicate_names() {
        // duplicates are an error at build, reported as such
        let err = parse_netlist(".cell a input\n.cell a output\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::Build(_)));
    }

    #[test]
    fn build_errors_are_wrapped() {
        // dangling input pin on g
        let err = parse_netlist(".cell a input\n.cell g comb2\n.net n a g:1\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::Build(_)));
        assert!(err.source().is_some());
    }
}
