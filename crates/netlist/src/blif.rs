//! Parser for a subset of Berkeley BLIF.
//!
//! Technology-mapped MCNC benchmarks (the paper's s1, cse, ex1, bw, s1a) are
//! distributed in BLIF. This parser accepts the structural core of the
//! format:
//!
//! * `.model`, `.inputs`, `.outputs`, `.end`
//! * `.names <in...> <out>` — mapped to a combinational cell whose fan-in is
//!   the number of input signals; the logic cover rows that follow are
//!   accepted and ignored (layout only needs connectivity);
//! * `.latch <in> <out> [<type> <control>] [<init>]` — mapped to a
//!   sequential cell;
//! * `\` line continuations and `#` comments.
//!
//! Each signal becomes a net; each `.outputs` signal additionally grows a
//! primary-output cell named `po_<signal>`. Signals that are driven but
//! never consumed are dropped (their drivers remain). A `.names` with more
//! inputs than [`MAX_FANIN`] is rejected: the netlist must already be
//! technology-mapped to module-sized cells.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::cell::{CellKind, MAX_FANIN};
use crate::ids::{CellId, PinIndex};
use crate::netlist::{BuildNetlistError, Netlist};

/// Errors raised by [`parse_blif`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseBlifError {
    /// A directive was malformed.
    Malformed {
        /// 1-based (logical) line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A `.names` had more inputs than a logic module provides; the design
    /// is not technology-mapped for this architecture.
    NotMapped {
        /// 1-based line number.
        line: usize,
        /// The output signal of the offending `.names`.
        signal: String,
        /// Its fan-in.
        fanin: usize,
    },
    /// Two constructs drive the same signal.
    MultipleDrivers {
        /// The doubly-driven signal.
        signal: String,
    },
    /// A signal is consumed but never driven.
    UndrivenSignal {
        /// The undriven signal.
        signal: String,
    },
    /// The connectivity was structurally invalid.
    Build(BuildNetlistError),
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlifError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            ParseBlifError::NotMapped {
                line,
                signal,
                fanin,
            } => write!(
                f,
                "line {line}: `.names {signal}` has fan-in {fanin}, exceeding the module limit of {MAX_FANIN}; map the design first"
            ),
            ParseBlifError::MultipleDrivers { signal } => {
                write!(f, "signal `{signal}` has multiple drivers")
            }
            ParseBlifError::UndrivenSignal { signal } => {
                write!(f, "signal `{signal}` is consumed but never driven")
            }
            ParseBlifError::Build(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseBlifError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseBlifError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildNetlistError> for ParseBlifError {
    fn from(e: BuildNetlistError) -> Self {
        ParseBlifError::Build(e)
    }
}

/// Joins `\`-continued lines and strips comments, yielding
/// `(first_line_number, logical_line)` pairs.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut continuing = false;
    for (i, raw) in text.lines().enumerate() {
        let no_comment = raw.split('#').next().unwrap_or("");
        let (content, continues) = match no_comment.trim_end().strip_suffix('\\') {
            Some(stripped) => (stripped.trim(), true),
            None => (no_comment.trim(), false),
        };
        if continuing {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(content);
            }
        } else if !content.is_empty() || continues {
            out.push((i + 1, content.to_owned()));
        }
        continuing = continues;
    }
    out.retain(|(_, l)| !l.trim().is_empty());
    out
}

/// Parses a technology-mapped BLIF model into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseBlifError`] for malformed directives, unmapped logic,
/// multiply-driven or undriven signals, or structurally invalid
/// connectivity.
pub fn parse_blif(text: &str) -> Result<Netlist, ParseBlifError> {
    struct Driver {
        kind: CellKind,
        inputs: Vec<String>,
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    // signal -> its driving construct
    let mut drivers: BTreeMap<String, Driver> = BTreeMap::new();
    let mut driver_order: Vec<String> = Vec::new();

    for (line, text) in logical_lines(text) {
        let mut f = text.split_whitespace();
        match f.next() {
            Some(".model") | Some(".end") | Some(".clock") => {}
            Some(".inputs") => inputs.extend(f.map(str::to_owned)),
            Some(".outputs") => outputs.extend(f.map(str::to_owned)),
            Some(".names") => {
                let signals: Vec<String> = f.map(str::to_owned).collect();
                let Some((out_sig, in_sigs)) = signals.split_last() else {
                    return Err(ParseBlifError::Malformed {
                        line,
                        reason: ".names needs at least an output signal".into(),
                    });
                };
                if in_sigs.len() > MAX_FANIN {
                    return Err(ParseBlifError::NotMapped {
                        line,
                        signal: out_sig.clone(),
                        fanin: in_sigs.len(),
                    });
                }
                // A 0-input .names is a constant source; model it as a
                // primary-input-like driver.
                let kind = if in_sigs.is_empty() {
                    CellKind::Input
                } else {
                    CellKind::comb(in_sigs.len())
                };
                if drivers
                    .insert(
                        out_sig.clone(),
                        Driver {
                            kind,
                            inputs: in_sigs.to_vec(),
                        },
                    )
                    .is_some()
                {
                    return Err(ParseBlifError::MultipleDrivers {
                        signal: out_sig.clone(),
                    });
                }
                driver_order.push(out_sig.clone());
            }
            Some(".latch") => {
                let args: Vec<&str> = f.collect();
                if args.len() < 2 {
                    return Err(ParseBlifError::Malformed {
                        line,
                        reason: ".latch needs input and output signals".into(),
                    });
                }
                let (in_sig, out_sig) = (args[0], args[1]);
                if drivers
                    .insert(
                        out_sig.to_owned(),
                        Driver {
                            kind: CellKind::Seq,
                            inputs: vec![in_sig.to_owned()],
                        },
                    )
                    .is_some()
                {
                    return Err(ParseBlifError::MultipleDrivers {
                        signal: out_sig.to_owned(),
                    });
                }
                driver_order.push(out_sig.to_owned());
            }
            Some(directive) if directive.starts_with('.') => {
                // Other BLIF extensions (.default_input_arrival, …) are
                // irrelevant to layout; skip them.
            }
            Some(_) => {
                // Cover rows of the preceding .names; connectivity only.
            }
            None => unreachable!(),
        }
    }

    for sig in &inputs {
        if drivers
            .insert(
                sig.clone(),
                Driver {
                    kind: CellKind::Input,
                    inputs: Vec::new(),
                },
            )
            .is_some()
        {
            return Err(ParseBlifError::MultipleDrivers {
                signal: sig.clone(),
            });
        }
        driver_order.push(sig.clone());
    }

    // Every consumed signal must be driven.
    for d in drivers.values() {
        for s in &d.inputs {
            if !drivers.contains_key(s) {
                return Err(ParseBlifError::UndrivenSignal { signal: s.clone() });
            }
        }
    }
    for s in &outputs {
        if !drivers.contains_key(s) {
            return Err(ParseBlifError::UndrivenSignal { signal: s.clone() });
        }
    }

    // Build cells: one per driven signal, plus a primary-output cell per
    // .outputs signal.
    let mut b = Netlist::builder();
    let mut cell_of: BTreeMap<&str, CellId> = BTreeMap::new();
    for sig in &driver_order {
        let id = b.add_cell(sig.clone(), drivers[sig.as_str()].kind);
        cell_of.insert(sig, id);
    }
    let mut po_cells: Vec<(String, CellId)> = Vec::new();
    for sig in &outputs {
        let id = b.add_cell(format!("po_{sig}"), CellKind::Output);
        po_cells.push((sig.clone(), id));
    }

    // Collect sinks per signal. Input pin order: a cell's i-th declared
    // input signal lands on pin i+1.
    let mut sinks: BTreeMap<&str, Vec<(CellId, PinIndex)>> = BTreeMap::new();
    for sig in &driver_order {
        let d = &drivers[sig.as_str()];
        let cell = cell_of[sig.as_str()];
        for (i, in_sig) in d.inputs.iter().enumerate() {
            sinks
                .entry(in_sig.as_str())
                .or_default()
                .push((cell, (i + 1) as PinIndex));
        }
    }
    for (sig, po) in &po_cells {
        sinks.entry(sig.as_str()).or_default().push((*po, 0));
    }

    for sig in &driver_order {
        let Some(consumers) = sinks.get(sig.as_str()) else {
            continue; // dangling output: dropped
        };
        b.connect(
            sig.clone(),
            cell_of[sig.as_str()],
            consumers.iter().copied(),
        )?;
    }

    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# toy FSM
.model toy
.inputs a b
.outputs y
.names a b t1
11 1
.latch t1 s r NIL 0
.names s a \\
 y
10 1
01 1
.end
";

    #[test]
    fn parses_sample_structure() {
        let nl = parse_blif(SAMPLE).unwrap();
        // cells: a, b (inputs), t1 (comb2), s (seq), y (comb2), po_y
        assert_eq!(nl.num_cells(), 6);
        let s = nl.stats();
        assert_eq!(s.num_inputs, 2);
        assert_eq!(s.num_outputs, 1);
        assert_eq!(s.num_comb, 2);
        assert_eq!(s.num_seq, 1);
        // nets: a, b, t1, s, y — all consumed
        assert_eq!(nl.num_nets(), 5);
        assert_eq!(nl.cell(nl.cell_by_name("s").unwrap()).kind(), CellKind::Seq);
    }

    #[test]
    fn continuation_lines_join() {
        let nl = parse_blif(SAMPLE).unwrap();
        let y = nl.cell_by_name("y").unwrap();
        assert_eq!(nl.cell(y).kind(), CellKind::comb(2));
    }

    #[test]
    fn dangling_driver_is_dropped() {
        let text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a dead\n1 1\n.end\n";
        let nl = parse_blif(text).unwrap();
        assert!(nl.cell_by_name("dead").is_some());
        assert!(nl.net_by_name("dead").is_none());
    }

    #[test]
    fn rejects_unmapped_fanin() {
        let ins: Vec<String> = (0..=MAX_FANIN).map(|i| format!("i{i}")).collect();
        let text = format!(
            ".model m\n.inputs {}\n.outputs y\n.names {} y\n.end\n",
            ins.join(" "),
            ins.join(" ")
        );
        assert!(matches!(
            parse_blif(&text).unwrap_err(),
            ParseBlifError::NotMapped { .. }
        ));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n";
        assert!(matches!(
            parse_blif(text).unwrap_err(),
            ParseBlifError::MultipleDrivers { .. }
        ));
    }

    #[test]
    fn rejects_undriven_signal() {
        let text = ".model m\n.outputs y\n.names ghost y\n1 1\n.end\n";
        assert!(matches!(
            parse_blif(text).unwrap_err(),
            ParseBlifError::UndrivenSignal { .. }
        ));
    }

    #[test]
    fn constant_names_become_sources() {
        let text = ".model m\n.outputs y\n.names y\n1\n.end\n";
        let nl = parse_blif(text).unwrap();
        assert_eq!(
            nl.cell(nl.cell_by_name("y").unwrap()).kind(),
            CellKind::Input
        );
    }

    #[test]
    fn unknown_directives_are_skipped() {
        let text =
            ".model m\n.inputs a\n.outputs y\n.default_input_arrival 0 0\n.names a y\n1 1\n.end\n";
        assert!(parse_blif(text).is_ok());
    }
}
