//! Netlists for row-based FPGA layout.
//!
//! After logic synthesis and technology mapping (paper Figure 1), a design is
//! a netlist of FPGA logic-module-sized cells: primary inputs and outputs
//! ("i" blocks), combinational logic blocks ("c" blocks) and sequential
//! blocks. This crate provides:
//!
//! * the [`Netlist`] data structure — [`Cell`]s, [`Net`]s and the pin
//!   connectivity between them, built through [`NetlistBuilder`];
//! * **pinmaps** ([`Pinmap`]) — the palette of legal assignments of a cell's
//!   logical pins to physical module ports (top- or bottom-facing), one of
//!   the two move classes of the paper's annealer (§3.2);
//! * **levelization** ([`Levels`]) — the one-time topological levelling used
//!   by incremental worst-case delay calculation (§3.5);
//! * parsers for a simple native text format ([`parse_netlist`]) and a
//!   subset of Berkeley BLIF ([`parse_blif`]);
//! * a seeded synthetic benchmark [`generate`]or with presets matching the
//!   cell counts of the MCNC designs evaluated in the paper.
//!
//! ```
//! use rowfpga_netlist::{CellKind, Netlist};
//!
//! # fn main() -> Result<(), rowfpga_netlist::BuildNetlistError> {
//! let mut b = Netlist::builder();
//! let a = b.add_cell("a", CellKind::Input);
//! let g = b.add_cell("g", CellKind::comb(2));
//! let q = b.add_cell("q", CellKind::Output);
//! b.connect("n1", a, [(g, 1), (g, 2)])?;
//! b.connect("n2", g, [(q, 0)])?;
//! let netlist = b.build()?;
//! assert_eq!(netlist.num_cells(), 3);
//! assert_eq!(netlist.num_nets(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blif;
mod cell;
mod generate;
mod ids;
mod levels;
mod netlist;
mod parser;
mod pinmap;

pub use blif::{parse_blif, ParseBlifError};
pub use cell::{Cell, CellKind, MAX_FANIN};
pub use generate::{generate, paper_preset, GenerateConfig, PaperBenchmark};
pub use ids::{CellId, NetId, PinIndex, PinRef};
pub use levels::{CombLoopError, Levels};
pub use netlist::{BuildNetlistError, Net, Netlist, NetlistBuilder, NetlistStats};
pub use parser::{parse_netlist, write_netlist, ParseNetlistError};
pub use pinmap::{pinmap_palette, Pinmap, PortSide};
