//! Levelization of a netlist for ordered delay propagation.
//!
//! Critical paths are bounded by primary inputs, primary outputs and
//! sequential blocks (paper §3.5). Boundary cells have level 0; every other
//! (combinational) cell's level is one more than the maximum level of the
//! cells driving its inputs. Levels depend only on connectivity, never on
//! placement, so they are computed once and reused by every incremental
//! delay update.

use std::error::Error;
use std::fmt;

use crate::ids::{CellId, NetId};
use crate::netlist::Netlist;

/// Error: the design contains a purely combinational cycle (a loop not
/// broken by any sequential cell), which makes levelization — and static
/// timing — undefined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CombLoopError {
    /// Cells involved in (or downstream of) the combinational loop.
    pub cells: Vec<CellId>,
}

impl fmt::Display for CombLoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "combinational loop involving {} cell(s)",
            self.cells.len()
        )
    }
}

impl Error for CombLoopError {}

/// The level assignment of every cell plus a propagation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Levels {
    levels: Vec<u32>,
    order: Vec<CellId>,
    max_level: u32,
}

impl Levels {
    /// Computes levels for a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if the combinational cells contain a cycle.
    pub fn compute(netlist: &Netlist) -> Result<Levels, CombLoopError> {
        let n = netlist.num_cells();
        let mut levels = vec![0u32; n];
        // Count, for each combinational cell, how many of its input drivers
        // are combinational cells (only those constrain the ordering; the
        // boundary cells are fixed at level 0).
        let mut pending = vec![0u32; n];
        let mut is_comb = vec![false; n];
        for (id, cell) in netlist.cells() {
            is_comb[id.index()] = !cell.kind().is_boundary();
        }
        for (_, net) in netlist.nets() {
            let d = net.driver().cell;
            if !is_comb[d.index()] {
                continue;
            }
            for s in net.sinks() {
                if is_comb[s.cell.index()] {
                    pending[s.cell.index()] += 1;
                }
            }
        }

        let mut ready: Vec<CellId> = (0..n)
            .filter(|&i| is_comb[i] && pending[i] == 0)
            .map(CellId::new)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut processed = 0usize;
        let total_comb = is_comb.iter().filter(|b| **b).count();

        while let Some(cell) = ready.pop() {
            // Level: one more than the max level over all drivers of this
            // cell's inputs (boundary drivers sit at level 0).
            let mut lvl = 0u32;
            let nets = netlist.nets_of_cell(cell);
            for nid in &nets {
                let net = netlist.net(*nid);
                if net.driver().cell != cell {
                    lvl = lvl.max(levels[net.driver().cell.index()]);
                }
            }
            levels[cell.index()] = lvl + 1;
            order.push(cell);
            processed += 1;

            if let Some(driven) = netlist.driven_net(cell) {
                for s in netlist.net(driven).sinks() {
                    if is_comb[s.cell.index()] {
                        pending[s.cell.index()] -= 1;
                        if pending[s.cell.index()] == 0 {
                            ready.push(s.cell);
                        }
                    }
                }
            }
        }

        if processed != total_comb {
            let cells = (0..n)
                .filter(|&i| is_comb[i] && pending[i] > 0)
                .map(CellId::new)
                .collect();
            return Err(CombLoopError { cells });
        }

        let max_level = levels.iter().copied().max().unwrap_or(0);
        Ok(Levels {
            levels,
            order,
            max_level,
        })
    }

    /// The level of a cell (0 for boundary cells).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn level(&self, cell: CellId) -> u32 {
        self.levels[cell.index()]
    }

    /// Combinational cells in a valid forward-propagation order
    /// (non-decreasing in level along every net).
    pub fn order(&self) -> &[CellId] {
        &self.order
    }

    /// The deepest level in the design (its logic depth).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Checks that `net`'s sinks never precede its driver in level order —
    /// a structural invariant used by the incremental timing engine.
    pub fn net_is_forward(&self, netlist: &Netlist, net: NetId) -> bool {
        let n = netlist.net(net);
        let d = n.driver().cell;
        if netlist.cell(d).kind().is_boundary() {
            return true;
        }
        n.sinks().iter().all(|s| {
            netlist.cell(s.cell).kind().is_boundary()
                || self.levels[s.cell.index()] > self.levels[d.index()]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn chain(depth: usize) -> Netlist {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let mut prev = a;
        for i in 0..depth {
            let g = b.add_cell(format!("g{i}"), CellKind::comb(1));
            b.connect(format!("n{i}"), prev, [(g, 1)]).unwrap();
            prev = g;
        }
        let q = b.add_cell("q", CellKind::Output);
        b.connect("nq", prev, [(q, 0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_levels_increase_by_one() {
        let nl = chain(4);
        let lv = Levels::compute(&nl).unwrap();
        assert_eq!(lv.max_level(), 4);
        for i in 0..4 {
            let c = nl.cell_by_name(&format!("g{i}")).unwrap();
            assert_eq!(lv.level(c), i as u32 + 1);
        }
        assert_eq!(lv.level(nl.cell_by_name("a").unwrap()), 0);
        assert_eq!(lv.level(nl.cell_by_name("q").unwrap()), 0);
    }

    #[test]
    fn order_respects_levels() {
        let nl = chain(6);
        let lv = Levels::compute(&nl).unwrap();
        assert_eq!(lv.order().len(), 6);
        for w in lv.order().windows(2) {
            assert!(lv.level(w[0]) <= lv.level(w[1]) + 5); // order is one valid topo order
        }
        // stronger: every net is forward
        for (nid, _) in nl.nets() {
            assert!(lv.net_is_forward(&nl, nid));
        }
    }

    #[test]
    fn sequential_cells_break_cycles() {
        // g -> ff -> g is legal: the loop passes through a flip-flop.
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(2));
        let ff = b.add_cell("ff", CellKind::Seq);
        b.connect("na", a, [(g, 1)]).unwrap();
        b.connect("ng", g, [(ff, 1)]).unwrap();
        b.connect("nf", ff, [(g, 2)]).unwrap();
        let nl = b.build().unwrap();
        let lv = Levels::compute(&nl).unwrap();
        assert_eq!(lv.level(ff), 0);
        assert_eq!(lv.level(g), 1);
    }

    #[test]
    fn combinational_loop_is_rejected() {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g1 = b.add_cell("g1", CellKind::comb(2));
        let g2 = b.add_cell("g2", CellKind::comb(1));
        b.connect("na", a, [(g1, 1)]).unwrap();
        b.connect("n1", g1, [(g2, 1)]).unwrap();
        b.connect("n2", g2, [(g1, 2)]).unwrap();
        let nl = b.build().unwrap();
        let err = Levels::compute(&nl).unwrap_err();
        assert_eq!(err.cells.len(), 2);
    }

    #[test]
    fn reconvergent_fanout_takes_max() {
        // a -> g1 -> g3; a -> g3 directly: level(g3) = 2.
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g1 = b.add_cell("g1", CellKind::comb(1));
        let g3 = b.add_cell("g3", CellKind::comb(2));
        let q = b.add_cell("q", CellKind::Output);
        b.connect("na", a, [(g1, 1), (g3, 1)]).unwrap();
        b.connect("n1", g1, [(g3, 2)]).unwrap();
        b.connect("n3", g3, [(q, 0)]).unwrap();
        let nl = b.build().unwrap();
        let lv = Levels::compute(&nl).unwrap();
        assert_eq!(lv.level(g3), 2);
    }
}
