//! Cells: the technology-mapped logic blocks of a design.

use std::fmt;

/// Maximum number of logical inputs a combinational module accepts.
///
/// Row-based modules (e.g. the Actel ACT "C" module) expose a fixed set of
/// physical input ports split between the top and bottom module edges; we
/// model four ports per edge, so a mapped cell may use at most eight inputs.
pub const MAX_FANIN: usize = 8;

/// The kind of a technology-mapped cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Primary input (an "i" block driving one signal into the fabric).
    Input,
    /// Primary output (an "i" block consuming one signal).
    Output,
    /// Combinational logic module with `inputs` logical input pins.
    Comb {
        /// Number of logical input pins (1..=[`MAX_FANIN`]).
        inputs: u8,
    },
    /// Sequential module (flip-flop): one data input, one output. The clock
    /// is distributed on a dedicated network and not modelled as a pin.
    Seq,
}

impl CellKind {
    /// Convenience constructor for a combinational cell.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero or exceeds [`MAX_FANIN`].
    pub fn comb(inputs: usize) -> Self {
        assert!(
            (1..=MAX_FANIN).contains(&inputs),
            "combinational cell must have 1..={MAX_FANIN} inputs, got {inputs}"
        );
        CellKind::Comb {
            inputs: inputs as u8,
        }
    }

    /// Number of input pins of this kind of cell.
    pub fn num_inputs(&self) -> usize {
        match self {
            CellKind::Input => 0,
            CellKind::Output => 1,
            CellKind::Comb { inputs } => *inputs as usize,
            CellKind::Seq => 1,
        }
    }

    /// Whether this kind of cell drives a signal (has an output pin).
    pub fn has_output(&self) -> bool {
        !matches!(self, CellKind::Output)
    }

    /// Total number of pins (inputs plus output, if any).
    pub fn num_pins(&self) -> usize {
        self.num_inputs() + usize::from(self.has_output())
    }

    /// Whether cells of this kind must be placed on I/O sites.
    pub fn is_io(&self) -> bool {
        matches!(self, CellKind::Input | CellKind::Output)
    }

    /// Whether this kind is a path boundary for timing: primary inputs,
    /// primary outputs and sequential cells bound the critical paths
    /// (paper §3.5).
    pub fn is_boundary(&self) -> bool {
        matches!(self, CellKind::Input | CellKind::Output | CellKind::Seq)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Input => write!(f, "input"),
            CellKind::Output => write!(f, "output"),
            CellKind::Comb { inputs } => write!(f, "comb{inputs}"),
            CellKind::Seq => write!(f, "seq"),
        }
    }
}

/// A technology-mapped cell of the design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    name: String,
    kind: CellKind,
}

impl Cell {
    pub(crate) fn new(name: impl Into<String>, kind: CellKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// The cell's (unique) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts_per_kind() {
        assert_eq!(CellKind::Input.num_pins(), 1);
        assert_eq!(CellKind::Output.num_pins(), 1);
        assert_eq!(CellKind::comb(3).num_pins(), 4);
        assert_eq!(CellKind::Seq.num_pins(), 2);
        assert_eq!(CellKind::Seq.num_inputs(), 1);
    }

    #[test]
    fn io_and_boundary_classification() {
        assert!(CellKind::Input.is_io());
        assert!(CellKind::Output.is_io());
        assert!(!CellKind::Seq.is_io());
        assert!(!CellKind::comb(2).is_io());

        assert!(CellKind::Input.is_boundary());
        assert!(CellKind::Output.is_boundary());
        assert!(CellKind::Seq.is_boundary());
        assert!(!CellKind::comb(2).is_boundary());
    }

    #[test]
    fn output_cells_have_no_output_pin() {
        assert!(!CellKind::Output.has_output());
        assert!(CellKind::Input.has_output());
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn comb_fanin_is_bounded() {
        let _ = CellKind::comb(MAX_FANIN + 1);
    }

    #[test]
    fn display_is_parser_friendly() {
        assert_eq!(CellKind::comb(4).to_string(), "comb4");
        assert_eq!(CellKind::Seq.to_string(), "seq");
    }
}
