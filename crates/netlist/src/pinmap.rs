//! Pinmaps: legal assignments of logical pins to physical module ports.
//!
//! Because each logic module is built from programmable lookup structures,
//! the same cell-level function can be realized with many different pin
//! assignments (paper §3.2). The side a pin lands on decides which channel
//! the connection enters — a top-side port connects to the channel above the
//! cell's row, a bottom-side port to the channel below — so pinmap choice
//! shifts routing demand between channels and changes vertical feedthrough
//! needs. The paper's annealer treats pinmap reassignment as one of its two
//! move classes, selecting from a compile-time palette of legal alternatives
//! ([`pinmap_palette`]).

use crate::cell::CellKind;

/// Physical ports available on each edge (top/bottom) of a logic module.
const PORTS_PER_SIDE: usize = 4;

/// Cap on palette size; larger enumerations are subsampled deterministically.
const MAX_PALETTE: usize = 64;

/// Which module edge a physical port faces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortSide {
    /// The port faces the channel above the cell's row.
    Top,
    /// The port faces the channel below the cell's row.
    Bottom,
}

impl PortSide {
    /// The opposite side.
    pub fn flipped(self) -> PortSide {
        match self {
            PortSide::Top => PortSide::Bottom,
            PortSide::Bottom => PortSide::Top,
        }
    }
}

/// One legal assignment of a cell's logical pins to port sides.
///
/// Pin indexing follows [`crate::PinRef`]: for signal-driving cells, pin 0 is
/// the output and pins `1..` are inputs; for primary-output cells, pin 0 is
/// the single input.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Pinmap {
    sides: Vec<PortSide>,
}

impl Pinmap {
    fn new(sides: Vec<PortSide>) -> Self {
        Self { sides }
    }

    /// The side pin `pin` is mapped to.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the cell kind this pinmap was
    /// generated for.
    pub fn pin_side(&self, pin: u8) -> PortSide {
        self.sides[pin as usize]
    }

    /// Number of pins covered by the pinmap.
    pub fn num_pins(&self) -> usize {
        self.sides.len()
    }

    /// Sides of all pins, in pin order.
    pub fn sides(&self) -> &[PortSide] {
        &self.sides
    }
}

/// Generates the palette of legal pinmaps for a cell kind.
///
/// Legality: at most four input pins per module edge; the
/// output pin (where present) may face either edge. I/O cells have a single
/// pin that may face either edge. The palette is deterministic, deduplicated
/// and capped at a fixed size (large fan-in cells enumerate combinatorially
/// many assignments; a deterministic stride subsample keeps move selection
/// cheap without biasing any particular side pattern).
///
/// The palette is never empty.
pub fn pinmap_palette(kind: CellKind) -> Vec<Pinmap> {
    let n_in = kind.num_inputs();
    let has_out = kind.has_output();

    // Enumerate input-side patterns as bitmasks: bit i set = input i on Top.
    let mut input_patterns = Vec::new();
    for mask in 0u32..(1 << n_in) {
        let top = mask.count_ones() as usize;
        let bottom = n_in - top;
        if top <= PORTS_PER_SIDE && bottom <= PORTS_PER_SIDE {
            input_patterns.push(mask);
        }
    }

    let mut palette = Vec::new();
    for &mask in &input_patterns {
        let inputs: Vec<PortSide> = (0..n_in)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    PortSide::Top
                } else {
                    PortSide::Bottom
                }
            })
            .collect();
        if has_out {
            for out in [PortSide::Bottom, PortSide::Top] {
                let mut sides = Vec::with_capacity(1 + n_in);
                sides.push(out);
                sides.extend_from_slice(&inputs);
                palette.push(Pinmap::new(sides));
            }
        } else {
            palette.push(Pinmap::new(inputs.clone()));
        }
    }

    if palette.len() > MAX_PALETTE {
        // Deterministic stride subsample that always keeps the first entry.
        let stride = palette.len().div_ceil(MAX_PALETTE);
        palette = palette.into_iter().step_by(stride).collect();
    }
    debug_assert!(!palette.is_empty());
    palette
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::MAX_FANIN;

    #[test]
    fn io_cells_have_two_pinmaps() {
        // Input: single output pin, either side.
        let p = pinmap_palette(CellKind::Input);
        assert_eq!(p.len(), 2);
        assert_ne!(p[0].pin_side(0), p[1].pin_side(0));
        // Output: single input pin, either side.
        let p = pinmap_palette(CellKind::Output);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn seq_cells_enumerate_output_and_data_sides() {
        let p = pinmap_palette(CellKind::Seq);
        // 2 input patterns × 2 output sides
        assert_eq!(p.len(), 4);
        for pm in &p {
            assert_eq!(pm.num_pins(), 2);
        }
    }

    #[test]
    fn comb2_palette_size() {
        // 4 input patterns × 2 output sides
        assert_eq!(pinmap_palette(CellKind::comb(2)).len(), 8);
    }

    #[test]
    fn max_fanin_palette_respects_port_capacity() {
        let p = pinmap_palette(CellKind::comb(MAX_FANIN));
        assert!(!p.is_empty());
        assert!(p.len() <= 64);
        for pm in &p {
            let top = pm.sides()[1..]
                .iter()
                .filter(|s| **s == PortSide::Top)
                .count();
            let bottom = pm.num_pins() - 1 - top;
            assert!(top <= 4 && bottom <= 4, "port capacity violated: {pm:?}");
        }
    }

    #[test]
    fn palettes_are_deterministic_and_deduplicated() {
        let a = pinmap_palette(CellKind::comb(3));
        let b = pinmap_palette(CellKind::comb(3));
        assert_eq!(a, b);
        let mut seen = std::collections::HashSet::new();
        for pm in &a {
            assert!(seen.insert(pm.clone()), "duplicate pinmap {pm:?}");
        }
    }

    #[test]
    fn flipped_inverts() {
        assert_eq!(PortSide::Top.flipped(), PortSide::Bottom);
        assert_eq!(PortSide::Bottom.flipped(), PortSide::Top);
    }
}
