//! Elmore delay over the RC tree of a physically embedded net.
//!
//! The electrical tree of a routed net follows its embedding exactly: the
//! driver's output resistance feeds (through a cross antifuse) the
//! horizontal segment run of its channel; for a multi-channel net that run
//! taps the vertical segment chain (cross antifuse) at the feedthrough
//! column, whose chained segments (vertical antifuses) tap the other
//! channels' runs; each sink loads its run through a cross antifuse. Every
//! segment contributes wire RC proportional to its length; every antifuse a
//! series resistance and a shunt capacitance.
//!
//! The Elmore delay to a sink is `Σ R_e · C_downstream(e)` over the edges on
//! the root-to-sink path — the first moment of the impulse response, the
//! same quantity an AWE evaluator like RICE [12] refines.

use rowfpga_arch::{Architecture, ChannelId};
use rowfpga_netlist::{NetId, Netlist};
use rowfpga_place::{pin_loc, Placement};
use rowfpga_route::{NetRouteState, RoutingState};

/// A node of the RC tree under construction.
#[derive(Clone, Debug)]
struct Node {
    /// Parent node index (root has none).
    parent: Option<usize>,
    /// Series resistance of the edge from the parent.
    r_edge: f64,
    /// Lumped capacitance at this node.
    cap: f64,
}

/// Reusable buffers for Elmore evaluation. One scratch serves any number of
/// sequential evaluations; in steady state no call allocates.
#[derive(Clone, Debug, Default)]
pub struct ElmoreScratch {
    /// RC tree nodes.
    nodes: Vec<Node>,
    /// Flat storage for per-run and per-chain node indices; each run (and
    /// the chain) occupies a contiguous range.
    idx: Vec<usize>,
    /// `(channel, start-of-run-range in idx)` for sink tap lookup.
    seg_ranges: Vec<(ChannelId, usize)>,
    /// Tree node of each sink, in sink order.
    sink_nodes: Vec<usize>,
    /// Downstream capacitance per node.
    down: Vec<f64>,
    /// Elmore delay per node.
    t: Vec<f64>,
}

fn add_node(nodes: &mut Vec<Node>, parent: Option<usize>, r_edge: f64, cap: f64) -> usize {
    debug_assert!(parent.is_none_or(|p| p < nodes.len()));
    nodes.push(Node {
        parent,
        r_edge,
        cap,
    });
    nodes.len() - 1
}

/// Computes the Elmore delay from the driver to every sink of a *fully
/// embedded* net, in sink order. Returns `None` if the net is not in the
/// [`NetRouteState::Detailed`] state (its tree is not fully known).
pub fn elmore_sink_delays(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
    net: NetId,
) -> Option<Vec<f64>> {
    let mut scratch = ElmoreScratch::default();
    let mut out = Vec::new();
    elmore_sink_delays_into(
        arch,
        netlist,
        placement,
        routing,
        net,
        &mut scratch,
        &mut out,
    )
    .then_some(out)
}

/// [`elmore_sink_delays`] writing into a reusable output buffer with
/// reusable internal scratch — the hot-path form. Returns whether the net
/// was fully embedded; `out` holds the sink delays (in sink order) exactly
/// when it returns true, and is untouched otherwise. A net whose route
/// violates the embedding invariants (a sink channel without a run, a
/// chain that reaches no routed channel) is reported as not embedded
/// rather than aborting the process.
pub fn elmore_sink_delays_into(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
    net: NetId,
    scratch: &mut ElmoreScratch,
    out: &mut Vec<f64>,
) -> bool {
    let route = routing.route(net);
    if route.state() != NetRouteState::Detailed {
        return false;
    }
    let p = arch.delay();
    let Some(driver_pin) = netlist.net(net).pins().next() else {
        return false; // a driverless net has no delay tree
    };
    let driver_loc = pin_loc(arch, netlist, placement, driver_pin);

    scratch.nodes.clear();
    scratch.idx.clear();
    scratch.seg_ranges.clear();
    scratch.sink_nodes.clear();
    let root = add_node(&mut scratch.nodes, None, 0.0, 0.0);

    // 1. The driver's channel run hangs off the driver through its output
    //    resistance and one cross antifuse.
    let driver_chan = driver_loc.channel;
    let Some(driver_run) = route.hsegs_in(driver_chan) else {
        return false; // detailed nets are routed in their driver channel
    };
    // Index of the run segment covering the driver's column.
    let Some(tap) = run_tap_index(arch, driver_run, driver_loc.col.index()) else {
        return false;
    };
    let dr_start = scratch.idx.len();
    scratch.idx.resize(dr_start + driver_run.len(), usize::MAX);
    scratch.idx[dr_start + tap] = add_node(
        &mut scratch.nodes,
        Some(root),
        p.r_driver + p.r_antifuse,
        seg_cap(arch, driver_run[tap], p) + p.c_antifuse,
    );
    grow_run(
        arch,
        p,
        &mut scratch.nodes,
        driver_run,
        &mut scratch.idx[dr_start..dr_start + driver_run.len()],
        tap,
    );
    scratch.seg_ranges.push((driver_chan, dr_start));

    // 2. The vertical chain (if any) hangs off the driver run at the
    //    feedthrough column; the remaining runs hang off the chain.
    if !route.vsegs().is_empty() {
        let Some(vcol) = route.vcol() else {
            return false; // vertical nets carry a feedthrough column
        };
        let Some(driver_tap) = run_tap_index(arch, driver_run, vcol.index()) else {
            return false;
        };
        // Chain node per vertical segment, wired in chain order; the parent
        // of the first chain node is the run segment at the feedthrough.
        // Which chain segment taps the driver channel: the first that
        // reaches it.
        let ch_start = scratch.idx.len();
        scratch
            .idx
            .resize(ch_start + route.vsegs().len(), usize::MAX);
        let Some(start) = route
            .vsegs()
            .iter()
            .position(|v| arch.vseg(*v).reaches(driver_chan))
        else {
            return false; // the chain always reaches the driver channel
        };
        scratch.idx[ch_start + start] = add_node(
            &mut scratch.nodes,
            Some(scratch.idx[dr_start + driver_tap]),
            p.r_antifuse,
            vseg_cap(arch, route.vsegs()[start], p) + p.c_antifuse,
        );
        // Grow outward along the chain in both directions (vertical
        // antifuse per junction).
        for i in (0..start).rev() {
            scratch.idx[ch_start + i] = add_node(
                &mut scratch.nodes,
                Some(scratch.idx[ch_start + i + 1]),
                p.r_antifuse + vseg_wire_r(arch, route.vsegs()[i + 1], p),
                vseg_cap(arch, route.vsegs()[i], p) + p.c_antifuse,
            );
        }
        for i in (start + 1)..route.vsegs().len() {
            scratch.idx[ch_start + i] = add_node(
                &mut scratch.nodes,
                Some(scratch.idx[ch_start + i - 1]),
                p.r_antifuse + vseg_wire_r(arch, route.vsegs()[i - 1], p),
                vseg_cap(arch, route.vsegs()[i], p) + p.c_antifuse,
            );
        }

        for (chan, run) in route.hsegs() {
            if *chan == driver_chan {
                continue;
            }
            let Some(chain_idx) = route
                .vsegs()
                .iter()
                .position(|v| arch.vseg(*v).reaches(*chan))
            else {
                return false; // the chain reaches every routed channel
            };
            let Some(tap) = run_tap_index(arch, run, vcol.index()) else {
                return false;
            };
            let r_start = scratch.idx.len();
            scratch.idx.resize(r_start + run.len(), usize::MAX);
            scratch.idx[r_start + tap] = add_node(
                &mut scratch.nodes,
                Some(scratch.idx[ch_start + chain_idx]),
                p.r_antifuse,
                seg_cap(arch, run[tap], p) + p.c_antifuse,
            );
            grow_run(
                arch,
                p,
                &mut scratch.nodes,
                run,
                &mut scratch.idx[r_start..r_start + run.len()],
                tap,
            );
            scratch.seg_ranges.push((*chan, r_start));
        }
    }

    // 3. Sinks load their channel's run through a cross antifuse.
    for pin in netlist.net(net).pins().skip(1) {
        let sink = pin_loc(arch, netlist, placement, pin);
        let Some(&(_, r_start)) = scratch.seg_ranges.iter().find(|(c, _)| *c == sink.channel)
        else {
            return false; // every sink channel carries a routed run
        };
        let Some(run) = route.hsegs_in(sink.channel) else {
            return false;
        };
        let Some(tap) = run_tap_index(arch, run, sink.col.index()) else {
            return false;
        };
        let node = add_node(
            &mut scratch.nodes,
            Some(scratch.idx[r_start + tap]),
            p.r_antifuse,
            p.c_input + p.c_antifuse,
        );
        scratch.sink_nodes.push(node);
    }

    // Downstream capacitance: children were always added after parents, so
    // a reverse sweep accumulates subtrees.
    let n = scratch.nodes.len();
    scratch.down.clear();
    scratch.down.extend(scratch.nodes.iter().map(|nd| nd.cap));
    for i in (0..n).rev() {
        if let Some(par) = scratch.nodes[i].parent {
            scratch.down[par] += scratch.down[i];
        }
    }
    // Forward sweep: T(child) = T(parent) + R_edge · C_down(child).
    scratch.t.clear();
    scratch.t.resize(n, 0.0);
    for i in 0..n {
        if let Some(par) = scratch.nodes[i].parent {
            scratch.t[i] = scratch.t[par] + scratch.nodes[i].r_edge * scratch.down[i];
        }
    }
    out.clear();
    out.extend(scratch.sink_nodes.iter().map(|&i| scratch.t[i]));
    true
}

/// Index within `run` of the segment covering `col`, or `None` when the
/// run does not cover it (a broken embedding; the caller treats the net
/// as not fully embedded).
fn run_tap_index(arch: &Architecture, run: &[rowfpga_arch::HSegId], col: usize) -> Option<usize> {
    run.iter().position(|h| {
        let s = arch.hseg(*h);
        s.start() <= col && col < s.end()
    })
}

/// Adds the rest of a channel run to the tree, growing from the already
/// added segment at `from` toward both ends (horizontal antifuse plus wire
/// resistance per junction).
fn grow_run(
    arch: &Architecture,
    p: &rowfpga_arch::DelayParams,
    tree: &mut Vec<Node>,
    run: &[rowfpga_arch::HSegId],
    nodes: &mut [usize],
    from: usize,
) {
    for i in (0..from).rev() {
        nodes[i] = add_node(
            tree,
            Some(nodes[i + 1]),
            p.r_antifuse
                + seg_wire_r(arch, run[i + 1], p) / 2.0
                + seg_wire_r(arch, run[i], p) / 2.0,
            seg_cap(arch, run[i], p) + p.c_antifuse,
        );
    }
    for i in (from + 1)..run.len() {
        nodes[i] = add_node(
            tree,
            Some(nodes[i - 1]),
            p.r_antifuse
                + seg_wire_r(arch, run[i - 1], p) / 2.0
                + seg_wire_r(arch, run[i], p) / 2.0,
            seg_cap(arch, run[i], p) + p.c_antifuse,
        );
    }
}

fn seg_cap(arch: &Architecture, h: rowfpga_arch::HSegId, p: &rowfpga_arch::DelayParams) -> f64 {
    p.c_wire * arch.hseg(h).len() as f64
}

fn seg_wire_r(arch: &Architecture, h: rowfpga_arch::HSegId, p: &rowfpga_arch::DelayParams) -> f64 {
    p.r_wire * arch.hseg(h).len() as f64
}

fn vseg_cap(arch: &Architecture, v: rowfpga_arch::VSegId, p: &rowfpga_arch::DelayParams) -> f64 {
    p.c_wire * arch.vseg(v).span() as f64
}

fn vseg_wire_r(arch: &Architecture, v: rowfpga_arch::VSegId, p: &rowfpga_arch::DelayParams) -> f64 {
    p.r_wire * arch.vseg(v).span() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_arch::SegmentationScheme;
    use rowfpga_netlist::{generate, CellKind, GenerateConfig};
    use rowfpga_place::net_pin_locs;
    use rowfpga_route::{route_batch, RouterConfig};

    fn routed_problem() -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(24)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 13).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 8);
        assert!(out.fully_routed, "test fixture must route fully");
        (arch, nl, p, st)
    }

    #[test]
    fn all_routed_nets_have_positive_delays() {
        let (arch, nl, p, st) = routed_problem();
        for (id, net) in nl.nets() {
            let d = elmore_sink_delays(&arch, &nl, &p, &st, id).expect("routed");
            assert_eq!(d.len(), net.fanout());
            for x in d {
                assert!(x.is_finite() && x > 0.0, "bad delay {x} on {id}");
            }
        }
    }

    #[test]
    fn unrouted_nets_yield_none() {
        let (arch, nl, p, mut st) = routed_problem();
        let net = rowfpga_netlist::NetId::new(0);
        st.rip_up(net);
        assert!(elmore_sink_delays(&arch, &nl, &p, &st, net).is_none());
    }

    #[test]
    fn more_antifuses_mean_more_delay() {
        // Two fabrics identical except for segmentation: length-2 segments
        // force many horizontal antifuses, full-length tracks need none.
        // The same (deterministic) placement and a long two-pin net must be
        // slower on the finely segmented fabric.
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let q = b.add_cell("q", CellKind::Output);
        b.connect("n", a, [(q, 0)]).unwrap();
        let nl = b.build().unwrap();

        let mk = |scheme| {
            Architecture::builder()
                .rows(1)
                .cols(16)
                .io_columns(1)
                .tracks_per_channel(4)
                .segmentation(scheme)
                .build()
                .unwrap()
        };
        let fine = mk(SegmentationScheme::Uniform { len: 2 });
        let coarse = mk(SegmentationScheme::FullLength);

        let run = |arch: &Architecture| {
            let p = Placement::random(arch, &nl, 1).unwrap();
            let mut st = RoutingState::new(arch, &nl);
            let out = route_batch(&mut st, arch, &nl, &p, &RouterConfig::default(), 4);
            assert!(out.fully_routed);
            elmore_sink_delays(arch, &nl, &p, &st, rowfpga_netlist::NetId::new(0)).unwrap()[0]
        };
        let t_fine = run(&fine);
        let t_coarse = run(&coarse);
        assert!(
            t_fine > t_coarse,
            "finely segmented path ({t_fine}) must be slower than long-line path ({t_coarse})"
        );
    }

    #[test]
    fn farther_sinks_in_the_same_channel_are_slower() {
        // One driver and two sinks all tapping the same channel run on a
        // single-row chip: the sink more segment joints away from the
        // driver's tap must see strictly more Elmore delay.
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g1 = b.add_cell("g1", CellKind::comb(1));
        let g2 = b.add_cell("g2", CellKind::comb(1));
        let q1 = b.add_cell("q1", CellKind::Output);
        let q2 = b.add_cell("q2", CellKind::Output);
        b.connect("n", a, [(g1, 1), (g2, 1)]).unwrap();
        b.connect("m1", g1, [(q1, 0)]).unwrap();
        b.connect("m2", g2, [(q2, 0)]).unwrap();
        let nl = b.build().unwrap();
        let arch = Architecture::builder()
            .rows(1)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(6)
            .segmentation(SegmentationScheme::Uniform { len: 2 })
            .build()
            .unwrap();
        let mut p = Placement::random(&arch, &nl, 5).unwrap();
        // Force a deterministic geometry: driver at column 0, the near sink
        // at column 3, the far sink at column 9 (row 0 for all).
        let geom = arch.geometry();
        let place_at = |p: &mut Placement, cell, col: usize| {
            let target = geom
                .site_at(rowfpga_arch::RowId::new(0), rowfpga_arch::ColId::new(col))
                .id();
            let from = p.site_of(cell);
            p.swap_sites(&arch, from, target);
        };
        place_at(&mut p, a, 0);
        place_at(&mut p, g1, 3);
        place_at(&mut p, g2, 9);
        // Force every pin of the net onto the bottom side (channel 0).
        for cell in [a, g1, g2] {
            let kind = nl.cell(cell).kind();
            let idx = p
                .palette(kind)
                .iter()
                .position(|pm| {
                    pm.sides()
                        .iter()
                        .all(|s| *s == rowfpga_netlist::PortSide::Bottom)
                })
                .expect("all-bottom pinmap exists") as u16;
            p.set_pinmap(&nl, cell, idx);
        }
        let mut st = RoutingState::new(&arch, &nl);
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 4);
        assert!(out.fully_routed);
        let net = nl.net_by_name("n").unwrap();
        let locs = net_pin_locs(&arch, &nl, &p, net);
        assert!(
            locs.iter().all(|l| l.channel.index() == 0),
            "all pins must share channel 0"
        );
        let d = elmore_sink_delays(&arch, &nl, &p, &st, net).unwrap();
        // sinks() order follows connect(): [g1 (col 3), g2 (col 9)]
        assert!(
            d[1] > d[0],
            "far sink ({}) must be slower than near sink ({})",
            d[1],
            d[0]
        );
    }
}

#[cfg(test)]
mod hand_computed {
    use super::*;
    use rowfpga_arch::{RowId, SegmentationScheme};
    use rowfpga_netlist::{CellKind, Netlist, PortSide};
    use rowfpga_route::{route_batch, RouterConfig};

    /// Builds X(input)@col0 → Y(comb1)@col5/6 on one row with every pin on
    /// channel 0, routes it, and returns the single sink's Elmore delay.
    fn two_pin_delay(scheme: SegmentationScheme, sink_col: usize) -> f64 {
        let mut b = Netlist::builder();
        let x = b.add_cell("x", CellKind::Input);
        let y = b.add_cell("y", CellKind::comb(1));
        let q = b.add_cell("q", CellKind::Output);
        b.connect("n", x, [(y, 1)]).unwrap();
        b.connect("m", y, [(q, 0)]).unwrap();
        let nl = b.build().unwrap();
        let arch = Architecture::builder()
            .rows(1)
            .cols(8)
            .io_columns(1)
            .tracks_per_channel(2)
            .segmentation(scheme)
            .build()
            .unwrap();
        let mut p = rowfpga_place::Placement::random(&arch, &nl, 1).unwrap();
        let geom = arch.geometry();
        for (cell, col) in [(x, 0usize), (y, sink_col)] {
            let target = geom
                .site_at(RowId::new(0), rowfpga_arch::ColId::new(col))
                .id();
            let from = p.site_of(cell);
            p.swap_sites(&arch, from, target);
        }
        for (cell, c) in nl.cells() {
            let idx = p
                .palette(c.kind())
                .iter()
                .position(|pm| pm.sides().iter().all(|s| *s == PortSide::Bottom))
                .unwrap() as u16;
            p.set_pinmap(&nl, cell, idx);
        }
        let mut st = RoutingState::new(&arch, &nl);
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 4);
        assert!(out.fully_routed);
        elmore_sink_delays(&arch, &nl, &p, &st, nl.net_by_name("n").unwrap()).unwrap()[0]
    }

    #[test]
    fn single_segment_net_matches_hand_computation() {
        // Tree: driver -(r_drv + r_af)-> seg[0,8) -(r_af)-> sink.
        // caps: seg = 8*c_wire + c_af; sink = c_input + c_af.
        // T = (1500+500)*(0.48+0.01+0.02+0.01) + 500*(0.02+0.01)
        //   = 2000*0.52 + 500*0.03 = 1055.0 ps  (act_1um parameters)
        let t = two_pin_delay(SegmentationScheme::FullLength, 5);
        assert!((t - 1055.0).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn two_segment_net_matches_hand_computation() {
        // Track split at column 4; driver at col 0, sink at col 6 forces a
        // 2-segment run. Joint edge R = r_af + r_wire*(4/2 + 4/2) = 508.
        // T = 2000*(0.25+0.25+0.03) + 508*(0.25+0.03) + 500*0.03
        //   = 1060 + 142.24 + 15 = 1217.24 ps
        let t = two_pin_delay(
            SegmentationScheme::Explicit {
                tracks: vec![vec![4], vec![4]],
            },
            6,
        );
        assert!((t - 1217.24).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn extra_joints_cost_exactly_their_rc() {
        let one = two_pin_delay(SegmentationScheme::FullLength, 6);
        let two = two_pin_delay(
            SegmentationScheme::Explicit {
                tracks: vec![vec![4], vec![4]],
            },
            6,
        );
        assert!(two > one, "joint added no delay: {one} vs {two}");
    }
}
