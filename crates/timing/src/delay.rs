//! Unified per-net delay evaluation and intrinsic cell delays.

use rowfpga_arch::Architecture;
use rowfpga_netlist::{CellKind, NetId, Netlist};
use rowfpga_place::Placement;
use rowfpga_route::RoutingState;

use crate::elmore::{elmore_sink_delays_into, ElmoreScratch};
use crate::estimate::estimate_sink_delay;

/// Driver-to-sink interconnect delay for every sink of `net`, in sink
/// order: the exact Elmore delay when the net is fully embedded, the
/// spatial-extent estimate otherwise (paper §3.5).
pub fn net_sink_delays(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
    net: NetId,
) -> Vec<f64> {
    let mut scratch = ElmoreScratch::default();
    let mut out = Vec::new();
    net_sink_delays_into(
        arch,
        netlist,
        placement,
        routing,
        net,
        &mut scratch,
        &mut out,
    );
    out
}

/// [`net_sink_delays`] writing into a reusable output buffer with reusable
/// Elmore scratch — the hot-path form. `out` is cleared and refilled in
/// sink order.
pub fn net_sink_delays_into(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
    net: NetId,
    scratch: &mut ElmoreScratch,
    out: &mut Vec<f64>,
) {
    if elmore_sink_delays_into(arch, netlist, placement, routing, net, scratch, out) {
        return;
    }
    let est = estimate_sink_delay(arch, netlist, placement, net);
    out.clear();
    out.resize(netlist.net(net).fanout(), est);
}

/// Intrinsic delay charged when a signal propagates *through* a cell to its
/// output: the module's combinational delay, a flip-flop's clock-to-output
/// delay, or the pad delay of a primary input.
pub fn cell_intrinsic_delay(arch: &Architecture, kind: CellKind) -> f64 {
    let p = arch.delay();
    match kind {
        CellKind::Input => p.t_io,
        CellKind::Output => 0.0,
        CellKind::Comb { .. } => p.t_comb,
        CellKind::Seq => p.t_seq,
    }
}

/// Intrinsic delay charged when a path *terminates* at a cell: the pad
/// delay of a primary output; zero at a flip-flop's data input.
pub fn endpoint_intrinsic_delay(arch: &Architecture, kind: CellKind) -> f64 {
    match kind {
        CellKind::Output => arch.delay().t_io,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::{route_batch, RouterConfig};

    #[test]
    fn routed_and_unrouted_nets_both_get_delays() {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(12)
            .io_columns(1)
            .tracks_per_channel(20)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 2).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        // Unrouted: every net still gets a (uniform) estimate.
        for (id, net) in nl.nets() {
            let d = net_sink_delays(&arch, &nl, &p, &st, id);
            assert_eq!(d.len(), net.fanout());
            assert!(d.iter().all(|x| *x > 0.0));
            assert!(d.windows(2).all(|w| w[0] == w[1]), "estimate is uniform");
        }
        // Routed: per-sink delays generally differ.
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 8);
        assert!(out.fully_routed);
        for (id, net) in nl.nets() {
            let d = net_sink_delays(&arch, &nl, &p, &st, id);
            assert_eq!(d.len(), net.fanout());
            assert!(d.iter().all(|x| *x > 0.0));
        }
    }

    #[test]
    fn intrinsic_delays_match_params() {
        let arch = Architecture::builder().build().unwrap();
        let p = arch.delay();
        assert_eq!(cell_intrinsic_delay(&arch, CellKind::Input), p.t_io);
        assert_eq!(cell_intrinsic_delay(&arch, CellKind::comb(3)), p.t_comb);
        assert_eq!(cell_intrinsic_delay(&arch, CellKind::Seq), p.t_seq);
        assert_eq!(cell_intrinsic_delay(&arch, CellKind::Output), 0.0);
        assert_eq!(endpoint_intrinsic_delay(&arch, CellKind::Output), p.t_io);
        assert_eq!(endpoint_intrinsic_delay(&arch, CellKind::Seq), 0.0);
    }
}
