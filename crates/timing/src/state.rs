// rowfpga-lint: hot-path
//! The incremental worst-case delay engine (paper §3.5, Figure 5).
//!
//! Cells are levelized once (levels depend only on connectivity). After a
//! move reroutes a set of nets, their interconnect delays are recomputed
//! and the change is propagated to the path boundaries through a *frontier*
//! of affected cells, always processing the frontier cell with the minimum
//! level: a cell's output arrival is refreshed from its inputs, and only if
//! it changed are its fanout cells added. Expansion stops when the frontier
//! empties. All mutations are journaled so a rejected move can be undone
//! exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rowfpga_arch::Architecture;
use rowfpga_netlist::{CellId, CellKind, CombLoopError, Levels, NetId, Netlist, PinRef};
use rowfpga_place::Placement;
use rowfpga_route::RoutingState;

use crate::delay::{cell_intrinsic_delay, endpoint_intrinsic_delay, net_sink_delays_into};
use crate::elmore::ElmoreScratch;
use crate::sta::is_endpoint;

/// Arrival changes smaller than this are not propagated.
const EPS: f64 = 1e-9;

/// A sink cell that is neither a boundary nor an endpoint: propagation
/// continues through it.
const SINK_INTERNAL: u8 = 0;
/// A path endpoint (primary output / flip-flop data input).
const SINK_ENDPOINT: u8 = 1;
/// A boundary that terminates propagation without being an endpoint.
const SINK_BOUNDARY: u8 = 2;

/// One input connection of a cell: the driving cell, the net, and this
/// pin's index in the net's sink list — everything `worst_input_arrival`
/// re-derived per call, resolved once.
#[derive(Clone, Copy, Debug)]
struct FaninEdge {
    driver: u32,
    net: u32,
    sink: u32,
}

/// Lookup tables derived from connectivity and fabric delay parameters,
/// both immutable for the lifetime of the state: per-cell fanin edges in
/// CSR form, intrinsic delays, levels and sink classification. These turn
/// the frontier's inner loop into flat array reads.
#[derive(Clone, Debug)]
struct CellTables {
    fanin_start: Vec<u32>,
    fanin_edges: Vec<FaninEdge>,
    intrinsic: Vec<f64>,
    endpoint_intrinsic: Vec<f64>,
    level: Vec<u32>,
    sink_class: Vec<u8>,
}

impl CellTables {
    // rowfpga-lint: begin-allow(hot-path) reason=one-time table construction before annealing starts
    fn build(arch: &Architecture, netlist: &Netlist, levels: &Levels) -> CellTables {
        let n = netlist.num_cells();
        let mut t = CellTables {
            fanin_start: Vec::with_capacity(n + 1),
            fanin_edges: Vec::new(),
            intrinsic: Vec::with_capacity(n),
            endpoint_intrinsic: Vec::with_capacity(n),
            level: Vec::with_capacity(n),
            sink_class: Vec::with_capacity(n),
        };
        for (id, cell) in netlist.cells() {
            let kind = cell.kind();
            t.fanin_start.push(t.fanin_edges.len() as u32);
            // Same pin order as `sta::argmax_input`, so the max-fold visits
            // arrivals in the identical sequence.
            let first_input = u8::from(kind.has_output());
            for pin in first_input..kind.num_pins() as u8 {
                let pin_ref = PinRef::new(id, pin);
                let Some(net) = netlist.net_of(pin_ref) else {
                    continue;
                };
                let nref = netlist.net(net);
                let sink_idx = nref
                    .sinks()
                    .iter()
                    .position(|s| *s == pin_ref)
                    .expect("pin is a sink of its net");
                t.fanin_edges.push(FaninEdge {
                    driver: nref.driver().cell.index() as u32,
                    net: net.index() as u32,
                    sink: sink_idx as u32,
                });
            }
            t.intrinsic.push(cell_intrinsic_delay(arch, kind));
            t.endpoint_intrinsic
                .push(endpoint_intrinsic_delay(arch, kind));
            t.level.push(levels.level(id));
            t.sink_class.push(if kind.is_boundary() {
                if is_endpoint(kind) {
                    SINK_ENDPOINT
                } else {
                    SINK_BOUNDARY
                }
            } else {
                SINK_INTERNAL
            });
        }
        t.fanin_start.push(t.fanin_edges.len() as u32);
        t
    }
    // rowfpga-lint: end-allow(hot-path)
}

/// Generation-stamped undo log: the first mutation of each quantity inside
/// a transaction records its prior value in a flat array; per-index stamps
/// make the first-touch test O(1) with nothing to clear between
/// transactions.
#[derive(Clone, Debug)]
struct UndoLog {
    active: bool,
    generation: u64,
    arr_stamp: Vec<u64>,
    endpoint_stamp: Vec<u64>,
    net_stamp: Vec<u64>,
    saved_arr: Vec<(CellId, f64)>,
    saved_endpoint: Vec<(CellId, f64)>,
    saved_nets: Vec<(NetId, Vec<f64>)>,
    worst: Option<f64>,
}

const DELAY_POOL_CAP: usize = 256;

/// Reusable buffers for [`TimingState::update_nets`]: the level-ordered
/// frontier heap (always drained, so its allocation persists), epoch-stamped
/// queued/dirty marks (no per-call clearing), a pool of retired sink-delay
/// vectors and the Elmore evaluation scratch.
#[derive(Clone, Debug, Default)]
struct UpdateScratch {
    frontier: BinaryHeap<Reverse<(u32, CellId)>>,
    epoch: u64,
    queued: Vec<u64>,
    endpoint_dirty: Vec<u64>,
    delay_pool: Vec<Vec<f64>>,
    elmore: ElmoreScratch,
}

/// Incrementally maintained timing state: per-cell arrivals, per-net sink
/// delays and the worst endpoint arrival (the cost term `T`).
#[derive(Clone, Debug)]
pub struct TimingState {
    levels: Levels,
    tables: CellTables,
    arr: Vec<f64>,
    endpoint_arr: Vec<f64>,
    net_delays: Vec<Vec<f64>>,
    endpoints: Vec<CellId>,
    worst: f64,
    undo: UndoLog,
    scratch: UpdateScratch,
    /// Cells popped off the frontier by the most recent
    /// [`TimingState::update_nets`] call (observability only; not
    /// journaled, since it never affects results).
    last_frontier: usize,
}

impl TimingState {
    /// Levelizes the netlist and computes the initial full analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if the netlist has a combinational cycle.
    // rowfpga-lint: begin-allow(hot-path) reason=one-time constructor sizes every buffer for the whole run
    pub fn new(
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
    ) -> Result<TimingState, CombLoopError> {
        let levels = Levels::compute(netlist)?;
        let tables = CellTables::build(arch, netlist, &levels);
        let endpoints = netlist
            .cells()
            .filter(|(_, c)| is_endpoint(c.kind()))
            .map(|(id, _)| id)
            .collect();
        let mut state = TimingState {
            levels,
            tables,
            arr: vec![0.0; netlist.num_cells()],
            endpoint_arr: vec![f64::NEG_INFINITY; netlist.num_cells()],
            net_delays: vec![Vec::new(); netlist.num_nets()],
            endpoints,
            worst: 0.0,
            undo: UndoLog {
                active: false,
                generation: 0,
                arr_stamp: vec![0; netlist.num_cells()],
                endpoint_stamp: vec![0; netlist.num_cells()],
                net_stamp: vec![0; netlist.num_nets()],
                saved_arr: Vec::new(),
                saved_endpoint: Vec::new(),
                saved_nets: Vec::new(),
                worst: None,
            },
            scratch: UpdateScratch {
                queued: vec![0; netlist.num_cells()],
                endpoint_dirty: vec![0; netlist.num_cells()],
                ..UpdateScratch::default()
            },
            last_frontier: 0,
        };
        state.full_analyze(arch, netlist, placement, routing);
        Ok(state)
    }
    // rowfpga-lint: end-allow(hot-path)

    /// Recomputes everything from scratch (used at construction and as a
    /// test oracle against the incremental path).
    pub fn full_analyze(
        &mut self,
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
    ) {
        assert!(
            !self.undo.active,
            "full analysis inside a transaction is not supported"
        );
        for (id, _) in netlist.nets() {
            net_sink_delays_into(
                arch,
                netlist,
                placement,
                routing,
                id,
                &mut self.scratch.elmore,
                &mut self.net_delays[id.index()],
            );
        }
        for (id, cell) in netlist.cells() {
            self.arr[id.index()] = match cell.kind() {
                CellKind::Input | CellKind::Seq => cell_intrinsic_delay(arch, cell.kind()),
                _ => 0.0,
            };
        }
        for &cell in self.levels.order() {
            self.arr[cell.index()] =
                self.worst_fanin(cell).unwrap_or(0.0) + self.tables.intrinsic[cell.index()];
        }
        for i in 0..self.endpoints.len() {
            let e = self.endpoints[i];
            self.endpoint_arr[e.index()] =
                self.worst_fanin(e).unwrap_or(0.0) + self.tables.endpoint_intrinsic[e.index()];
        }
        self.worst = self.scan_worst();
    }

    /// The latest input arrival of `cell` over its precomputed fanin edges
    /// — the allocation- and lookup-free equivalent of
    /// [`crate::sta`]'s `worst_input_arrival`, folding arrivals in the same
    /// pin order.
    fn worst_fanin(&self, cell: CellId) -> Option<f64> {
        let lo = self.tables.fanin_start[cell.index()] as usize;
        let hi = self.tables.fanin_start[cell.index() + 1] as usize;
        let mut best: Option<f64> = None;
        for e in &self.tables.fanin_edges[lo..hi] {
            let a = self.arr[e.driver as usize] + self.net_delays[e.net as usize][e.sink as usize];
            if best.is_none_or(|b| a > b) {
                best = Some(a);
            }
        }
        best
    }

    /// Worst-case path delay `T`, in picoseconds.
    pub fn worst(&self) -> f64 {
        self.worst
    }

    /// Arrival time at a cell's output.
    pub fn arrival(&self, cell: CellId) -> f64 {
        self.arr[cell.index()]
    }

    /// The interconnect delays currently charged to a net's sinks.
    pub fn net_delays(&self, net: NetId) -> &[f64] {
        &self.net_delays[net.index()]
    }

    /// Every cell's output arrival time, indexed by cell id — the dense
    /// view behind [`TimingState::arrival`]. Differential oracles digest
    /// this slice to compare an incremental state against a from-scratch
    /// analysis without one accessor call per cell.
    pub fn arrivals(&self) -> &[f64] {
        &self.arr
    }

    /// Cells processed by the propagation frontier of the most recent
    /// [`TimingState::update_nets`] call (0 if it had nothing to do). A
    /// cheap proxy for how far a move's timing disturbance traveled.
    pub fn last_frontier(&self) -> usize {
        self.last_frontier
    }

    /// Starts journaling for a speculative move.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn begin_txn(&mut self) {
        assert!(!self.undo.active, "timing transaction already active");
        debug_assert!(
            self.undo.saved_arr.is_empty()
                && self.undo.saved_endpoint.is_empty()
                && self.undo.saved_nets.is_empty()
                && self.undo.worst.is_none()
        );
        self.undo.active = true;
        self.undo.generation += 1;
    }

    /// Makes all changes since [`TimingState::begin_txn`] permanent.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) {
        assert!(self.undo.active, "no timing transaction to commit");
        self.undo.active = false;
        self.undo.saved_arr.clear();
        self.undo.saved_endpoint.clear();
        self.undo.worst = None;
        let mut saved = std::mem::take(&mut self.undo.saved_nets);
        for (_, old) in saved.drain(..) {
            self.recycle_delays(old);
        }
        self.undo.saved_nets = saved;
    }

    /// Restores the state at [`TimingState::begin_txn`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn rollback(&mut self) {
        assert!(self.undo.active, "no timing transaction to roll back");
        self.undo.active = false;
        for &(cell, v) in &self.undo.saved_arr {
            self.arr[cell.index()] = v;
        }
        self.undo.saved_arr.clear();
        for &(cell, v) in &self.undo.saved_endpoint {
            self.endpoint_arr[cell.index()] = v;
        }
        self.undo.saved_endpoint.clear();
        let mut saved = std::mem::take(&mut self.undo.saved_nets);
        for (net, old) in saved.drain(..) {
            let current = std::mem::replace(&mut self.net_delays[net.index()], old);
            self.recycle_delays(current);
        }
        self.undo.saved_nets = saved;
        if let Some(w) = self.undo.worst.take() {
            self.worst = w;
        }
    }

    /// Retires a sink-delay vector into the pool for reuse.
    fn recycle_delays(&mut self, mut v: Vec<f64>) {
        if self.scratch.delay_pool.len() < DELAY_POOL_CAP {
            v.clear();
            self.scratch.delay_pool.push(v);
        }
    }

    /// Recomputes the delays of `changed` nets and propagates arrivals to
    /// the boundaries through a min-level frontier. Returns the new worst
    /// delay.
    pub fn update_nets(
        &mut self,
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
        changed: &[NetId],
    ) -> f64 {
        self.last_frontier = 0;
        if changed.is_empty() {
            return self.worst;
        }
        self.save_worst();

        // Epoch stamps replace per-call boolean arrays: a mark is "set" iff
        // its stamp equals this call's epoch, so nothing is ever cleared.
        self.scratch.epoch += 1;
        let epoch = self.scratch.epoch;
        // Frontier keyed by level so arrival refreshes happen in dependency
        // order even across reconvergent fanout. The heap is always drained
        // below, so its allocation persists across calls; it is taken out
        // of the scratch for the duration to keep the borrows disjoint.
        let mut frontier = std::mem::take(&mut self.scratch.frontier);
        debug_assert!(frontier.is_empty());

        for &net in changed {
            self.save_net(net);
            net_sink_delays_into(
                arch,
                netlist,
                placement,
                routing,
                net,
                &mut self.scratch.elmore,
                &mut self.net_delays[net.index()],
            );
            for s in netlist.net(net).sinks() {
                let i = s.cell.index();
                match self.tables.sink_class[i] {
                    SINK_INTERNAL if self.scratch.queued[i] != epoch => {
                        self.scratch.queued[i] = epoch;
                        frontier.push(Reverse((self.tables.level[i], s.cell)));
                    }
                    SINK_ENDPOINT => self.scratch.endpoint_dirty[i] = epoch,
                    _ => {}
                }
            }
        }

        while let Some(Reverse((_, cell))) = frontier.pop() {
            self.last_frontier += 1;
            // 0 never equals a live epoch, so a processed cell can be
            // re-queued if a later driver change reaches it again.
            self.scratch.queued[cell.index()] = 0;
            let new_arr =
                self.worst_fanin(cell).unwrap_or(0.0) + self.tables.intrinsic[cell.index()];
            if (new_arr - self.arr[cell.index()]).abs() <= EPS {
                continue;
            }
            self.save_arr(cell);
            self.arr[cell.index()] = new_arr;
            if let Some(net) = netlist.driven_net(cell) {
                for s in netlist.net(net).sinks() {
                    let i = s.cell.index();
                    match self.tables.sink_class[i] {
                        SINK_INTERNAL if self.scratch.queued[i] != epoch => {
                            self.scratch.queued[i] = epoch;
                            frontier.push(Reverse((self.tables.level[i], s.cell)));
                        }
                        SINK_ENDPOINT => self.scratch.endpoint_dirty[i] = epoch,
                        _ => {}
                    }
                }
            }
        }
        self.scratch.frontier = frontier;

        for i in 0..self.endpoints.len() {
            let e = self.endpoints[i];
            if self.scratch.endpoint_dirty[e.index()] != epoch {
                continue;
            }
            let ea = self.worst_fanin(e).unwrap_or(0.0) + self.tables.endpoint_intrinsic[e.index()];
            if (ea - self.endpoint_arr[e.index()]).abs() > EPS {
                self.save_endpoint(e);
                self.endpoint_arr[e.index()] = ea;
            }
        }
        self.worst = self.scan_worst();
        self.worst
    }

    fn scan_worst(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|e| self.endpoint_arr[e.index()])
            .fold(0.0f64, f64::max)
    }

    fn save_arr(&mut self, cell: CellId) {
        if !self.undo.active {
            return;
        }
        let i = cell.index();
        if self.undo.arr_stamp[i] == self.undo.generation {
            return;
        }
        self.undo.arr_stamp[i] = self.undo.generation;
        self.undo.saved_arr.push((cell, self.arr[i]));
    }

    fn save_endpoint(&mut self, cell: CellId) {
        if !self.undo.active {
            return;
        }
        let i = cell.index();
        if self.undo.endpoint_stamp[i] == self.undo.generation {
            return;
        }
        self.undo.endpoint_stamp[i] = self.undo.generation;
        self.undo.saved_endpoint.push((cell, self.endpoint_arr[i]));
    }

    /// Journals a net's current sink delays on first touch by *moving* the
    /// vector into the undo log and installing a pooled replacement for the
    /// caller to fill — no element copying either way.
    fn save_net(&mut self, net: NetId) {
        if !self.undo.active {
            return;
        }
        let i = net.index();
        if self.undo.net_stamp[i] == self.undo.generation {
            return;
        }
        self.undo.net_stamp[i] = self.undo.generation;
        let fresh = self.scratch.delay_pool.pop().unwrap_or_default();
        let old = std::mem::replace(&mut self.net_delays[i], fresh);
        self.undo.saved_nets.push((net, old));
    }

    fn save_worst(&mut self) {
        if self.undo.active && self.undo.worst.is_none() {
            self.undo.worst = Some(self.worst);
        }
    }
}

/// Deterministic corruption hooks for the resilience layer's fault-injection
/// tests. Compiled only with the `fault-inject` feature; never called by
/// production code.
#[cfg(feature = "fault-inject")]
impl TimingState {
    /// Skews the cached worst-case delay by `delta_ps` — simulates a missed
    /// frontier propagation that left the cost term `T` stale.
    pub fn fault_skew_worst(&mut self, delta_ps: f64) {
        self.worst += delta_ps;
    }

    /// Skews the arrival time of the cell with index `cell % num_cells` by
    /// `delta_ps` — a silent mid-cone divergence that a worst-only check
    /// would miss.
    pub fn fault_skew_arrival(&mut self, cell: usize, delta_ps: f64) {
        let idx = cell % self.arr.len().max(1);
        if idx < self.arr.len() {
            self.arr[idx] += delta_ps;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::{route_batch, RouterConfig};

    fn problem(seed: u64) -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 4,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(6)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(24)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, seed).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 8);
        (arch, nl, p, st)
    }

    #[test]
    fn initial_state_matches_sta() {
        let (arch, nl, p, st) = problem(3);
        let ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        let sta = crate::Sta::analyze(&arch, &nl, &p, &st).unwrap();
        assert!((ts.worst() - sta.worst_delay()).abs() < 1e-6);
        for (id, c) in nl.cells() {
            if c.kind().has_output() {
                assert!((ts.arrival(id) - sta.arrival(id)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn incremental_update_matches_full_reanalysis() {
        let (arch, nl, mut p, mut st) = problem(5);
        let cfg = RouterConfig::default();
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();

        let cells: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| !c.kind().is_io())
            .map(|(id, _)| id)
            .collect();
        for w in cells.windows(2).take(20) {
            // Move, rip up, reroute — then update incrementally and compare
            // against a from-scratch analysis.
            p.swap_sites(&arch, p.site_of(w[0]), p.site_of(w[1]));
            let mut changed: Vec<NetId> = nl.nets_of_cell(w[0]);
            changed.extend(nl.nets_of_cell(w[1]));
            changed.sort_unstable();
            changed.dedup();
            st.rip_up_cell(&nl, w[0]);
            st.rip_up_cell(&nl, w[1]);
            st.route_incremental(&arch, &nl, &p, &cfg);
            let worst = ts.update_nets(&arch, &nl, &p, &st, &changed);

            let oracle = TimingState::new(&arch, &nl, &p, &st).unwrap();
            assert!(
                (worst - oracle.worst()).abs() < 1e-6,
                "incremental {worst} != full {}",
                oracle.worst()
            );
            for (id, c) in nl.cells() {
                if c.kind().has_output() {
                    assert!(
                        (ts.arrival(id) - oracle.arrival(id)).abs() < 1e-6,
                        "arrival mismatch on {id:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rollback_restores_timing_exactly() {
        let (arch, nl, mut p, mut st) = problem(9);
        let cfg = RouterConfig::default();
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        let reference = ts.clone();

        let cells: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| !c.kind().is_io())
            .map(|(id, _)| id)
            .collect();
        let (a, b) = (cells[0], cells[1]);

        ts.begin_txn();
        st.begin_txn();
        p.swap_sites(&arch, p.site_of(a), p.site_of(b));
        let mut changed = nl.nets_of_cell(a);
        changed.extend(nl.nets_of_cell(b));
        changed.sort_unstable();
        changed.dedup();
        st.rip_up_cell(&nl, a);
        st.rip_up_cell(&nl, b);
        st.route_incremental(&arch, &nl, &p, &cfg);
        ts.update_nets(&arch, &nl, &p, &st, &changed);
        // reject
        ts.rollback();
        st.rollback();
        p.swap_sites(&arch, p.site_of(a), p.site_of(b)); // p.site_of(a) is b's old site now

        assert_eq!(ts.worst(), reference.worst());
        for (id, _) in nl.cells() {
            assert_eq!(ts.arrival(id), reference.arrival(id));
        }
        for (id, _) in nl.nets() {
            assert_eq!(ts.net_delays(id), reference.net_delays(id));
        }
    }

    #[test]
    fn empty_update_is_free() {
        let (arch, nl, p, st) = problem(2);
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        let w = ts.worst();
        assert_eq!(ts.update_nets(&arch, &nl, &p, &st, &[]), w);
        assert_eq!(ts.last_frontier(), 0);
    }

    #[test]
    #[should_panic(expected = "transaction already active")]
    fn nested_timing_transactions_are_rejected() {
        let (arch, nl, p, st) = problem(2);
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        ts.begin_txn();
        ts.begin_txn();
    }
}
