//! The incremental worst-case delay engine (paper §3.5, Figure 5).
//!
//! Cells are levelized once (levels depend only on connectivity). After a
//! move reroutes a set of nets, their interconnect delays are recomputed
//! and the change is propagated to the path boundaries through a *frontier*
//! of affected cells, always processing the frontier cell with the minimum
//! level: a cell's output arrival is refreshed from its inputs, and only if
//! it changed are its fanout cells added. Expansion stops when the frontier
//! empties. All mutations are journaled so a rejected move can be undone
//! exactly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rowfpga_arch::Architecture;
use rowfpga_netlist::{CellId, CellKind, CombLoopError, Levels, NetId, Netlist};
use rowfpga_place::Placement;
use rowfpga_route::RoutingState;

use crate::delay::{cell_intrinsic_delay, endpoint_intrinsic_delay, net_sink_delays};
use crate::sta::{is_endpoint, worst_input_arrival};

/// Arrival changes smaller than this are not propagated.
const EPS: f64 = 1e-9;

#[derive(Clone, Debug, Default)]
struct Journal {
    arr: HashMap<usize, f64>,
    endpoint_arr: HashMap<usize, f64>,
    net_delays: HashMap<usize, Vec<f64>>,
    worst: Option<f64>,
}

/// Incrementally maintained timing state: per-cell arrivals, per-net sink
/// delays and the worst endpoint arrival (the cost term `T`).
#[derive(Clone, Debug)]
pub struct TimingState {
    levels: Levels,
    arr: Vec<f64>,
    endpoint_arr: Vec<f64>,
    net_delays: Vec<Vec<f64>>,
    endpoints: Vec<CellId>,
    worst: f64,
    journal: Option<Journal>,
    /// Cells popped off the frontier by the most recent
    /// [`TimingState::update_nets`] call (observability only; not
    /// journaled, since it never affects results).
    last_frontier: usize,
}

impl TimingState {
    /// Levelizes the netlist and computes the initial full analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if the netlist has a combinational cycle.
    pub fn new(
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
    ) -> Result<TimingState, CombLoopError> {
        let levels = Levels::compute(netlist)?;
        let endpoints = netlist
            .cells()
            .filter(|(_, c)| is_endpoint(c.kind()))
            .map(|(id, _)| id)
            .collect();
        let mut state = TimingState {
            levels,
            arr: vec![0.0; netlist.num_cells()],
            endpoint_arr: vec![f64::NEG_INFINITY; netlist.num_cells()],
            net_delays: vec![Vec::new(); netlist.num_nets()],
            endpoints,
            worst: 0.0,
            journal: None,
            last_frontier: 0,
        };
        state.full_analyze(arch, netlist, placement, routing);
        Ok(state)
    }

    /// Recomputes everything from scratch (used at construction and as a
    /// test oracle against the incremental path).
    pub fn full_analyze(
        &mut self,
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
    ) {
        assert!(
            self.journal.is_none(),
            "full analysis inside a transaction is not supported"
        );
        for (id, _) in netlist.nets() {
            self.net_delays[id.index()] = net_sink_delays(arch, netlist, placement, routing, id);
        }
        for (id, cell) in netlist.cells() {
            self.arr[id.index()] = match cell.kind() {
                CellKind::Input | CellKind::Seq => cell_intrinsic_delay(arch, cell.kind()),
                _ => 0.0,
            };
        }
        for &cell in self.levels.order() {
            self.arr[cell.index()] =
                worst_input_arrival(netlist, &self.arr, &self.net_delays, cell).unwrap_or(0.0)
                    + cell_intrinsic_delay(arch, netlist.cell(cell).kind());
        }
        for &e in &self.endpoints {
            self.endpoint_arr[e.index()] =
                worst_input_arrival(netlist, &self.arr, &self.net_delays, e).unwrap_or(0.0)
                    + endpoint_intrinsic_delay(arch, netlist.cell(e).kind());
        }
        self.worst = self.scan_worst();
    }

    /// Worst-case path delay `T`, in picoseconds.
    pub fn worst(&self) -> f64 {
        self.worst
    }

    /// Arrival time at a cell's output.
    pub fn arrival(&self, cell: CellId) -> f64 {
        self.arr[cell.index()]
    }

    /// The interconnect delays currently charged to a net's sinks.
    pub fn net_delays(&self, net: NetId) -> &[f64] {
        &self.net_delays[net.index()]
    }

    /// Cells processed by the propagation frontier of the most recent
    /// [`TimingState::update_nets`] call (0 if it had nothing to do). A
    /// cheap proxy for how far a move's timing disturbance traveled.
    pub fn last_frontier(&self) -> usize {
        self.last_frontier
    }

    /// Starts journaling for a speculative move.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn begin_txn(&mut self) {
        assert!(self.journal.is_none(), "timing transaction already active");
        self.journal = Some(Journal::default());
    }

    /// Makes all changes since [`TimingState::begin_txn`] permanent.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) {
        assert!(self.journal.is_some(), "no timing transaction to commit");
        self.journal = None;
    }

    /// Restores the state at [`TimingState::begin_txn`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn rollback(&mut self) {
        let journal = self
            .journal
            .take()
            .expect("no timing transaction to roll back");
        for (i, v) in journal.arr {
            self.arr[i] = v;
        }
        for (i, v) in journal.endpoint_arr {
            self.endpoint_arr[i] = v;
        }
        for (i, v) in journal.net_delays {
            self.net_delays[i] = v;
        }
        if let Some(w) = journal.worst {
            self.worst = w;
        }
    }

    /// Recomputes the delays of `changed` nets and propagates arrivals to
    /// the boundaries through a min-level frontier. Returns the new worst
    /// delay.
    pub fn update_nets(
        &mut self,
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
        changed: &[NetId],
    ) -> f64 {
        self.last_frontier = 0;
        if changed.is_empty() {
            return self.worst;
        }
        self.save_worst();

        // Frontier keyed by level so arrival refreshes happen in dependency
        // order even across reconvergent fanout.
        let mut frontier: BinaryHeap<Reverse<(u32, CellId)>> = BinaryHeap::new();
        let mut queued = vec![false; netlist.num_cells()];
        let mut endpoint_dirty = vec![false; netlist.num_cells()];

        for &net in changed {
            self.save_net(net);
            self.net_delays[net.index()] = net_sink_delays(arch, netlist, placement, routing, net);
            for s in netlist.net(net).sinks() {
                let kind = netlist.cell(s.cell).kind();
                if kind.is_boundary() {
                    if is_endpoint(kind) {
                        endpoint_dirty[s.cell.index()] = true;
                    }
                } else if !queued[s.cell.index()] {
                    queued[s.cell.index()] = true;
                    frontier.push(Reverse((self.levels.level(s.cell), s.cell)));
                }
            }
        }

        while let Some(Reverse((_, cell))) = frontier.pop() {
            self.last_frontier += 1;
            queued[cell.index()] = false;
            let new_arr = worst_input_arrival(netlist, &self.arr, &self.net_delays, cell)
                .unwrap_or(0.0)
                + cell_intrinsic_delay(arch, netlist.cell(cell).kind());
            if (new_arr - self.arr[cell.index()]).abs() <= EPS {
                continue;
            }
            self.save_arr(cell);
            self.arr[cell.index()] = new_arr;
            if let Some(net) = netlist.driven_net(cell) {
                for s in netlist.net(net).sinks() {
                    let kind = netlist.cell(s.cell).kind();
                    if kind.is_boundary() {
                        if is_endpoint(kind) {
                            endpoint_dirty[s.cell.index()] = true;
                        }
                    } else if !queued[s.cell.index()] {
                        queued[s.cell.index()] = true;
                        frontier.push(Reverse((self.levels.level(s.cell), s.cell)));
                    }
                }
            }
        }

        let endpoints = std::mem::take(&mut self.endpoints);
        for &e in &endpoints {
            if !endpoint_dirty[e.index()] {
                continue;
            }
            let ea = worst_input_arrival(netlist, &self.arr, &self.net_delays, e).unwrap_or(0.0)
                + endpoint_intrinsic_delay(arch, netlist.cell(e).kind());
            if (ea - self.endpoint_arr[e.index()]).abs() > EPS {
                self.save_endpoint(e);
                self.endpoint_arr[e.index()] = ea;
            }
        }
        self.endpoints = endpoints;
        self.worst = self.scan_worst();
        self.worst
    }

    fn scan_worst(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|e| self.endpoint_arr[e.index()])
            .fold(0.0f64, f64::max)
    }

    fn save_arr(&mut self, cell: CellId) {
        if let Some(j) = &mut self.journal {
            j.arr.entry(cell.index()).or_insert(self.arr[cell.index()]);
        }
    }

    fn save_endpoint(&mut self, cell: CellId) {
        if let Some(j) = &mut self.journal {
            j.endpoint_arr
                .entry(cell.index())
                .or_insert(self.endpoint_arr[cell.index()]);
        }
    }

    fn save_net(&mut self, net: NetId) {
        if let Some(j) = &mut self.journal {
            j.net_delays
                .entry(net.index())
                .or_insert_with(|| self.net_delays[net.index()].clone());
        }
    }

    fn save_worst(&mut self) {
        if let Some(j) = &mut self.journal {
            j.worst.get_or_insert(self.worst);
        }
    }
}

/// Deterministic corruption hooks for the resilience layer's fault-injection
/// tests. Compiled only with the `fault-inject` feature; never called by
/// production code.
#[cfg(feature = "fault-inject")]
impl TimingState {
    /// Skews the cached worst-case delay by `delta_ps` — simulates a missed
    /// frontier propagation that left the cost term `T` stale.
    pub fn fault_skew_worst(&mut self, delta_ps: f64) {
        self.worst += delta_ps;
    }

    /// Skews the arrival time of the cell with index `cell % num_cells` by
    /// `delta_ps` — a silent mid-cone divergence that a worst-only check
    /// would miss.
    pub fn fault_skew_arrival(&mut self, cell: usize, delta_ps: f64) {
        let idx = cell % self.arr.len().max(1);
        if idx < self.arr.len() {
            self.arr[idx] += delta_ps;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::{route_batch, RouterConfig};

    fn problem(seed: u64) -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 4,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(6)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(24)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, seed).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 8);
        (arch, nl, p, st)
    }

    #[test]
    fn initial_state_matches_sta() {
        let (arch, nl, p, st) = problem(3);
        let ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        let sta = crate::Sta::analyze(&arch, &nl, &p, &st).unwrap();
        assert!((ts.worst() - sta.worst_delay()).abs() < 1e-6);
        for (id, c) in nl.cells() {
            if c.kind().has_output() {
                assert!((ts.arrival(id) - sta.arrival(id)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn incremental_update_matches_full_reanalysis() {
        let (arch, nl, mut p, mut st) = problem(5);
        let cfg = RouterConfig::default();
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();

        let cells: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| !c.kind().is_io())
            .map(|(id, _)| id)
            .collect();
        for w in cells.windows(2).take(20) {
            // Move, rip up, reroute — then update incrementally and compare
            // against a from-scratch analysis.
            p.swap_sites(&arch, p.site_of(w[0]), p.site_of(w[1]));
            let mut changed: Vec<NetId> = nl.nets_of_cell(w[0]);
            changed.extend(nl.nets_of_cell(w[1]));
            changed.sort_unstable();
            changed.dedup();
            st.rip_up_cell(&nl, w[0]);
            st.rip_up_cell(&nl, w[1]);
            st.route_incremental(&arch, &nl, &p, &cfg);
            let worst = ts.update_nets(&arch, &nl, &p, &st, &changed);

            let oracle = TimingState::new(&arch, &nl, &p, &st).unwrap();
            assert!(
                (worst - oracle.worst()).abs() < 1e-6,
                "incremental {worst} != full {}",
                oracle.worst()
            );
            for (id, c) in nl.cells() {
                if c.kind().has_output() {
                    assert!(
                        (ts.arrival(id) - oracle.arrival(id)).abs() < 1e-6,
                        "arrival mismatch on {id:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rollback_restores_timing_exactly() {
        let (arch, nl, mut p, mut st) = problem(9);
        let cfg = RouterConfig::default();
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        let reference = ts.clone();

        let cells: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| !c.kind().is_io())
            .map(|(id, _)| id)
            .collect();
        let (a, b) = (cells[0], cells[1]);

        ts.begin_txn();
        st.begin_txn();
        p.swap_sites(&arch, p.site_of(a), p.site_of(b));
        let mut changed = nl.nets_of_cell(a);
        changed.extend(nl.nets_of_cell(b));
        changed.sort_unstable();
        changed.dedup();
        st.rip_up_cell(&nl, a);
        st.rip_up_cell(&nl, b);
        st.route_incremental(&arch, &nl, &p, &cfg);
        ts.update_nets(&arch, &nl, &p, &st, &changed);
        // reject
        ts.rollback();
        st.rollback();
        p.swap_sites(&arch, p.site_of(a), p.site_of(b)); // p.site_of(a) is b's old site now

        assert_eq!(ts.worst(), reference.worst());
        for (id, _) in nl.cells() {
            assert_eq!(ts.arrival(id), reference.arrival(id));
        }
        for (id, _) in nl.nets() {
            assert_eq!(ts.net_delays(id), reference.net_delays(id));
        }
    }

    #[test]
    fn empty_update_is_free() {
        let (arch, nl, p, st) = problem(2);
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        let w = ts.worst();
        assert_eq!(ts.update_nets(&arch, &nl, &p, &st, &[]), w);
        assert_eq!(ts.last_frontier(), 0);
    }

    #[test]
    #[should_panic(expected = "transaction already active")]
    fn nested_timing_transactions_are_rejected() {
        let (arch, nl, p, st) = problem(2);
        let mut ts = TimingState::new(&arch, &nl, &p, &st).unwrap();
        ts.begin_txn();
        ts.begin_txn();
    }
}
