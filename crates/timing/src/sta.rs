//! Full static timing analysis and critical path extraction.
//!
//! Paths are bounded by primary inputs, primary outputs and sequential
//! cells (paper §3.5). The long-path problem is considered and all paths
//! are assumed sensitizable — a conservative simplification the paper makes
//! explicitly. The same analyzer scores layouts from both the simultaneous
//! and the sequential flow, so improvement numbers compare like with like.

use rowfpga_arch::Architecture;
use rowfpga_netlist::{CellId, CellKind, CombLoopError, Levels, NetId, Netlist, PinRef};
use rowfpga_place::Placement;
use rowfpga_route::RoutingState;

use crate::delay::{cell_intrinsic_delay, endpoint_intrinsic_delay, net_sink_delays};

/// One cell on a critical path, with the signal's arrival time at its
/// output (or, for the terminal endpoint, at the path's end).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathElement {
    /// The cell.
    pub cell: CellId,
    /// Arrival time at this element, in picoseconds.
    pub arrival: f64,
}

/// The worst (longest) register-to-register / boundary-to-boundary path.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Path cells from launching boundary to capturing endpoint.
    pub elements: Vec<PathElement>,
    /// Total path delay in picoseconds (equals the worst-case `T`).
    pub delay: f64,
}

/// A completed static timing analysis.
#[derive(Clone, Debug)]
pub struct Sta {
    arr: Vec<f64>,
    endpoint_arr: Vec<f64>,
    net_delays: Vec<Vec<f64>>,
    worst: f64,
    worst_endpoint: Option<CellId>,
}

impl Sta {
    /// Analyzes the design under the given placement and routing: computes
    /// every cell's output arrival time and the worst endpoint arrival.
    ///
    /// Interconnect delays are exact Elmore numbers for embedded nets and
    /// spatial-extent estimates otherwise, so the analysis is meaningful at
    /// any stage of layout.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if the netlist has a combinational cycle.
    pub fn analyze(
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
    ) -> Result<Sta, CombLoopError> {
        Self::analyze_observed(
            arch,
            netlist,
            placement,
            routing,
            &rowfpga_obs::Obs::disabled(),
        )
    }

    /// Like [`analyze`](Self::analyze), with an observability handle: a
    /// `sta.full` span plus counters for the cells and endpoints visited
    /// and a histogram of the worst endpoint arrival.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if the netlist has a combinational cycle.
    pub fn analyze_observed(
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
        obs: &rowfpga_obs::Obs,
    ) -> Result<Sta, CombLoopError> {
        obs.span_start("sta.full");
        let out = Self::analyze_inner(arch, netlist, placement, routing);
        if let Ok(sta) = &out {
            obs.inc("sta.full.passes");
            obs.add("sta.full.cells", netlist.num_cells() as u64);
            obs.observe("sta.full.worst_delay", sta.worst);
        }
        obs.span_end("sta.full");
        out
    }

    fn analyze_inner(
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
    ) -> Result<Sta, CombLoopError> {
        let levels = Levels::compute(netlist)?;
        let net_delays: Vec<Vec<f64>> = netlist
            .nets()
            .map(|(id, _)| net_sink_delays(arch, netlist, placement, routing, id))
            .collect();

        let mut arr = vec![0.0f64; netlist.num_cells()];
        for (id, cell) in netlist.cells() {
            if matches!(cell.kind(), CellKind::Input | CellKind::Seq) {
                arr[id.index()] = cell_intrinsic_delay(arch, cell.kind());
            }
        }
        for &cell in levels.order() {
            let kind = netlist.cell(cell).kind();
            let worst_input = worst_input_arrival(netlist, &arr, &net_delays, cell).unwrap_or(0.0);
            arr[cell.index()] = worst_input + cell_intrinsic_delay(arch, kind);
        }

        let mut endpoint_arr = vec![f64::NEG_INFINITY; netlist.num_cells()];
        let mut worst = 0.0f64;
        let mut worst_endpoint = None;
        for (id, cell) in netlist.cells() {
            if !is_endpoint(cell.kind()) {
                continue;
            }
            let ea = worst_input_arrival(netlist, &arr, &net_delays, id).unwrap_or(0.0)
                + endpoint_intrinsic_delay(arch, cell.kind());
            endpoint_arr[id.index()] = ea;
            if ea > worst {
                worst = ea;
                worst_endpoint = Some(id);
            }
        }

        Ok(Sta {
            arr,
            endpoint_arr,
            net_delays,
            worst,
            worst_endpoint,
        })
    }

    /// The worst-case path delay `T`, in picoseconds.
    pub fn worst_delay(&self) -> f64 {
        self.worst
    }

    /// Arrival time at a cell's output (meaningful for signal-driving
    /// cells).
    pub fn arrival(&self, cell: CellId) -> f64 {
        self.arr[cell.index()]
    }

    /// Arrival at an endpoint (primary output or flip-flop data input);
    /// `NEG_INFINITY` for non-endpoints.
    pub fn endpoint_arrival(&self, cell: CellId) -> f64 {
        self.endpoint_arr[cell.index()]
    }

    /// The interconnect delay of a net to each sink, as used in this
    /// analysis.
    pub fn net_delays(&self, net: NetId) -> &[f64] {
        &self.net_delays[net.index()]
    }

    /// Extracts the worst path by backtracking from the worst endpoint
    /// through each cell's latest-arriving input.
    pub fn critical_path(&self, netlist: &Netlist) -> CriticalPath {
        let Some(endpoint) = self.worst_endpoint else {
            return CriticalPath {
                elements: Vec::new(),
                delay: 0.0,
            };
        };
        let mut elements = vec![PathElement {
            cell: endpoint,
            arrival: self.worst,
        }];
        let mut cursor = endpoint;
        while let Some((driver, _)) = argmax_input(netlist, &self.arr, &self.net_delays, cursor) {
            elements.push(PathElement {
                cell: driver,
                arrival: self.arr[driver.index()],
            });
            if netlist.cell(driver).kind().is_boundary() {
                break;
            }
            cursor = driver;
        }
        elements.reverse();
        CriticalPath {
            elements,
            delay: self.worst,
        }
    }
}

/// Whether paths terminate at this kind of cell.
pub(crate) fn is_endpoint(kind: CellKind) -> bool {
    matches!(kind, CellKind::Output | CellKind::Seq)
}

/// The latest input arrival of `cell`: max over its input pins of the
/// driver's arrival plus the net delay to that pin. `None` if the cell has
/// no connected inputs.
pub(crate) fn worst_input_arrival(
    netlist: &Netlist,
    arr: &[f64],
    net_delays: &[Vec<f64>],
    cell: CellId,
) -> Option<f64> {
    argmax_input(netlist, arr, net_delays, cell).map(|(_, a)| a)
}

/// The input driver achieving the latest arrival at `cell`, with that
/// arrival.
pub(crate) fn argmax_input(
    netlist: &Netlist,
    arr: &[f64],
    net_delays: &[Vec<f64>],
    cell: CellId,
) -> Option<(CellId, f64)> {
    let kind = netlist.cell(cell).kind();
    let first_input = u8::from(kind.has_output());
    let mut best: Option<(CellId, f64)> = None;
    for pin in first_input..kind.num_pins() as u8 {
        let pin_ref = PinRef::new(cell, pin);
        let Some(net) = netlist.net_of(pin_ref) else {
            continue;
        };
        let n = netlist.net(net);
        let sink_idx = n
            .sinks()
            .iter()
            .position(|s| *s == pin_ref)
            .expect("pin is a sink of its net");
        let a = arr[n.driver().cell.index()] + net_delays[net.index()][sink_idx];
        if best.is_none_or(|(_, b)| a > b) {
            best = Some((n.driver().cell, a));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::{route_batch, RouterConfig};

    fn problem() -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 4,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(6)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(24)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 7).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 8);
        assert!(out.fully_routed);
        (arch, nl, p, st)
    }

    #[test]
    fn worst_delay_exceeds_intrinsic_floor() {
        let (arch, nl, p, st) = problem();
        let sta = Sta::analyze(&arch, &nl, &p, &st).unwrap();
        // any path passes at least one module
        assert!(sta.worst_delay() > arch.delay().t_comb.min(arch.delay().t_io));
        assert!(sta.worst_delay().is_finite());
    }

    #[test]
    fn observed_analysis_records_span_and_metrics() {
        let (arch, nl, p, st) = problem();
        let obs = rowfpga_obs::Obs::metrics_only();
        let sta = Sta::analyze_observed(&arch, &nl, &p, &st, &obs).unwrap();
        let plain = Sta::analyze(&arch, &nl, &p, &st).unwrap();
        assert_eq!(sta.worst_delay(), plain.worst_delay());
        obs.with_session(|s| {
            assert_eq!(s.metrics.counter("sta.full.passes"), 1);
            assert_eq!(s.metrics.counter("sta.full.cells") as usize, nl.num_cells());
            assert_eq!(s.profiler.total("sta.full").expect("span").calls, 1);
        })
        .unwrap();
    }

    #[test]
    fn critical_path_is_consistent() {
        let (arch, nl, p, st) = problem();
        let sta = Sta::analyze(&arch, &nl, &p, &st).unwrap();
        let cp = sta.critical_path(&nl);
        assert!(!cp.elements.is_empty());
        assert_eq!(cp.delay, sta.worst_delay());
        // starts at a boundary, ends at an endpoint
        let first = nl.cell(cp.elements[0].cell).kind();
        let last = nl.cell(cp.elements.last().unwrap().cell).kind();
        assert!(first.is_boundary(), "path starts at {first:?}");
        assert!(is_endpoint(last), "path ends at {last:?}");
        // arrivals are non-decreasing along the path
        for w in cp.elements.windows(2) {
            assert!(w[0].arrival <= w[1].arrival + 1e-9);
        }
    }

    #[test]
    fn arrivals_are_monotone_in_level() {
        let (arch, nl, p, st) = problem();
        let sta = Sta::analyze(&arch, &nl, &p, &st).unwrap();
        let levels = Levels::compute(&nl).unwrap();
        // every comb cell arrives strictly after its input drivers
        for &cell in levels.order() {
            for net in nl.nets_of_cell(cell) {
                let n = nl.net(net);
                if n.driver().cell == cell {
                    continue;
                }
                assert!(
                    sta.arrival(cell) > sta.arrival(n.driver().cell),
                    "cell {cell:?} not after its driver"
                );
            }
        }
    }

    #[test]
    fn worse_interconnect_worsens_the_clock() {
        let (arch, nl, p, st) = problem();
        let base = Sta::analyze(&arch, &nl, &p, &st).unwrap().worst_delay();
        let slow_arch = {
            let mut b = Architecture::builder()
                .rows(6)
                .cols(14)
                .io_columns(2)
                .tracks_per_channel(24);
            b = b.delay(rowfpga_arch::DelayParams::slow_antifuse());
            b.build().unwrap()
        };
        // same placement/routing topology on the slow fabric
        let slow = Sta::analyze(&slow_arch, &nl, &p, &st)
            .unwrap()
            .worst_delay();
        assert!(slow > base);
    }

    #[test]
    fn unplaced_routing_still_analyzes_with_estimates() {
        let (arch, nl, p, _) = problem();
        let st = RoutingState::new(&arch, &nl); // all unrouted
        let sta = Sta::analyze(&arch, &nl, &p, &st).unwrap();
        assert!(sta.worst_delay() > 0.0);
    }
}

impl Sta {
    /// A human-readable critical-path report: one line per path element
    /// with the element's kind, its arrival time and the increment over the
    /// previous element (cell delay plus interconnect delay of the hop).
    pub fn report(&self, netlist: &Netlist) -> String {
        use std::fmt::Write as _;
        let cp = self.critical_path(netlist);
        let mut out = format!(
            "critical path: {:.2} ns over {} elements\n",
            cp.delay / 1000.0,
            cp.elements.len()
        );
        let mut prev: Option<f64> = None;
        for e in &cp.elements {
            let cell = netlist.cell(e.cell);
            let inc = prev.map(|p| e.arrival - p).unwrap_or(e.arrival);
            let _ = writeln!(
                out,
                "  {:<16} {:<8} arrives {:>9.2} ns  (+{:.2} ns)",
                cell.name(),
                cell.kind().to_string(),
                e.arrival / 1000.0,
                inc / 1000.0
            );
            prev = Some(e.arrival);
        }
        out
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::{route_batch, RouterConfig};

    #[test]
    fn report_lists_every_path_element_with_monotone_arrivals() {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .tracks_per_channel(14)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 2).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 4);
        let sta = Sta::analyze(&arch, &nl, &p, &st).unwrap();
        let report = sta.report(&nl);
        let cp = sta.critical_path(&nl);
        assert_eq!(report.lines().count(), cp.elements.len() + 1);
        assert!(report.starts_with("critical path:"));
        assert!(
            !report.contains("(+-"),
            "negative increment in report:\n{report}"
        );
    }
}
