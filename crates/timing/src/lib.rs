//! Static and incremental timing analysis for row-based FPGA layout.
//!
//! Antifuse interconnect makes delay a function of the *number of
//! antifuses* on a path at least as much as of its length (paper §2.1), so
//! the worst-case delay term `T` of the simultaneous layout cost function is
//! computed from the physical embedding:
//!
//! * **Elmore delay** ([`elmore_sink_delays`]) over the exact RC tree of a
//!   fully embedded net — every claimed segment contributes distributed
//!   wire RC and every programmed antifuse a series resistance and shunt
//!   capacitance (paper §3.5, first moment of the AWE analysis the authors
//!   scored with RICE \[12\]);
//! * **spatial-extent estimates** ([`estimate_sink_delay`]) for nets that
//!   are not yet physically embedded, relating the net's bounding box to
//!   the probable number of antifuses it will encounter;
//! * a full **static timing analysis** ([`Sta`]) used to score finished
//!   layouts of both flows, including critical-path extraction;
//! * the **incremental engine** ([`TimingState`]): cells are levelized once
//!   (connectivity only), and after each move the changed nets' delays are
//!   recomputed and propagated through a min-level frontier of affected
//!   cells until it empties (paper §3.5 and Figure 5), with transactional
//!   undo for rejected moves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod elmore;
mod estimate;
mod sta;
mod state;

pub use delay::{
    cell_intrinsic_delay, endpoint_intrinsic_delay, net_sink_delays, net_sink_delays_into,
};
pub use elmore::{elmore_sink_delays, elmore_sink_delays_into, ElmoreScratch};
pub use estimate::estimate_sink_delay;
pub use sta::{CriticalPath, PathElement, Sta};
pub use state::TimingState;
