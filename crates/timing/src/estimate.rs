//! Spatial-extent delay estimation for unembedded nets.
//!
//! During simultaneous layout not every net is physically embedded at all
//! times. For those the paper (§3.5) resorts to crude estimators that
//! relate the known spatial extent of the net to the probable number of
//! antifuses it will encounter. The estimate here counts the horizontal
//! antifuses a span-covering run would statistically need (span divided by
//! the fabric's mean segment length), the vertical antifuses of a chain
//! crossing the net's channel range, and the cross antifuses of the taps,
//! then charges a lumped RC product. It is deliberately cheap and
//! conservative; the cost function's routability terms coerce nets into
//! embeddings where the exact Elmore number takes over.

use rowfpga_arch::Architecture;
use rowfpga_netlist::{NetId, Netlist};
use rowfpga_place::Placement;
use rowfpga_route::net_extents;

/// Estimated driver-to-sink delay of an unembedded net (one number for all
/// sinks: without an embedding there is nothing to distinguish them).
pub fn estimate_sink_delay(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    net: NetId,
) -> f64 {
    let p = arch.delay();
    // Only the bounding box matters here; skip the per-channel span
    // breakdown (and its allocation) a full requirements record carries.
    let (chan_min, chan_max, col_min, col_max) = net_extents(arch, netlist, placement, net);
    let fanout = netlist.net(net).fanout() as f64;

    let width = (col_max - col_min) as f64;
    let height = (chan_max - chan_min) as f64;

    // Probable antifuse count: horizontal joints along the span, vertical
    // joints along the chain, one tap per channel crossed plus the driver
    // and sink cross antifuses.
    let mean_seg = arch.mean_hseg_len().max(1.0);
    let h_joints = width / mean_seg;
    let v_joints = height / 2.0;
    let taps = height + 1.0 + fanout;
    let n_antifuse = h_joints + v_joints + taps;

    // Lumped capacitance of the probable embedding. The wire the net will
    // claim is at least its half-perimeter; segment quantization rounds the
    // claimed wire up to whole segments, captured by one extra mean segment
    // per channel crossed.
    let c_wire = p.c_wire * (width + height + (height + 1.0) * mean_seg * 0.5);
    let c_total = c_wire + n_antifuse * p.c_antifuse + fanout * p.c_input;

    // The driver sees all of it; downstream antifuse resistance sees on
    // average half of it.
    p.r_driver * c_total + n_antifuse * p.r_antifuse * 0.5 * c_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::CellKind;
    use rowfpga_route::net_requirements;

    fn two_pin_problem(rows: usize, cols: usize) -> (Architecture, Netlist) {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let q = b.add_cell("q", CellKind::Output);
        b.connect("n", a, [(q, 0)]).unwrap();
        let nl = b.build().unwrap();
        let arch = Architecture::builder()
            .rows(rows)
            .cols(cols)
            .io_columns(1)
            .build()
            .unwrap();
        (arch, nl)
    }

    #[test]
    fn estimates_are_finite_and_positive() {
        let (arch, nl) = two_pin_problem(4, 12);
        let p = Placement::random(&arch, &nl, 3).unwrap();
        let d = estimate_sink_delay(&arch, &nl, &p, rowfpga_netlist::NetId::new(0));
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn longer_extent_estimates_slower() {
        // Same fabric, pick the placement seed giving the wider bbox; its
        // estimate must be larger.
        let (arch, nl) = two_pin_problem(6, 20);
        let net = rowfpga_netlist::NetId::new(0);
        let mut best: Option<(usize, f64)> = None;
        let mut worst: Option<(usize, f64)> = None;
        for seed in 0..10u64 {
            let p = Placement::random(&arch, &nl, seed).unwrap();
            let req = net_requirements(&arch, &nl, &p, net);
            let extent = (req.col_max - req.col_min) + 2 * (req.chan_max - req.chan_min);
            let d = estimate_sink_delay(&arch, &nl, &p, net);
            if best.is_none_or(|(e, _)| extent < e) {
                best = Some((extent, d));
            }
            if worst.is_none_or(|(e, _)| extent > e) {
                worst = Some((extent, d));
            }
        }
        let (short_e, short_d) = best.unwrap();
        let (long_e, long_d) = worst.unwrap();
        assert!(short_e < long_e, "seeds produced no extent variation");
        assert!(
            short_d < long_d,
            "shorter extent ({short_e}) estimated slower ({short_d}) than longer ({long_e}: {long_d})"
        );
    }

    #[test]
    fn estimate_scales_with_antifuse_resistance() {
        let (arch, nl) = two_pin_problem(4, 12);
        let p = Placement::random(&arch, &nl, 3).unwrap();
        let net = rowfpga_netlist::NetId::new(0);
        let base = estimate_sink_delay(&arch, &nl, &p, net);
        let slow_arch = Architecture::builder()
            .rows(4)
            .cols(12)
            .io_columns(1)
            .delay(rowfpga_arch::DelayParams::slow_antifuse())
            .build()
            .unwrap();
        let slow = estimate_sink_delay(&slow_arch, &nl, &p, net);
        assert!(
            slow > base,
            "5x antifuse resistance must raise the estimate"
        );
    }
}
