//! Top-level simultaneous place-and-route driver.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rowfpga_anneal::{
    anneal_parallel_observed, replica_seed, AnnealConfig, Annealer, ParallelConfig,
};
use rowfpga_arch::Architecture;
use rowfpga_netlist::{CombLoopError, Netlist};
use rowfpga_obs::{Event, Json, Obs, RerouteRecord};
use rowfpga_place::{CreatePlacementError, MoveWeights, Placement};
use rowfpga_route::{route_batch_observed, RouterConfig, RoutingState};
use rowfpga_timing::{CriticalPath, Sta};

use crate::cost::CostConfig;
use crate::dynamics::DynamicsTrace;
#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::problem::LayoutProblem;
use crate::snapshot::{
    arch_fingerprint, netlist_fingerprint, BestLayout, Checkpoint, CheckpointError, WriteFault,
    CHECKPOINT_VERSION,
};

/// Errors the layout engines can raise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// The design does not fit the chip.
    Placement(CreatePlacementError),
    /// The design has a combinational loop; timing is undefined.
    CombLoop(CombLoopError),
    /// Checkpoint I/O, decoding or validation failed.
    Checkpoint(CheckpointError),
    /// The self-audit found a divergence that bounded repair could not
    /// clear (repair rebuilds from ground truth, so this indicates a bug
    /// or active corruption, not a recoverable condition).
    Audit {
        /// The divergence that survived every repair attempt.
        detail: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Placement(e) => write!(f, "placement failed: {e}"),
            LayoutError::CombLoop(e) => write!(f, "timing undefined: {e}"),
            LayoutError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            LayoutError::Audit { detail } => write!(f, "unrepairable state divergence: {detail}"),
        }
    }
}

impl Error for LayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LayoutError::Placement(e) => Some(e),
            LayoutError::CombLoop(e) => Some(e),
            LayoutError::Checkpoint(e) => Some(e),
            LayoutError::Audit { .. } => None,
        }
    }
}

/// Why a layout run returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The annealing schedule terminated normally.
    Converged,
    /// The wall-clock or temperature budget expired; the result is the
    /// best layout reached by then.
    Deadline,
    /// A stop was requested (e.g. SIGINT); the result is the best layout
    /// reached by then.
    Interrupted,
    /// The schedule converged, but only after at least one audit-triggered
    /// state repair along the way.
    Repaired,
}

impl StopReason {
    /// The journal spelling of the reason.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::Deadline => "deadline",
            StopReason::Interrupted => "interrupted",
            StopReason::Repaired => "repaired",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A cooperative stop request, checked between temperature steps: the
/// current temperature always finishes, then the run writes its final
/// checkpoint and returns with [`StopReason::Interrupted`].
///
/// Cloning shares the flag; [`StopFlag::watching`] additionally observes a
/// `'static` atomic (the shape a signal handler can set).
#[derive(Clone, Debug)]
pub struct StopFlag {
    local: Arc<AtomicBool>,
    external: Option<&'static AtomicBool>,
    armed: bool,
}

impl StopFlag {
    /// A flag that can never fire — the zero-overhead default of
    /// [`SimultaneousPlaceRoute::run`].
    pub fn none() -> StopFlag {
        StopFlag {
            local: Arc::new(AtomicBool::new(false)),
            external: None,
            armed: false,
        }
    }

    /// A flag fired by calling [`StopFlag::request_stop`] on any clone.
    pub fn manual() -> StopFlag {
        StopFlag {
            armed: true,
            ..StopFlag::none()
        }
    }

    /// A flag that also observes `external` — typically a static the
    /// process's signal handler sets.
    pub fn watching(external: &'static AtomicBool) -> StopFlag {
        StopFlag {
            local: Arc::new(AtomicBool::new(false)),
            external: Some(external),
            armed: true,
        }
    }

    /// Requests a graceful stop.
    pub fn request_stop(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn is_set(&self) -> bool {
        self.local.load(Ordering::SeqCst) || self.external.is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Whether this flag could ever fire (false only for
    /// [`StopFlag::none`]); an armed flag turns on best-so-far tracking.
    pub fn armed(&self) -> bool {
        self.armed
    }
}

impl Default for StopFlag {
    fn default() -> Self {
        StopFlag::none()
    }
}

/// Resilience knobs of a run: checkpoint cadence, resume source, stop
/// budgets, and the self-audit/repair loop. The default disables
/// everything, keeping the engine's hot path untouched.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Write checkpoints here ([`None`] disables checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many temperatures (minimum 1); a
    /// final checkpoint is also written whenever a run stops early.
    pub checkpoint_every: usize,
    /// Retention depth: keep this many snapshot generations next to
    /// `checkpoint_path` (see [`crate::generation_path`]), deleting older
    /// ones after each successful write. The base path always holds the
    /// newest snapshot. `0` disables generations entirely (single-file
    /// checkpointing); GC never deletes the only valid snapshot.
    pub checkpoint_keep: usize,
    /// Resume from this checkpoint instead of a fresh random placement.
    /// When the file is missing or corrupt, the newest valid retention
    /// generation is loaded instead (corrupt generations are quarantined);
    /// only if no generation decodes either does the resume fail.
    pub resume_path: Option<PathBuf>,
    /// Wall-clock budget; the run finishes the current temperature,
    /// checkpoints, and returns [`StopReason::Deadline`].
    pub deadline: Option<Duration>,
    /// Whole-run temperature budget (counts resumed temperatures too);
    /// stopping on it is also tagged [`StopReason::Deadline`]. Unlike the
    /// wall-clock deadline it is deterministic, which makes it the lever
    /// the resume-equivalence tests use.
    pub temp_budget: Option<usize>,
    /// Run the self-audit every this many temperatures (0 disables).
    pub audit_every: usize,
    /// Repair attempts per failed audit before giving up.
    pub max_repairs: usize,
    /// Deterministic fault schedule delivered at temperature boundaries
    /// (test builds only).
    #[cfg(feature = "fault-inject")]
    pub faults: Option<FaultPlan>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            checkpoint_path: None,
            checkpoint_every: 5,
            checkpoint_keep: 3,
            resume_path: None,
            deadline: None,
            temp_budget: None,
            audit_every: 0,
            max_repairs: 3,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }
}

impl ResilienceConfig {
    /// Whether any resilience feature is on (turns on best-so-far
    /// tracking).
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        if self.faults.is_some() {
            return true;
        }
        self.checkpoint_path.is_some()
            || self.resume_path.is_some()
            || self.deadline.is_some()
            || self.temp_budget.is_some()
            || self.audit_every > 0
    }
}

/// Configuration of the simultaneous flow.
#[derive(Clone, Debug, PartialEq)]
pub struct SimPrConfig {
    /// Incremental router weights.
    pub router: RouterConfig,
    /// Annealing schedule. A `moves_per_temp` of 0 selects the automatic
    /// `n^(4/3)` budget for `n` cells.
    pub anneal: AnnealConfig,
    /// Cost component emphasis.
    pub cost: CostConfig,
    /// Move class mix.
    pub move_weights: MoveWeights,
    /// Seed of the initial random placement.
    pub placement_seed: u64,
    /// Rip-up-and-retry rounds of the final repair pass (placement frozen),
    /// applied only if annealing ends with unrouted nets; 0 disables.
    pub final_repair_passes: usize,
    /// Greedy zero-temperature cleanup moves attempted when annealing
    /// freezes with unrouted nets left (only improving or neutral moves are
    /// accepted); 0 disables.
    pub cleanup_moves: usize,
    /// Checkpoint/resume, deadlines and the self-audit loop.
    pub resilience: ResilienceConfig,
    /// Annealing replicas run in parallel by
    /// [`SimultaneousPlaceRoute::run_parallel`] (1 = sequential). The
    /// sequential entry points ignore this field.
    pub threads: usize,
}

impl Default for SimPrConfig {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            anneal: AnnealConfig {
                moves_per_temp: 0, // auto
                ..AnnealConfig::default()
            },
            cost: CostConfig::default(),
            move_weights: MoveWeights::default(),
            placement_seed: 1,
            final_repair_passes: 6,
            cleanup_moves: 20_000,
            resilience: ResilienceConfig::default(),
            threads: 1,
        }
    }
}

impl SimPrConfig {
    /// A low-effort profile for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            anneal: AnnealConfig {
                moves_per_temp: 0,
                max_temps: 40,
                ..AnnealConfig::fast()
            },
            ..Self::default()
        }
    }

    /// Sets the seeds (placement and annealing) together.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self.anneal.seed = seed.wrapping_add(0x9e37);
        self
    }
}

/// A finished layout with its quality metrics.
#[derive(Clone, Debug)]
pub struct LayoutResult {
    /// Final cell placement (and pinmaps).
    pub placement: Placement,
    /// Final routing state.
    pub routing: RoutingState,
    /// Whether every net was fully routed.
    pub fully_routed: bool,
    /// Nets without a global route at the end.
    pub globally_unrouted: usize,
    /// Nets without a complete detailed route at the end.
    pub incomplete: usize,
    /// Worst-case path delay (ps) from the final standalone analysis.
    pub worst_delay: f64,
    /// The critical path of the final layout.
    pub critical_path: CriticalPath,
    /// Per-temperature dynamics (paper Figure 6 data). A resumed run's
    /// trace includes the temperatures recorded before the checkpoint.
    pub dynamics: DynamicsTrace,
    /// Temperatures executed by the annealer over the whole run.
    pub temperatures: usize,
    /// Total annealing moves attempted over the whole run.
    pub total_moves: usize,
    /// Wall-clock time of this process's share of the run.
    pub runtime: Duration,
    /// Why the run returned.
    pub stop_reason: StopReason,
    /// Audit-triggered repairs performed during the run (carried across
    /// resume).
    pub repairs: usize,
}

/// The paper's simultaneous placement, global and detailed routing tool.
#[derive(Clone, Debug)]
pub struct SimultaneousPlaceRoute {
    config: SimPrConfig,
}

impl SimultaneousPlaceRoute {
    /// Creates a driver with the given configuration.
    pub fn new(config: SimPrConfig) -> SimultaneousPlaceRoute {
        SimultaneousPlaceRoute { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimPrConfig {
        &self.config
    }

    /// Lays out `netlist` on `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or
    /// contains a combinational loop.
    pub fn run(&self, arch: &Architecture, netlist: &Netlist) -> Result<LayoutResult, LayoutError> {
        self.run_observed(arch, netlist, "design", &Obs::disabled())
    }

    /// Like [`SimultaneousPlaceRoute::run`], with an observability handle:
    /// the run emits a `run_start` header (seed and configuration), one
    /// `temperature` and one `dynamics` event per annealing temperature,
    /// `reroute` summaries, `audit`/`repair`/`checkpoint` events when the
    /// resilience layer is active, and a `stop` + `run_end` footer with a
    /// metrics snapshot; phase spans cover warmup, annealing, cleanup,
    /// final repair, and the final timing analysis. `label` names the
    /// design in the journal. A disabled handle makes this identical to
    /// `run`.
    pub fn run_observed(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
        label: &str,
        obs: &Obs,
    ) -> Result<LayoutResult, LayoutError> {
        self.run_with_stop(arch, netlist, label, obs, &StopFlag::none())
    }

    /// Like [`SimultaneousPlaceRoute::run_observed`], with a cooperative
    /// [`StopFlag`]: when it fires, the run finishes the current
    /// temperature, writes a final checkpoint (if checkpointing is
    /// configured) and returns its best-so-far layout tagged
    /// [`StopReason::Interrupted`].
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip,
    /// contains a combinational loop, a configured resume checkpoint does
    /// not load or match this design and seeds, or the self-audit finds an
    /// unrepairable divergence.
    pub fn run_with_stop(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
        label: &str,
        obs: &Obs,
        stop: &StopFlag,
    ) -> Result<LayoutResult, LayoutError> {
        // rowfpga-lint: allow(determinism) reason=wall-clock is deadline/telemetry only and never steers the search
        let start = Instant::now();
        let res = &self.config.resilience;
        if obs.enabled() {
            obs.emit(Event::RunStart {
                flow: "simultaneous".into(),
                benchmark: label.into(),
                seed: self.config.placement_seed,
                config: self.config_capture(netlist),
            });
        }
        let mut anneal_cfg = self.config.anneal.clone();
        if anneal_cfg.moves_per_temp == 0 {
            anneal_cfg.moves_per_temp = AnnealConfig::moves_for_cells(netlist.num_cells(), 1.0);
        }

        // Resume source is loaded and validated before any state is built:
        // a stale or foreign checkpoint must fail fast.
        let resumed: Option<Checkpoint> = match &res.resume_path {
            Some(path) => {
                // The base path holds the newest snapshot; when it is
                // missing or torn (crashed mid-promotion, disk fault),
                // fall back to the newest retention generation that still
                // decodes before giving up.
                let ck = match Checkpoint::load(path) {
                    Ok(ck) => ck,
                    Err(primary) => match crate::snapshot::load_newest_generation(path) {
                        Some((ck, source)) => {
                            if obs.enabled() {
                                obs.emit(Event::Warning {
                                    code: "checkpoint.fallback".into(),
                                    detail: format!(
                                        "{primary}; resumed from generation {}",
                                        source.display()
                                    ),
                                });
                            }
                            ck
                        }
                        None => return Err(LayoutError::Checkpoint(primary)),
                    },
                };
                ck.validate(arch, netlist, self.config.placement_seed, anneal_cfg.seed)
                    .map_err(LayoutError::Checkpoint)?;
                Some(ck)
            }
            None => None,
        };

        // Fingerprints are stable over the run; hash once.
        let fingerprints = res
            .checkpoint_path
            .as_ref()
            .map(|_| (arch_fingerprint(arch), netlist_fingerprint(netlist)));

        let mut problem: LayoutProblem<'_>;
        let mut annealer: Annealer;
        let mut repairs_total: usize;
        let mut best: Option<BestLayout>;
        match &resumed {
            Some(ck) => {
                problem = LayoutProblem::restore(
                    arch,
                    netlist,
                    self.config.router,
                    self.config.cost,
                    self.config.move_weights,
                    &ck.problem,
                )?
                .with_obs(obs.clone());
                annealer = Annealer::resume(&anneal_cfg, &ck.cursor);
                repairs_total = ck.repairs;
                best = ck.best.clone();
                obs.span_start("anneal");
            }
            None => {
                problem = LayoutProblem::new(
                    arch,
                    netlist,
                    self.config.router,
                    self.config.cost,
                    self.config.move_weights,
                    self.config.placement_seed,
                )?
                .with_obs(obs.clone());
                obs.span_start("anneal");
                annealer = Annealer::start(&mut problem, &anneal_cfg, obs);
                repairs_total = 0;
                best = None;
            }
        }

        let track_best = res.enabled() || stop.armed();
        #[cfg(feature = "fault-inject")]
        let mut faults = res.faults.clone().unwrap_or_default();

        let mut stop_reason = StopReason::Converged;
        loop {
            if annealer.finished() {
                break;
            }
            if stop.is_set() {
                stop_reason = StopReason::Interrupted;
                break;
            }
            if res.deadline.is_some_and(|d| start.elapsed() >= d) {
                stop_reason = StopReason::Deadline;
                break;
            }
            if res
                .temp_budget
                .is_some_and(|b| annealer.temperatures_completed() >= b)
            {
                stop_reason = StopReason::Deadline;
                break;
            }
            if annealer.step(&mut problem, obs).is_none() {
                break;
            }
            let t = annealer.temperatures_completed();

            #[cfg(feature = "fault-inject")]
            let write_fault = {
                let mut wf: Option<WriteFault> = None;
                for fault in faults.take_at(t) {
                    match fault.write_fault() {
                        Some(w) => wf = Some(w),
                        None => {
                            problem.inject_fault(&fault);
                        }
                    }
                }
                wf
            };
            #[cfg(not(feature = "fault-inject"))]
            let write_fault: Option<WriteFault> = None;

            if res.audit_every > 0 && t.is_multiple_of(res.audit_every) {
                match obs.span("audit", || problem.audit()) {
                    Ok(()) => {
                        obs.inc("audit.passed");
                        if obs.enabled() {
                            obs.emit(Event::Audit {
                                temp: t,
                                ok: true,
                                detail: String::new(),
                            });
                        }
                    }
                    Err(detail) => {
                        obs.inc("audit.failed");
                        if obs.enabled() {
                            obs.emit(Event::Audit {
                                temp: t,
                                ok: false,
                                detail: detail.clone(),
                            });
                        }
                        repairs_total += 1;
                        Self::repair(&mut problem, t, &detail, res.max_repairs, obs)?;
                    }
                }
            }

            if track_best {
                let key = (
                    problem.routing().incomplete(),
                    problem.routing().globally_unrouted(),
                    problem.timing().worst(),
                );
                let improved = match &best {
                    None => true,
                    Some(b) => key < b.key(),
                };
                if improved {
                    let snap = problem.snapshot();
                    best = Some(BestLayout {
                        sites: snap.sites,
                        pinmaps: snap.pinmaps,
                        routes: snap.routes,
                        incomplete: key.0,
                        globally_unrouted: key.1,
                        worst_delay: key.2,
                    });
                }
            }

            if let (Some(path), Some(fp)) = (&res.checkpoint_path, fingerprints) {
                if t.is_multiple_of(res.checkpoint_every.max(1)) {
                    self.write_checkpoint(
                        path,
                        t,
                        fp,
                        anneal_cfg.seed,
                        &problem,
                        &annealer,
                        repairs_total,
                        &best,
                        write_fault,
                        obs,
                    );
                }
            }
        }
        obs.span_end("anneal");

        // Graceful shutdown: an early stop leaves one final checkpoint at
        // the boundary the run actually reached — unless no temperature
        // completed. The problem snapshot is only restorable at a true
        // temperature boundary (`on_temperature` has just reset the delta
        // statistics and perturbation flags); the post-warmup state is
        // not one, so a temp-0 checkpoint would resume into a run that
        // diverges from a fresh start. With zero progress there is
        // nothing worth resuming anyway: no file means the restart runs
        // fresh, which is bit-identical by definition.
        if stop_reason != StopReason::Converged && annealer.temperatures_completed() > 0 {
            if let (Some(path), Some(fp)) = (&res.checkpoint_path, fingerprints) {
                self.write_checkpoint(
                    path,
                    annealer.temperatures_completed(),
                    fp,
                    anneal_cfg.seed,
                    &problem,
                    &annealer,
                    repairs_total,
                    &best,
                    None,
                    obs,
                );
            }
        }

        // Zero-temperature cleanup: when the schedule froze with a few nets
        // still unrouted, a burst of greedy (improving-only) moves usually
        // shakes the last stragglers loose — the placement-level leverage of
        // §2.1 applied once more, without the stochastic uphill component.
        // Early-stopped runs skip it: they return promptly with what they
        // have.
        if stop_reason == StopReason::Converged
            && problem.routing().incomplete() > 0
            && self.config.cleanup_moves > 0
        {
            use rand::SeedableRng as _;
            use rowfpga_anneal::AnnealProblem as _;
            obs.span_start("cleanup");
            let mut rng = rand::rngs::StdRng::seed_from_u64(anneal_cfg.seed.wrapping_add(0x51ea9));
            for _ in 0..self.config.cleanup_moves {
                let (applied, delta) = problem.propose_and_apply(&mut rng);
                obs.inc("cleanup.moves");
                if delta <= 0.0 {
                    problem.commit(applied);
                    obs.inc("cleanup.accepted");
                } else {
                    problem.undo(applied);
                }
                if problem.routing().incomplete() == 0 {
                    break;
                }
            }
            obs.span_end("cleanup");
        }

        let final_cost = {
            use rowfpga_anneal::AnnealProblem as _;
            problem.cost()
        };
        let current_key = (
            problem.routing().incomplete(),
            problem.routing().globally_unrouted(),
            problem.timing().worst(),
        );
        let (mut placement, mut routing, dynamics) = problem.into_parts();
        if stop_reason == StopReason::Converged {
            if !routing.is_fully_routed() && self.config.final_repair_passes > 0 {
                // Placement is frozen now; a few rip-up-and-retry rounds often
                // recover the last stragglers, exactly as a sequential flow's
                // router would.
                let repair = obs.span("final_repair", || {
                    route_batch_observed(
                        &mut routing,
                        arch,
                        netlist,
                        &placement,
                        &self.config.router,
                        self.config.final_repair_passes,
                        obs,
                    )
                });
                if obs.enabled() {
                    obs.add("route.detail_failures", repair.detail_failures as u64);
                    obs.emit(Event::Reroute {
                        scope: "final_repair".into(),
                        stats: RerouteRecord {
                            globally_routed: repair.globally_routed,
                            detail_routed: repair.detail_routed,
                            detail_failures: repair.detail_failures,
                        },
                    });
                }
            }
        } else if let Some(b) = best.as_ref().filter(|b| b.key() < current_key) {
            // Degradation: the run is returning early, and a strictly
            // better layout was seen along the way — hand that one back.
            if let (Ok(p), Ok(r)) = (
                Placement::from_parts(arch, netlist, &b.sites, &b.pinmaps),
                RoutingState::restore(arch, netlist, &b.routes),
            ) {
                placement = p;
                routing = r;
            }
        }

        let sta = obs.span("final_sta", || {
            Sta::analyze_observed(arch, netlist, &placement, &routing, obs)
                .map_err(LayoutError::CombLoop)
        })?;
        let critical_path = sta.critical_path(netlist);
        if stop_reason == StopReason::Converged && repairs_total > 0 {
            stop_reason = StopReason::Repaired;
        }
        let result = LayoutResult {
            fully_routed: routing.is_fully_routed(),
            globally_unrouted: routing.globally_unrouted(),
            incomplete: routing.incomplete(),
            worst_delay: sta.worst_delay(),
            critical_path,
            dynamics,
            temperatures: annealer.temperatures_completed(),
            total_moves: annealer.total_moves(),
            runtime: start.elapsed(),
            stop_reason,
            repairs: repairs_total,
            placement,
            routing,
        };
        if obs.enabled() {
            obs.emit(Event::Stop {
                reason: stop_reason.to_string(),
                temps: result.temperatures,
                repairs: repairs_total,
            });
            let metrics = obs
                .with_session(|s| s.metrics.to_json())
                .unwrap_or(Json::Null);
            obs.emit(Event::RunEnd {
                cost: final_cost,
                worst_delay: result.worst_delay,
                unrouted: result.incomplete,
                total_moves: result.total_moves,
                temperatures: result.temperatures,
                runtime_sec: result.runtime.as_secs_f64(),
                metrics,
            });
            obs.flush();
        }
        Ok(result)
    }

    /// Lays out `netlist` on `arch` with [`SimPrConfig::threads`] parallel
    /// annealing replicas exchanging their best layout at temperature
    /// boundaries (see [`anneal_parallel_observed`]). Replica `r` starts
    /// from the
    /// random placement seeded [`replica_seed`]`(placement_seed, r)` and
    /// anneals with seed `replica_seed(anneal.seed, r)`, so `threads == 1`
    /// reproduces the sequential flow bit-for-bit. The best replica's final
    /// layout then gets the same zero-temperature cleanup, final repair
    /// pass and standalone timing analysis as the sequential flow.
    ///
    /// The result is deterministic in `(config, threads)` — thread
    /// scheduling cannot change it. The resilience layer (checkpoints,
    /// resume, audits, deadlines) is not supported here; callers should
    /// reject such configurations up front.
    ///
    /// In the result, `temperatures` and `dynamics` describe the winning
    /// replica's walk while `total_moves` counts work across all replicas.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or
    /// contains a combinational loop (both checked before any thread is
    /// spawned).
    pub fn run_parallel(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
        label: &str,
        obs: &Obs,
    ) -> Result<LayoutResult, LayoutError> {
        let threads = self.config.threads.max(1);
        if threads == 1 {
            return self.run_observed(arch, netlist, label, obs);
        }
        // rowfpga-lint: allow(determinism) reason=wall-clock is deadline/telemetry only and never steers the search
        let start = Instant::now();
        if obs.enabled() {
            obs.emit(Event::RunStart {
                flow: "simultaneous".into(),
                benchmark: label.into(),
                seed: self.config.placement_seed,
                config: self.config_capture(netlist),
            });
        }
        let mut anneal_cfg = self.config.anneal.clone();
        if anneal_cfg.moves_per_temp == 0 {
            anneal_cfg.moves_per_temp = AnnealConfig::moves_for_cells(netlist.num_cells(), 1.0);
        }

        // Fail fast on the caller's thread: replica construction inside
        // worker threads can only fail the same ways, so these checks make
        // the factory's panics unreachable.
        Placement::random(arch, netlist, self.config.placement_seed)
            .map_err(LayoutError::Placement)?;
        LayoutProblem::check_levelizable(netlist).map_err(LayoutError::CombLoop)?;

        obs.span_start("anneal");
        let outcome = anneal_parallel_observed(
            |r| {
                LayoutProblem::new(
                    arch,
                    netlist,
                    self.config.router,
                    self.config.cost,
                    self.config.move_weights,
                    replica_seed(self.config.placement_seed, r),
                )
                .expect("replica construction was pre-validated")
            },
            threads,
            &anneal_cfg,
            &ParallelConfig::default(),
            obs,
        );
        obs.span_end("anneal");
        if obs.enabled() {
            obs.observe("parallel.exchanges", outcome.exchanges as f64);
            for r in &outcome.replicas {
                obs.observe("parallel.adoptions", r.adoptions as f64);
            }
        }

        let mut problem = LayoutProblem::restore(
            arch,
            netlist,
            self.config.router,
            self.config.cost,
            self.config.move_weights,
            &outcome.best,
        )?
        .with_obs(obs.clone());

        if problem.routing().incomplete() > 0 && self.config.cleanup_moves > 0 {
            use rand::SeedableRng as _;
            use rowfpga_anneal::AnnealProblem as _;
            obs.span_start("cleanup");
            let cleanup_seed =
                replica_seed(anneal_cfg.seed, outcome.best_replica).wrapping_add(0x51ea9);
            let mut rng = rand::rngs::StdRng::seed_from_u64(cleanup_seed);
            for _ in 0..self.config.cleanup_moves {
                let (applied, delta) = problem.propose_and_apply(&mut rng);
                obs.inc("cleanup.moves");
                if delta <= 0.0 {
                    problem.commit(applied);
                    obs.inc("cleanup.accepted");
                } else {
                    problem.undo(applied);
                }
                if problem.routing().incomplete() == 0 {
                    break;
                }
            }
            obs.span_end("cleanup");
        }

        let final_cost = {
            use rowfpga_anneal::AnnealProblem as _;
            problem.cost()
        };
        let (placement, mut routing, dynamics) = problem.into_parts();
        if !routing.is_fully_routed() && self.config.final_repair_passes > 0 {
            let repair = obs.span("final_repair", || {
                route_batch_observed(
                    &mut routing,
                    arch,
                    netlist,
                    &placement,
                    &self.config.router,
                    self.config.final_repair_passes,
                    obs,
                )
            });
            if obs.enabled() {
                obs.add("route.detail_failures", repair.detail_failures as u64);
                obs.emit(Event::Reroute {
                    scope: "final_repair".into(),
                    stats: RerouteRecord {
                        globally_routed: repair.globally_routed,
                        detail_routed: repair.detail_routed,
                        detail_failures: repair.detail_failures,
                    },
                });
            }
        }

        let sta = obs.span("final_sta", || {
            Sta::analyze_observed(arch, netlist, &placement, &routing, obs)
                .map_err(LayoutError::CombLoop)
        })?;
        let critical_path = sta.critical_path(netlist);
        let best = &outcome.replicas[outcome.best_replica].outcome;
        let result = LayoutResult {
            fully_routed: routing.is_fully_routed(),
            globally_unrouted: routing.globally_unrouted(),
            incomplete: routing.incomplete(),
            worst_delay: sta.worst_delay(),
            critical_path,
            dynamics,
            temperatures: best.temperatures,
            total_moves: outcome.replicas.iter().map(|r| r.outcome.total_moves).sum(),
            runtime: start.elapsed(),
            stop_reason: StopReason::Converged,
            repairs: 0,
            placement,
            routing,
        };
        if obs.enabled() {
            obs.emit(Event::Stop {
                reason: result.stop_reason.to_string(),
                temps: result.temperatures,
                repairs: 0,
            });
            let metrics = obs
                .with_session(|s| s.metrics.to_json())
                .unwrap_or(Json::Null);
            obs.emit(Event::RunEnd {
                cost: final_cost,
                worst_delay: result.worst_delay,
                unrouted: result.incomplete,
                total_moves: result.total_moves,
                temperatures: result.temperatures,
                runtime_sec: result.runtime.as_secs_f64(),
                metrics,
            });
            obs.flush();
        }
        Ok(result)
    }

    /// Bounded repair after a failed audit: a timing-only divergence gets
    /// a tier-1 timing rebuild first; anything else (or a failed tier-1)
    /// discards and re-derives the routing too. Every attempt is
    /// re-audited before it counts as a success.
    fn repair(
        problem: &mut LayoutProblem<'_>,
        temp: usize,
        detail: &str,
        max_repairs: usize,
        obs: &Obs,
    ) -> Result<(), LayoutError> {
        let timing_only = detail.starts_with("timing");
        let attempts = max_repairs.max(1);
        for attempt in 1..=attempts {
            let scope = if timing_only && attempt == 1 {
                "timing"
            } else {
                "routing"
            };
            let rebuilt = obs.span("repair", || {
                if scope == "timing" {
                    problem.rebuild_timing()
                } else {
                    problem.rebuild_routing()
                }
            });
            let ok = rebuilt.is_ok() && problem.audit().is_ok();
            obs.inc("repair.attempts");
            if obs.enabled() {
                obs.emit(Event::Repair {
                    temp,
                    attempt,
                    scope: scope.into(),
                    ok,
                });
            }
            if ok {
                return Ok(());
            }
        }
        Err(LayoutError::Audit {
            detail: format!(
                "audit still failing after {attempts} repair attempts at temperature {temp}: {detail}"
            ),
        })
    }

    /// Assembles and atomically writes one checkpoint, reporting the
    /// outcome to the journal. Write failures are non-fatal: the run keeps
    /// going and the previous complete snapshot stays in place.
    #[allow(clippy::too_many_arguments)]
    fn write_checkpoint(
        &self,
        path: &Path,
        temp: usize,
        fingerprints: (u64, u64),
        anneal_seed: u64,
        problem: &LayoutProblem<'_>,
        annealer: &Annealer,
        repairs: usize,
        best: &Option<BestLayout>,
        fault: Option<WriteFault>,
        obs: &Obs,
    ) {
        let ck = Checkpoint {
            version: CHECKPOINT_VERSION,
            arch_fingerprint: fingerprints.0,
            netlist_fingerprint: fingerprints.1,
            placement_seed: self.config.placement_seed,
            anneal_seed,
            repairs,
            cursor: annealer.cursor(),
            problem: problem.snapshot(),
            best: best.clone(),
        };
        let keep = self.config.resilience.checkpoint_keep;
        let written = obs.span("checkpoint", || {
            if keep == 0 {
                ck.save(path, fault)
            } else {
                ck.save_generation(path, temp, keep, fault)
            }
        });
        let (ok, detail) = match written {
            Ok(()) => {
                obs.inc("checkpoint.written");
                (true, String::new())
            }
            Err(e) => {
                obs.inc("checkpoint.failed");
                (false, e.to_string())
            }
        };
        if obs.enabled() {
            obs.emit(Event::Checkpoint {
                temp,
                path: path.display().to_string(),
                ok,
                detail,
            });
        }
    }

    /// Key/value capture of the run configuration for the journal header.
    fn config_capture(&self, netlist: &Netlist) -> Vec<(String, Json)> {
        let c = &self.config;
        vec![
            ("cells".into(), netlist.num_cells().into()),
            ("nets".into(), netlist.num_nets().into()),
            ("placement_seed".into(), c.placement_seed.into()),
            ("anneal_seed".into(), c.anneal.seed.into()),
            ("moves_per_temp".into(), c.anneal.moves_per_temp.into()),
            ("warmup_moves".into(), c.anneal.warmup_moves.into()),
            ("max_temps".into(), c.anneal.max_temps.into()),
            ("lambda".into(), c.anneal.lambda.into()),
            ("global_emphasis".into(), c.cost.global_emphasis.into()),
            ("detail_emphasis".into(), c.cost.detail_emphasis.into()),
            ("timing_emphasis".into(), c.cost.timing_emphasis.into()),
            ("wastage_weight".into(), c.router.wastage_weight.into()),
            ("segment_weight".into(), c.router.segment_weight.into()),
            ("final_repair_passes".into(), c.final_repair_passes.into()),
            ("cleanup_moves".into(), c.cleanup_moves.into()),
            ("threads".into(), c.threads.into()),
            ("audit_every".into(), c.resilience.audit_every.into()),
            (
                "checkpoint_every".into(),
                c.resilience.checkpoint_every.into(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::{route_batch, verify_routing};

    fn fixture() -> (Architecture, Netlist) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(16)
            .build()
            .unwrap();
        (arch, nl)
    }

    fn temp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    /// Removes a checkpoint together with its retention generations.
    fn remove_checkpoint_family(base: &Path) {
        let _ = std::fs::remove_file(base);
        for (_, path) in crate::list_generations(base) {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn fast_run_routes_a_small_design_fully() {
        let (arch, nl) = fixture();
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        assert!(result.fully_routed, "left {} incomplete", result.incomplete);
        assert_eq!(result.incomplete, 0);
        assert!(result.worst_delay > 0.0);
        assert!(!result.critical_path.elements.is_empty());
        assert!(!result.dynamics.is_empty());
        assert!(result.temperatures > 0);
        assert_eq!(result.stop_reason, StopReason::Converged);
        assert_eq!(result.repairs, 0);
        verify_routing(&result.routing, &arch, &nl, &result.placement).unwrap();
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let (arch, nl) = fixture();
        let run = |seed: u64| {
            SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(seed))
                .run(&arch, &nl)
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.worst_delay, b.worst_delay);
        assert_eq!(a.total_moves, b.total_moves);
        for (id, _) in nl.cells() {
            assert_eq!(a.placement.site_of(id), b.placement.site_of(id));
        }
    }

    #[test]
    fn parallel_with_one_thread_matches_the_sequential_flow() {
        let (arch, nl) = fixture();
        let cfg = SimPrConfig::fast().with_seed(5);
        let tool = SimultaneousPlaceRoute::new(cfg);
        let seq = tool.run(&arch, &nl).unwrap();
        let par = tool
            .run_parallel(&arch, &nl, "design", &Obs::disabled())
            .unwrap();
        assert_eq!(seq.worst_delay, par.worst_delay);
        assert_eq!(seq.total_moves, par.total_moves);
        assert_eq!(seq.incomplete, par.incomplete);
        for (id, _) in nl.cells() {
            assert_eq!(seq.placement.site_of(id), par.placement.site_of(id));
        }
    }

    #[test]
    fn parallel_runs_are_deterministic_and_legal() {
        let (arch, nl) = fixture();
        let mut cfg = SimPrConfig::fast().with_seed(5);
        cfg.threads = 2;
        let tool = SimultaneousPlaceRoute::new(cfg);
        let run = || {
            tool.run_parallel(&arch, &nl, "design", &Obs::disabled())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.worst_delay, b.worst_delay);
        assert_eq!(a.total_moves, b.total_moves);
        assert_eq!(a.incomplete, b.incomplete);
        for (id, _) in nl.cells() {
            assert_eq!(a.placement.site_of(id), b.placement.site_of(id));
        }
        verify_routing(&a.routing, &arch, &nl, &a.placement).unwrap();
        let sta = Sta::analyze(&arch, &nl, &a.placement, &a.routing).unwrap();
        assert_eq!(sta.worst_delay(), a.worst_delay);
    }

    #[test]
    fn annealing_beats_the_initial_random_layout_on_delay() {
        let (arch, nl) = fixture();
        // initial: random placement + batch route
        let placement = Placement::random(&arch, &nl, 1).unwrap();
        let mut routing = RoutingState::new(&arch, &nl);
        route_batch(
            &mut routing,
            &arch,
            &nl,
            &placement,
            &RouterConfig::default(),
            6,
        );
        let initial = Sta::analyze(&arch, &nl, &placement, &routing).unwrap();

        let result = SimultaneousPlaceRoute::new(SimPrConfig::default())
            .run(&arch, &nl)
            .unwrap();
        assert!(
            result.worst_delay < initial.worst_delay(),
            "annealed {} not better than random {}",
            result.worst_delay,
            initial.worst_delay()
        );
    }

    #[test]
    fn observed_run_writes_a_parseable_journal() {
        use rowfpga_obs::{json, Event, Obs, RunJournal};

        let (arch, nl) = fixture();
        let path = temp_file("rowfpga_engine_journal_test.jsonl");
        let file = std::fs::File::create(&path).unwrap();
        let obs = Obs::with_sink(Box::new(RunJournal::new(std::io::BufWriter::new(file))));
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run_observed(&arch, &nl, "fixture", &obs)
            .unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let docs = json::parse_lines(&text).unwrap();
        let events: Vec<Event> = docs.iter().filter_map(Event::from_json).collect();
        assert_eq!(
            events.len(),
            docs.len(),
            "every line must parse to an event"
        );

        assert!(
            matches!(&events[0], Event::JournalHeader { schema, .. }
                if *schema == rowfpga_obs::SCHEMA_VERSION),
            "first line must be the schema header"
        );
        assert!(
            matches!(&events[1], Event::RunStart { benchmark, .. } if benchmark == "fixture"),
            "run_start must follow the header"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SpanStart { name, .. } if name == "anneal")),
            "phase spans are journaled"
        );
        let temps = events
            .iter()
            .filter(|e| matches!(e, Event::Temperature(_)))
            .count();
        assert_eq!(temps, result.temperatures);
        let dynamics = events
            .iter()
            .filter(|e| matches!(e, Event::Dynamics(_)))
            .count();
        assert_eq!(dynamics, result.dynamics.len());
        assert!(
            matches!(
                &events[events.len() - 2],
                Event::Stop { reason, .. } if reason == "converged"
            ),
            "second-to-last event must be the stop record"
        );
        match events.last().unwrap() {
            Event::RunEnd {
                total_moves,
                temperatures,
                metrics,
                ..
            } => {
                assert_eq!(*total_moves, result.total_moves);
                assert_eq!(*temperatures, result.temperatures);
                assert!(metrics.get("counters").is_some(), "metrics snapshot");
            }
            other => panic!("last event must be run_end, got {other:?}"),
        }

        // The metrics report renders with all three sections populated.
        let report = obs.render_report().unwrap();
        assert!(report.contains("phase breakdown"), "{report}");
        assert!(report.contains("anneal"), "{report}");
        assert!(report.contains("move.proposed.exchange"), "{report}");
        assert!(report.contains("sta.frontier_cells"), "{report}");
    }

    #[test]
    fn observation_does_not_change_the_layout() {
        use rowfpga_obs::Obs;

        let (arch, nl) = fixture();
        let driver = SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(9));
        let plain = driver.run(&arch, &nl).unwrap();
        let observed = driver
            .run_observed(&arch, &nl, "fixture", &Obs::metrics_only())
            .unwrap();
        assert_eq!(plain.worst_delay, observed.worst_delay);
        assert_eq!(plain.total_moves, observed.total_moves);
        assert_eq!(plain.incomplete, observed.incomplete);
        for (id, _) in nl.cells() {
            assert_eq!(plain.placement.site_of(id), observed.placement.site_of(id));
        }
    }

    #[test]
    fn reports_failures_on_a_starved_fabric() {
        let (arch, nl) = fixture();
        let narrow = arch.with_tracks(1).unwrap();
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run(&narrow, &nl)
            .unwrap();
        assert!(!result.fully_routed);
        assert!(result.incomplete > 0);
    }

    #[test]
    fn audits_on_a_clean_run_pass_and_change_nothing() {
        let (arch, nl) = fixture();
        let plain = SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(3))
            .run(&arch, &nl)
            .unwrap();
        let mut cfg = SimPrConfig::fast().with_seed(3);
        cfg.resilience.audit_every = 2;
        let audited = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
        assert_eq!(audited.stop_reason, StopReason::Converged);
        assert_eq!(audited.repairs, 0);
        // The audit is read-only: the trajectory is bit-identical.
        assert_eq!(audited.worst_delay, plain.worst_delay);
        assert_eq!(audited.total_moves, plain.total_moves);
        for (id, _) in nl.cells() {
            assert_eq!(audited.placement.site_of(id), plain.placement.site_of(id));
        }
    }

    #[test]
    fn zero_deadline_stops_immediately_and_leaves_no_temp0_checkpoint() {
        let (arch, nl) = fixture();
        let ckpt = temp_file("rowfpga_engine_zero_deadline.json");
        remove_checkpoint_family(&ckpt);
        let mut cfg = SimPrConfig::fast().with_seed(4);
        cfg.resilience.deadline = Some(Duration::ZERO);
        cfg.resilience.checkpoint_path = Some(ckpt.clone());
        let result = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
        assert_eq!(result.stop_reason, StopReason::Deadline);
        assert_eq!(result.temperatures, 0, "no step may start past a deadline");
        // The post-warmup state is not a restorable temperature boundary
        // (delta statistics and perturbation flags are still live), so a
        // zero-progress stop must NOT leave a checkpoint: a restart runs
        // fresh, which is the only bit-identical continuation.
        assert!(
            !ckpt.exists(),
            "a stop before the first temperature must not checkpoint"
        );
        assert!(crate::snapshot::list_generations(&ckpt).is_empty());
        verify_routing(&result.routing, &arch, &nl, &result.placement).unwrap();
    }

    #[test]
    fn stop_flag_interrupts_before_the_first_step() {
        let (arch, nl) = fixture();
        let stop = StopFlag::manual();
        stop.request_stop();
        assert!(stop.is_set() && stop.armed());
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run_with_stop(&arch, &nl, "fixture", &Obs::disabled(), &stop)
            .unwrap();
        assert_eq!(result.stop_reason, StopReason::Interrupted);
        assert_eq!(result.temperatures, 0);
    }

    #[test]
    fn checkpoint_then_resume_is_bit_identical_to_an_uninterrupted_run() {
        let (arch, nl) = fixture();
        let ckpt = temp_file("rowfpga_engine_resume_identity.json");
        remove_checkpoint_family(&ckpt);

        let full = SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(7))
            .run(&arch, &nl)
            .unwrap();

        // Stop after 5 temperatures, checkpointing every temperature.
        let mut cfg = SimPrConfig::fast().with_seed(7);
        cfg.resilience.temp_budget = Some(5);
        cfg.resilience.checkpoint_path = Some(ckpt.clone());
        cfg.resilience.checkpoint_every = 1;
        let partial = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
        assert_eq!(partial.stop_reason, StopReason::Deadline);
        assert_eq!(partial.temperatures, 5);

        // Resume to completion.
        let mut cfg = SimPrConfig::fast().with_seed(7);
        cfg.resilience.resume_path = Some(ckpt.clone());
        let resumed = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
        remove_checkpoint_family(&ckpt);

        assert_eq!(resumed.stop_reason, StopReason::Converged);
        assert_eq!(resumed.worst_delay, full.worst_delay);
        assert_eq!(resumed.total_moves, full.total_moves);
        assert_eq!(resumed.temperatures, full.temperatures);
        assert_eq!(resumed.incomplete, full.incomplete);
        assert_eq!(resumed.dynamics.samples(), full.dynamics.samples());
        for (id, _) in nl.cells() {
            assert_eq!(resumed.placement.site_of(id), full.placement.site_of(id));
        }
        verify_routing(&resumed.routing, &arch, &nl, &resumed.placement).unwrap();
    }

    #[test]
    fn resume_rejects_a_checkpoint_for_a_different_design_or_seed() {
        let (arch, nl) = fixture();
        let ckpt = temp_file("rowfpga_engine_resume_mismatch.json");
        remove_checkpoint_family(&ckpt);
        let mut cfg = SimPrConfig::fast().with_seed(2);
        cfg.resilience.temp_budget = Some(2);
        cfg.resilience.checkpoint_path = Some(ckpt.clone());
        cfg.resilience.checkpoint_every = 1;
        SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();

        let resume_cfg = |seed: u64| {
            let mut cfg = SimPrConfig::fast().with_seed(seed);
            cfg.resilience.resume_path = Some(ckpt.clone());
            cfg
        };

        // Wrong architecture.
        let wide = arch.with_tracks(17).unwrap();
        let err = SimultaneousPlaceRoute::new(resume_cfg(2))
            .run(&wide, &nl)
            .unwrap_err();
        assert!(matches!(
            err,
            LayoutError::Checkpoint(CheckpointError::ArchMismatch { .. })
        ));

        // Wrong seed.
        let err = SimultaneousPlaceRoute::new(resume_cfg(3))
            .run(&arch, &nl)
            .unwrap_err();
        assert!(matches!(
            err,
            LayoutError::Checkpoint(CheckpointError::SeedMismatch { .. })
        ));

        // Missing file.
        let mut cfg = SimPrConfig::fast().with_seed(2);
        cfg.resilience.resume_path = Some(temp_file("rowfpga_engine_no_such_ckpt.json"));
        let err = SimultaneousPlaceRoute::new(cfg)
            .run(&arch, &nl)
            .unwrap_err();
        assert!(matches!(
            err,
            LayoutError::Checkpoint(CheckpointError::Io { .. })
        ));
        remove_checkpoint_family(&ckpt);
    }

    #[test]
    fn resume_falls_back_to_a_generation_when_the_base_checkpoint_is_torn() {
        let (arch, nl) = fixture();
        let ckpt = temp_file("rowfpga_engine_gen_fallback.json");
        remove_checkpoint_family(&ckpt);

        let full = SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(11))
            .run(&arch, &nl)
            .unwrap();

        let mut cfg = SimPrConfig::fast().with_seed(11);
        cfg.resilience.temp_budget = Some(5);
        cfg.resilience.checkpoint_path = Some(ckpt.clone());
        cfg.resilience.checkpoint_every = 1;
        SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();

        let gens = crate::list_generations(&ckpt);
        assert_eq!(
            gens.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "default retention keeps the three newest generations"
        );

        // Tear the base snapshot; the newest generation carries the run.
        std::fs::write(&ckpt, "{\"format\":\"rowfpga-checkpoint\"").unwrap();
        let mut cfg = SimPrConfig::fast().with_seed(11);
        cfg.resilience.resume_path = Some(ckpt.clone());
        let resumed = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
        remove_checkpoint_family(&ckpt);

        assert_eq!(resumed.stop_reason, StopReason::Converged);
        assert_eq!(resumed.worst_delay, full.worst_delay);
        assert_eq!(resumed.total_moves, full.total_moves);
        assert_eq!(resumed.temperatures, full.temperatures);
        for (id, _) in nl.cells() {
            assert_eq!(resumed.placement.site_of(id), full.placement.site_of(id));
        }
        verify_routing(&resumed.routing, &arch, &nl, &resumed.placement).unwrap();
    }
}
