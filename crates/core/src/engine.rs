//! Top-level simultaneous place-and-route driver.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use rowfpga_anneal::{anneal_obs, AnnealConfig};
use rowfpga_arch::Architecture;
use rowfpga_netlist::{CombLoopError, Netlist};
use rowfpga_obs::{Event, Json, Obs, RerouteRecord};
use rowfpga_place::{CreatePlacementError, MoveWeights, Placement};
use rowfpga_route::{route_batch, RouterConfig, RoutingState};
use rowfpga_timing::{CriticalPath, Sta};

use crate::cost::CostConfig;
use crate::dynamics::DynamicsTrace;
use crate::problem::LayoutProblem;

/// Errors the layout engines can raise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// The design does not fit the chip.
    Placement(CreatePlacementError),
    /// The design has a combinational loop; timing is undefined.
    CombLoop(CombLoopError),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Placement(e) => write!(f, "placement failed: {e}"),
            LayoutError::CombLoop(e) => write!(f, "timing undefined: {e}"),
        }
    }
}

impl Error for LayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LayoutError::Placement(e) => Some(e),
            LayoutError::CombLoop(e) => Some(e),
        }
    }
}

/// Configuration of the simultaneous flow.
#[derive(Clone, Debug, PartialEq)]
pub struct SimPrConfig {
    /// Incremental router weights.
    pub router: RouterConfig,
    /// Annealing schedule. A `moves_per_temp` of 0 selects the automatic
    /// `n^(4/3)` budget for `n` cells.
    pub anneal: AnnealConfig,
    /// Cost component emphasis.
    pub cost: CostConfig,
    /// Move class mix.
    pub move_weights: MoveWeights,
    /// Seed of the initial random placement.
    pub placement_seed: u64,
    /// Rip-up-and-retry rounds of the final repair pass (placement frozen),
    /// applied only if annealing ends with unrouted nets; 0 disables.
    pub final_repair_passes: usize,
    /// Greedy zero-temperature cleanup moves attempted when annealing
    /// freezes with unrouted nets left (only improving or neutral moves are
    /// accepted); 0 disables.
    pub cleanup_moves: usize,
}

impl Default for SimPrConfig {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            anneal: AnnealConfig {
                moves_per_temp: 0, // auto
                ..AnnealConfig::default()
            },
            cost: CostConfig::default(),
            move_weights: MoveWeights::default(),
            placement_seed: 1,
            final_repair_passes: 6,
            cleanup_moves: 20_000,
        }
    }
}

impl SimPrConfig {
    /// A low-effort profile for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            anneal: AnnealConfig {
                moves_per_temp: 0,
                max_temps: 40,
                ..AnnealConfig::fast()
            },
            ..Self::default()
        }
    }

    /// Sets the seeds (placement and annealing) together.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self.anneal.seed = seed.wrapping_add(0x9e37);
        self
    }
}

/// A finished layout with its quality metrics.
#[derive(Clone, Debug)]
pub struct LayoutResult {
    /// Final cell placement (and pinmaps).
    pub placement: Placement,
    /// Final routing state.
    pub routing: RoutingState,
    /// Whether every net was fully routed.
    pub fully_routed: bool,
    /// Nets without a global route at the end.
    pub globally_unrouted: usize,
    /// Nets without a complete detailed route at the end.
    pub incomplete: usize,
    /// Worst-case path delay (ps) from the final standalone analysis.
    pub worst_delay: f64,
    /// The critical path of the final layout.
    pub critical_path: CriticalPath,
    /// Per-temperature dynamics (paper Figure 6 data).
    pub dynamics: DynamicsTrace,
    /// Temperatures executed by the annealer.
    pub temperatures: usize,
    /// Total annealing moves attempted.
    pub total_moves: usize,
    /// Wall-clock time of the run.
    pub runtime: Duration,
}

/// The paper's simultaneous placement, global and detailed routing tool.
#[derive(Clone, Debug)]
pub struct SimultaneousPlaceRoute {
    config: SimPrConfig,
}

impl SimultaneousPlaceRoute {
    /// Creates a driver with the given configuration.
    pub fn new(config: SimPrConfig) -> SimultaneousPlaceRoute {
        SimultaneousPlaceRoute { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimPrConfig {
        &self.config
    }

    /// Lays out `netlist` on `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or
    /// contains a combinational loop.
    pub fn run(&self, arch: &Architecture, netlist: &Netlist) -> Result<LayoutResult, LayoutError> {
        self.run_observed(arch, netlist, "design", &Obs::disabled())
    }

    /// Like [`SimultaneousPlaceRoute::run`], with an observability handle:
    /// the run emits a `run_start` header (seed and configuration), one
    /// `temperature` and one `dynamics` event per annealing temperature,
    /// `reroute` summaries, and a `run_end` footer with a metrics
    /// snapshot; phase spans cover warmup, annealing, cleanup, final
    /// repair, and the final timing analysis. `label` names the design in
    /// the journal. A disabled handle makes this identical to `run`.
    pub fn run_observed(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
        label: &str,
        obs: &Obs,
    ) -> Result<LayoutResult, LayoutError> {
        let start = Instant::now();
        if obs.enabled() {
            obs.emit(Event::RunStart {
                flow: "simultaneous".into(),
                benchmark: label.into(),
                seed: self.config.placement_seed,
                config: self.config_capture(netlist),
            });
        }
        let mut problem = LayoutProblem::new(
            arch,
            netlist,
            self.config.router,
            self.config.cost,
            self.config.move_weights,
            self.config.placement_seed,
        )?
        .with_obs(obs.clone());

        let mut anneal_cfg = self.config.anneal.clone();
        if anneal_cfg.moves_per_temp == 0 {
            anneal_cfg.moves_per_temp = AnnealConfig::moves_for_cells(netlist.num_cells(), 1.0);
        }
        obs.span_start("anneal");
        let outcome = anneal_obs(&mut problem, &anneal_cfg, |_| {}, obs);
        obs.span_end("anneal");

        // Zero-temperature cleanup: when the schedule froze with a few nets
        // still unrouted, a burst of greedy (improving-only) moves usually
        // shakes the last stragglers loose — the placement-level leverage of
        // §2.1 applied once more, without the stochastic uphill component.
        if problem.routing().incomplete() > 0 && self.config.cleanup_moves > 0 {
            use rand::SeedableRng as _;
            use rowfpga_anneal::AnnealProblem as _;
            obs.span_start("cleanup");
            let mut rng = rand::rngs::StdRng::seed_from_u64(anneal_cfg.seed.wrapping_add(0x51ea9));
            for _ in 0..self.config.cleanup_moves {
                let (applied, delta) = problem.propose_and_apply(&mut rng);
                obs.inc("cleanup.moves");
                if delta <= 0.0 {
                    problem.commit(applied);
                    obs.inc("cleanup.accepted");
                } else {
                    problem.undo(applied);
                }
                if problem.routing().incomplete() == 0 {
                    break;
                }
            }
            obs.span_end("cleanup");
        }

        let final_cost = {
            use rowfpga_anneal::AnnealProblem as _;
            problem.cost()
        };
        let (placement, mut routing, dynamics) = problem.into_parts();
        if !routing.is_fully_routed() && self.config.final_repair_passes > 0 {
            // Placement is frozen now; a few rip-up-and-retry rounds often
            // recover the last stragglers, exactly as a sequential flow's
            // router would.
            let repair = obs.span("final_repair", || {
                route_batch(
                    &mut routing,
                    arch,
                    netlist,
                    &placement,
                    &self.config.router,
                    self.config.final_repair_passes,
                )
            });
            if obs.enabled() {
                obs.add("route.detail_failures", repair.detail_failures as u64);
                obs.emit(Event::Reroute {
                    scope: "final_repair".into(),
                    stats: RerouteRecord {
                        globally_routed: repair.globally_routed,
                        detail_routed: repair.detail_routed,
                        detail_failures: repair.detail_failures,
                    },
                });
            }
        }

        let sta = obs.span("final_sta", || {
            Sta::analyze(arch, netlist, &placement, &routing).map_err(LayoutError::CombLoop)
        })?;
        let critical_path = sta.critical_path(netlist);
        let result = LayoutResult {
            fully_routed: routing.is_fully_routed(),
            globally_unrouted: routing.globally_unrouted(),
            incomplete: routing.incomplete(),
            worst_delay: sta.worst_delay(),
            critical_path,
            dynamics,
            temperatures: outcome.temperatures,
            total_moves: outcome.total_moves,
            runtime: start.elapsed(),
            placement,
            routing,
        };
        if obs.enabled() {
            let metrics = obs
                .with_session(|s| s.metrics.to_json())
                .unwrap_or(Json::Null);
            obs.emit(Event::RunEnd {
                cost: final_cost,
                worst_delay: result.worst_delay,
                unrouted: result.incomplete,
                total_moves: result.total_moves,
                temperatures: result.temperatures,
                runtime_sec: result.runtime.as_secs_f64(),
                metrics,
            });
            obs.flush();
        }
        Ok(result)
    }

    /// Key/value capture of the run configuration for the journal header.
    fn config_capture(&self, netlist: &Netlist) -> Vec<(String, Json)> {
        let c = &self.config;
        vec![
            ("cells".into(), netlist.num_cells().into()),
            ("nets".into(), netlist.num_nets().into()),
            ("placement_seed".into(), c.placement_seed.into()),
            ("anneal_seed".into(), c.anneal.seed.into()),
            ("moves_per_temp".into(), c.anneal.moves_per_temp.into()),
            ("warmup_moves".into(), c.anneal.warmup_moves.into()),
            ("max_temps".into(), c.anneal.max_temps.into()),
            ("lambda".into(), c.anneal.lambda.into()),
            ("global_emphasis".into(), c.cost.global_emphasis.into()),
            ("detail_emphasis".into(), c.cost.detail_emphasis.into()),
            ("timing_emphasis".into(), c.cost.timing_emphasis.into()),
            ("wastage_weight".into(), c.router.wastage_weight.into()),
            ("segment_weight".into(), c.router.segment_weight.into()),
            ("final_repair_passes".into(), c.final_repair_passes.into()),
            ("cleanup_moves".into(), c.cleanup_moves.into()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::verify_routing;

    fn fixture() -> (Architecture, Netlist) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(16)
            .build()
            .unwrap();
        (arch, nl)
    }

    #[test]
    fn fast_run_routes_a_small_design_fully() {
        let (arch, nl) = fixture();
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        assert!(result.fully_routed, "left {} incomplete", result.incomplete);
        assert_eq!(result.incomplete, 0);
        assert!(result.worst_delay > 0.0);
        assert!(!result.critical_path.elements.is_empty());
        assert!(!result.dynamics.is_empty());
        assert!(result.temperatures > 0);
        verify_routing(&result.routing, &arch, &nl, &result.placement).unwrap();
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let (arch, nl) = fixture();
        let run = |seed: u64| {
            SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(seed))
                .run(&arch, &nl)
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.worst_delay, b.worst_delay);
        assert_eq!(a.total_moves, b.total_moves);
        for (id, _) in nl.cells() {
            assert_eq!(a.placement.site_of(id), b.placement.site_of(id));
        }
    }

    #[test]
    fn annealing_beats_the_initial_random_layout_on_delay() {
        let (arch, nl) = fixture();
        // initial: random placement + batch route
        let placement = Placement::random(&arch, &nl, 1).unwrap();
        let mut routing = RoutingState::new(&arch, &nl);
        route_batch(
            &mut routing,
            &arch,
            &nl,
            &placement,
            &RouterConfig::default(),
            6,
        );
        let initial = Sta::analyze(&arch, &nl, &placement, &routing).unwrap();

        let result = SimultaneousPlaceRoute::new(SimPrConfig::default())
            .run(&arch, &nl)
            .unwrap();
        assert!(
            result.worst_delay < initial.worst_delay(),
            "annealed {} not better than random {}",
            result.worst_delay,
            initial.worst_delay()
        );
    }

    #[test]
    fn observed_run_writes_a_parseable_journal() {
        use rowfpga_obs::{json, Event, Obs, RunJournal};

        let (arch, nl) = fixture();
        let path = std::env::temp_dir().join("rowfpga_engine_journal_test.jsonl");
        let file = std::fs::File::create(&path).unwrap();
        let obs = Obs::with_sink(Box::new(RunJournal::new(std::io::BufWriter::new(file))));
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run_observed(&arch, &nl, "fixture", &obs)
            .unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let docs = json::parse_lines(&text).unwrap();
        let events: Vec<Event> = docs.iter().filter_map(Event::from_json).collect();
        assert_eq!(
            events.len(),
            docs.len(),
            "every line must parse to an event"
        );

        assert!(
            matches!(&events[0], Event::RunStart { benchmark, .. } if benchmark == "fixture"),
            "first event must be run_start"
        );
        let temps = events
            .iter()
            .filter(|e| matches!(e, Event::Temperature(_)))
            .count();
        assert_eq!(temps, result.temperatures);
        let dynamics = events
            .iter()
            .filter(|e| matches!(e, Event::Dynamics(_)))
            .count();
        assert_eq!(dynamics, result.dynamics.len());
        match events.last().unwrap() {
            Event::RunEnd {
                total_moves,
                temperatures,
                metrics,
                ..
            } => {
                assert_eq!(*total_moves, result.total_moves);
                assert_eq!(*temperatures, result.temperatures);
                assert!(metrics.get("counters").is_some(), "metrics snapshot");
            }
            other => panic!("last event must be run_end, got {other:?}"),
        }

        // The metrics report renders with all three sections populated.
        let report = obs.render_report().unwrap();
        assert!(report.contains("phase breakdown"), "{report}");
        assert!(report.contains("anneal"), "{report}");
        assert!(report.contains("move.proposed.exchange"), "{report}");
        assert!(report.contains("sta.frontier_cells"), "{report}");
    }

    #[test]
    fn observation_does_not_change_the_layout() {
        use rowfpga_obs::Obs;

        let (arch, nl) = fixture();
        let driver = SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(9));
        let plain = driver.run(&arch, &nl).unwrap();
        let observed = driver
            .run_observed(&arch, &nl, "fixture", &Obs::metrics_only())
            .unwrap();
        assert_eq!(plain.worst_delay, observed.worst_delay);
        assert_eq!(plain.total_moves, observed.total_moves);
        assert_eq!(plain.incomplete, observed.incomplete);
        for (id, _) in nl.cells() {
            assert_eq!(plain.placement.site_of(id), observed.placement.site_of(id));
        }
    }

    #[test]
    fn reports_failures_on_a_starved_fabric() {
        let (arch, nl) = fixture();
        let narrow = arch.with_tracks(1).unwrap();
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run(&narrow, &nl)
            .unwrap();
        assert!(!result.fully_routed);
        assert!(result.incomplete > 0);
    }
}
