//! Top-level simultaneous place-and-route driver.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use rowfpga_anneal::{anneal, AnnealConfig};
use rowfpga_arch::Architecture;
use rowfpga_netlist::{CombLoopError, Netlist};
use rowfpga_place::{CreatePlacementError, MoveWeights, Placement};
use rowfpga_route::{route_batch, RouterConfig, RoutingState};
use rowfpga_timing::{CriticalPath, Sta};

use crate::cost::CostConfig;
use crate::dynamics::DynamicsTrace;
use crate::problem::LayoutProblem;

/// Errors the layout engines can raise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// The design does not fit the chip.
    Placement(CreatePlacementError),
    /// The design has a combinational loop; timing is undefined.
    CombLoop(CombLoopError),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Placement(e) => write!(f, "placement failed: {e}"),
            LayoutError::CombLoop(e) => write!(f, "timing undefined: {e}"),
        }
    }
}

impl Error for LayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LayoutError::Placement(e) => Some(e),
            LayoutError::CombLoop(e) => Some(e),
        }
    }
}

/// Configuration of the simultaneous flow.
#[derive(Clone, Debug, PartialEq)]
pub struct SimPrConfig {
    /// Incremental router weights.
    pub router: RouterConfig,
    /// Annealing schedule. A `moves_per_temp` of 0 selects the automatic
    /// `n^(4/3)` budget for `n` cells.
    pub anneal: AnnealConfig,
    /// Cost component emphasis.
    pub cost: CostConfig,
    /// Move class mix.
    pub move_weights: MoveWeights,
    /// Seed of the initial random placement.
    pub placement_seed: u64,
    /// Rip-up-and-retry rounds of the final repair pass (placement frozen),
    /// applied only if annealing ends with unrouted nets; 0 disables.
    pub final_repair_passes: usize,
    /// Greedy zero-temperature cleanup moves attempted when annealing
    /// freezes with unrouted nets left (only improving or neutral moves are
    /// accepted); 0 disables.
    pub cleanup_moves: usize,
}

impl Default for SimPrConfig {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            anneal: AnnealConfig {
                moves_per_temp: 0, // auto
                ..AnnealConfig::default()
            },
            cost: CostConfig::default(),
            move_weights: MoveWeights::default(),
            placement_seed: 1,
            final_repair_passes: 6,
            cleanup_moves: 20_000,
        }
    }
}

impl SimPrConfig {
    /// A low-effort profile for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            anneal: AnnealConfig {
                moves_per_temp: 0,
                max_temps: 40,
                ..AnnealConfig::fast()
            },
            ..Self::default()
        }
    }

    /// Sets the seeds (placement and annealing) together.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self.anneal.seed = seed.wrapping_add(0x9e37);
        self
    }
}

/// A finished layout with its quality metrics.
#[derive(Clone, Debug)]
pub struct LayoutResult {
    /// Final cell placement (and pinmaps).
    pub placement: Placement,
    /// Final routing state.
    pub routing: RoutingState,
    /// Whether every net was fully routed.
    pub fully_routed: bool,
    /// Nets without a global route at the end.
    pub globally_unrouted: usize,
    /// Nets without a complete detailed route at the end.
    pub incomplete: usize,
    /// Worst-case path delay (ps) from the final standalone analysis.
    pub worst_delay: f64,
    /// The critical path of the final layout.
    pub critical_path: CriticalPath,
    /// Per-temperature dynamics (paper Figure 6 data).
    pub dynamics: DynamicsTrace,
    /// Temperatures executed by the annealer.
    pub temperatures: usize,
    /// Total annealing moves attempted.
    pub total_moves: usize,
    /// Wall-clock time of the run.
    pub runtime: Duration,
}

/// The paper's simultaneous placement, global and detailed routing tool.
#[derive(Clone, Debug)]
pub struct SimultaneousPlaceRoute {
    config: SimPrConfig,
}

impl SimultaneousPlaceRoute {
    /// Creates a driver with the given configuration.
    pub fn new(config: SimPrConfig) -> SimultaneousPlaceRoute {
        SimultaneousPlaceRoute { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimPrConfig {
        &self.config
    }

    /// Lays out `netlist` on `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or
    /// contains a combinational loop.
    pub fn run(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
    ) -> Result<LayoutResult, LayoutError> {
        let start = Instant::now();
        let mut problem = LayoutProblem::new(
            arch,
            netlist,
            self.config.router,
            self.config.cost,
            self.config.move_weights,
            self.config.placement_seed,
        )?;

        let mut anneal_cfg = self.config.anneal.clone();
        if anneal_cfg.moves_per_temp == 0 {
            anneal_cfg.moves_per_temp = AnnealConfig::moves_for_cells(netlist.num_cells(), 1.0);
        }
        let outcome = anneal(&mut problem, &anneal_cfg, |_| {});

        // Zero-temperature cleanup: when the schedule froze with a few nets
        // still unrouted, a burst of greedy (improving-only) moves usually
        // shakes the last stragglers loose — the placement-level leverage of
        // §2.1 applied once more, without the stochastic uphill component.
        if problem.routing().incomplete() > 0 && self.config.cleanup_moves > 0 {
            use rand::SeedableRng as _;
            use rowfpga_anneal::AnnealProblem as _;
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(anneal_cfg.seed.wrapping_add(0x51ea9));
            for _ in 0..self.config.cleanup_moves {
                let (applied, delta) = problem.propose_and_apply(&mut rng);
                if delta <= 0.0 {
                    problem.commit(applied);
                } else {
                    problem.undo(applied);
                }
                if problem.routing().incomplete() == 0 {
                    break;
                }
            }
        }

        let (placement, mut routing, dynamics) = problem.into_parts();
        if !routing.is_fully_routed() && self.config.final_repair_passes > 0 {
            // Placement is frozen now; a few rip-up-and-retry rounds often
            // recover the last stragglers, exactly as a sequential flow's
            // router would.
            route_batch(
                &mut routing,
                arch,
                netlist,
                &placement,
                &self.config.router,
                self.config.final_repair_passes,
            );
        }

        let sta = Sta::analyze(arch, netlist, &placement, &routing)
            .map_err(LayoutError::CombLoop)?;
        let critical_path = sta.critical_path(netlist);
        Ok(LayoutResult {
            fully_routed: routing.is_fully_routed(),
            globally_unrouted: routing.globally_unrouted(),
            incomplete: routing.incomplete(),
            worst_delay: sta.worst_delay(),
            critical_path,
            dynamics,
            temperatures: outcome.temperatures,
            total_moves: outcome.total_moves,
            runtime: start.elapsed(),
            placement,
            routing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::verify_routing;

    fn fixture() -> (Architecture, Netlist) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(16)
            .build()
            .unwrap();
        (arch, nl)
    }

    #[test]
    fn fast_run_routes_a_small_design_fully() {
        let (arch, nl) = fixture();
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        assert!(result.fully_routed, "left {} incomplete", result.incomplete);
        assert_eq!(result.incomplete, 0);
        assert!(result.worst_delay > 0.0);
        assert!(!result.critical_path.elements.is_empty());
        assert!(!result.dynamics.is_empty());
        assert!(result.temperatures > 0);
        verify_routing(&result.routing, &arch, &nl, &result.placement).unwrap();
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let (arch, nl) = fixture();
        let run = |seed: u64| {
            SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(seed))
                .run(&arch, &nl)
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.worst_delay, b.worst_delay);
        assert_eq!(a.total_moves, b.total_moves);
        for (id, _) in nl.cells() {
            assert_eq!(a.placement.site_of(id), b.placement.site_of(id));
        }
    }

    #[test]
    fn annealing_beats_the_initial_random_layout_on_delay() {
        let (arch, nl) = fixture();
        // initial: random placement + batch route
        let placement = Placement::random(&arch, &nl, 1).unwrap();
        let mut routing = RoutingState::new(&arch, &nl);
        route_batch(&mut routing, &arch, &nl, &placement, &RouterConfig::default(), 6);
        let initial = Sta::analyze(&arch, &nl, &placement, &routing).unwrap();

        let result = SimultaneousPlaceRoute::new(SimPrConfig::default())
            .run(&arch, &nl)
            .unwrap();
        assert!(
            result.worst_delay < initial.worst_delay(),
            "annealed {} not better than random {}",
            result.worst_delay,
            initial.worst_delay()
        );
    }

    #[test]
    fn reports_failures_on_a_starved_fabric() {
        let (arch, nl) = fixture();
        let narrow = arch.with_tracks(1).unwrap();
        let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run(&narrow, &nl)
            .unwrap();
        assert!(!result.fully_routed);
        assert!(result.incomplete > 0);
    }
}
