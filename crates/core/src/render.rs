//! Layout rendering: ASCII floorplans and SVG plots of placed-and-routed
//! chips (the paper's Figure 7 is exactly such a plot).

use std::fmt::Write as _;

use rowfpga_arch::{Architecture, ChannelId, SiteKind};
use rowfpga_netlist::{CellKind, NetId, Netlist};
use rowfpga_place::Placement;
use rowfpga_route::{NetRouteState, RoutingState};

/// Renders an ASCII floorplan: one character per site (`i` = I/O cell,
/// `c` = combinational, `s` = sequential, `.` = empty) with channel rows
/// showing per-channel track utilization as a percentage.
pub fn render_ascii(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
) -> String {
    let geom = arch.geometry();
    let mut out = String::new();
    // Top channel first so the picture reads top-down like a die photo.
    for row in (0..geom.num_rows()).rev() {
        let chan = ChannelId::new(row + 1);
        let _ = writeln!(out, "{}", channel_line(arch, routing, chan));
        let mut line = String::from("row  |");
        for col in 0..geom.num_cols() {
            let site = geom.site_at(rowfpga_arch::RowId::new(row), rowfpga_arch::ColId::new(col));
            let ch = match placement.cell_at(site.id()) {
                None => '.',
                Some(cell) => match netlist.cell(cell).kind() {
                    CellKind::Input | CellKind::Output => 'i',
                    CellKind::Comb { .. } => 'c',
                    CellKind::Seq => 's',
                },
            };
            line.push(ch);
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "{}", channel_line(arch, routing, ChannelId::new(0)));
    out
}

fn channel_line(arch: &Architecture, routing: &RoutingState, chan: ChannelId) -> String {
    let (used, total) = routing.channel_wire_usage(arch, chan);
    let pct = (100 * used).checked_div(total).unwrap_or(0);
    format!(
        "{:<4} ={} {pct:>3}% wire used",
        format!("{chan}"),
        "=".repeat(arch.geometry().num_cols())
    )
}

/// Renders the placed-and-routed chip as an SVG document: sites colored by
/// occupant kind, every routed net's horizontal runs drawn on their tracks
/// and vertical chains in their columns, each net in a stable
/// pseudo-random color.
pub fn render_svg(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
) -> String {
    let geom = arch.geometry();
    let cw = 14.0; // column pitch
    let row_h = 16.0;
    let track_pitch = 2.0;
    let chan_h = arch.tracks_per_channel() as f64 * track_pitch + 6.0;

    // y of the top of channel `c`, stacking top-down from the highest
    // channel: chan N, row N-1, chan N-1, …, row 0, chan 0.
    let chan_y = |c: usize| -> f64 {
        let above = geom.num_channels() - 1 - c; // channels above this one
        above as f64 * (chan_h + row_h)
    };
    let row_y = |r: usize| chan_y(r + 1) + chan_h;
    let height = chan_y(0) + chan_h;
    let width = geom.num_cols() as f64 * cw;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width:.0} {height:.0}" font-family="monospace" font-size="6">"##
    );
    let _ = writeln!(
        out,
        r##"<rect width="{width:.0}" height="{height:.0}" fill="#ffffff"/>"##
    );

    // Channel backgrounds.
    for c in 0..geom.num_channels() {
        let _ = writeln!(
            out,
            r##"<rect x="0" y="{:.1}" width="{width:.1}" height="{chan_h:.1}" fill="#f2f2f2"/>"##,
            chan_y(c)
        );
    }

    // Sites.
    for site in geom.sites() {
        let x = site.col().index() as f64 * cw + 1.0;
        let y = row_y(site.row().index()) + 1.0;
        let (fill, label) = match placement.cell_at(site.id()) {
            None => ("#e8e8e8", None),
            Some(cell) => match netlist.cell(cell).kind() {
                CellKind::Input | CellKind::Output => ("#b8b8b8", Some(cell)),
                CellKind::Comb { .. } => ("#9ec5e8", Some(cell)),
                CellKind::Seq => ("#f2c48d", Some(cell)),
            },
        };
        let _ = writeln!(
            out,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{fill}" stroke="{}"/>"##,
            cw - 2.0,
            row_h - 2.0,
            if site.kind() == SiteKind::Io {
                "#888888"
            } else {
                "#5588aa"
            },
        );
        if let Some(cell) = label {
            let _ = writeln!(
                out,
                r##"<title>{}</title>"##,
                xml_escape(netlist.cell(cell).name())
            );
        }
    }

    // Routed nets.
    for (net, _) in netlist.nets() {
        let route = routing.route(net);
        if route.state() == NetRouteState::Unrouted {
            continue;
        }
        let color = net_color(net);
        for (chan, segs) in route.hsegs() {
            for h in segs {
                let seg = arch.hseg(*h);
                let t = arch.hseg_track(*h).index();
                let y = chan_y(chan.index()) + 3.0 + t as f64 * track_pitch;
                let _ = writeln!(
                    out,
                    r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{color}" stroke-width="1.2"/>"##,
                    seg.start() as f64 * cw + cw / 2.0,
                    (seg.end() - 1) as f64 * cw + cw / 2.0,
                );
            }
        }
        for v in route.vsegs() {
            let seg = arch.vseg(*v);
            let x = seg.col().index() as f64 * cw + cw / 2.0;
            let y1 = chan_y(seg.chan_hi().index()) + chan_h / 2.0;
            let y2 = chan_y(seg.chan_lo().index()) + chan_h / 2.0;
            let _ = writeln!(
                out,
                r##"<line x1="{x:.1}" y1="{y1:.1}" x2="{x:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="1.0" stroke-dasharray="2,1"/>"##
            );
        }
    }

    out.push_str("</svg>\n");
    out
}

/// A stable, reasonably distinct color per net.
fn net_color(net: NetId) -> String {
    let h = (net.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let hue = (h % 360) as f64;
    let light = 30.0 + ((h >> 9) % 25) as f64;
    format!("hsl({hue:.0},70%,{light:.0}%)")
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::{route_batch, RouterConfig};

    fn routed() -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .tracks_per_channel(14)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 5).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 6);
        (arch, nl, p, st)
    }

    #[test]
    fn ascii_floorplan_covers_every_row_and_channel() {
        let (arch, nl, p, st) = routed();
        let art = render_ascii(&arch, &nl, &p, &st);
        let rows = art.lines().filter(|l| l.starts_with("row")).count();
        let chans = art.lines().filter(|l| l.starts_with("ch")).count();
        assert_eq!(rows, 4);
        assert_eq!(chans, 5);
        // every placed cell appears
        let glyphs: usize = art
            .lines()
            .filter(|l| l.starts_with("row"))
            .map(|l| l.chars().filter(|c| "ics".contains(*c)).count())
            .sum();
        assert_eq!(glyphs, nl.num_cells());
    }

    #[test]
    fn svg_is_well_formed_and_draws_every_claimed_segment() {
        let (arch, nl, p, st) = routed();
        let svg = render_svg(&arch, &nl, &p, &st);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        let lines = svg.matches("<line").count();
        let claimed_h: usize = (0..arch.num_hsegs())
            .filter(|i| st.hseg_owner(rowfpga_arch::HSegId::new(*i)).is_some())
            .count();
        let claimed_v: usize = (0..arch.num_vsegs())
            .filter(|i| st.vseg_owner(rowfpga_arch::VSegId::new(*i)).is_some())
            .count();
        assert_eq!(lines, claimed_h + claimed_v);
        let rects = svg.matches("<rect").count();
        assert_eq!(
            rects,
            1 + arch.geometry().num_channels() + arch.geometry().num_sites()
        );
    }

    #[test]
    fn unrouted_nets_are_not_drawn() {
        let (arch, nl, p, mut st) = routed();
        for (net, _) in nl.nets() {
            st.rip_up(net);
        }
        let svg = render_svg(&arch, &nl, &p, &st);
        assert_eq!(svg.matches("<line").count(), 0);
    }

    #[test]
    fn net_colors_are_stable_and_valid() {
        let a = net_color(NetId::new(7));
        assert_eq!(a, net_color(NetId::new(7)));
        assert!(a.starts_with("hsl("));
        assert_ne!(a, net_color(NetId::new(8)));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }
}
