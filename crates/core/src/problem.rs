//! The simultaneous layout problem driven by the annealing engine.
//!
//! Each move follows the paper's cascade (§3.2–3.5):
//!
//! 1. perturb the placement (cell exchange / translation, or pinmap
//!    reassignment) — there are **no** moves that alter nets directly;
//! 2. rip up every net connected to the moved cells, freeing their
//!    vertical *and* horizontal segments;
//! 3. incremental global rerouting over `U_G`, longest net first;
//! 4. incremental detailed rerouting over each dirty channel's `U_D`;
//! 5. incremental worst-case delay recalculation over the frontier of
//!    affected cells;
//! 6. score `ΔCost = Wg·δG + Wd·δD + Wt·δT` and let the annealer accept or
//!    reject; rejection rolls back routing, timing and placement exactly.

use rand::rngs::StdRng;

use rowfpga_anneal::{AnnealProblem, ReplicaProblem, TemperatureStats};
use rowfpga_arch::Architecture;
use rowfpga_netlist::{CombLoopError, Netlist};
use rowfpga_obs::{DynamicsRecord, Event, Obs};
use rowfpga_place::{Move, MoveGenerator, MoveWeights, Placement};
use rowfpga_route::{RouterConfig, RoutingState};
use rowfpga_timing::TimingState;

use crate::cost::{CostConfig, CostWeights, DeltaStats};
use crate::dynamics::{DynamicsSample, DynamicsTrace};
use crate::engine::LayoutError;
use crate::snapshot::{CheckpointError, ProblemSnapshot};

/// Record of one applied layout move (what the annealer needs to commit or
/// undo it).
#[derive(Debug)]
pub struct AppliedLayoutMove {
    mv: Move,
}

/// The evolving layout state: placement, routing and timing, scored by the
/// weighted cost `Wg·G + Wd·D + Wt·T`.
#[derive(Debug)]
pub struct LayoutProblem<'a> {
    arch: &'a Architecture,
    netlist: &'a Netlist,
    placement: Placement,
    routing: RoutingState,
    timing: TimingState,
    mover: MoveGenerator,
    router_cfg: RouterConfig,
    cost_cfg: CostConfig,
    weights: CostWeights,
    deltas: DeltaStats,
    perturbed: Vec<bool>,
    trace: DynamicsTrace,
    /// Current exchange-window half-width (TimberWolf-style range limiting;
    /// shrinks as acceptance falls).
    window: usize,
    obs: Obs,
}

impl<'a> LayoutProblem<'a> {
    /// Creates the starting state: a random legal placement, one initial
    /// routing pass (many nets find some — possibly poor — embedding) and a
    /// full timing analysis.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or has a
    /// combinational loop.
    pub fn new(
        arch: &'a Architecture,
        netlist: &'a Netlist,
        router_cfg: RouterConfig,
        cost_cfg: CostConfig,
        move_weights: MoveWeights,
        seed: u64,
    ) -> Result<LayoutProblem<'a>, LayoutError> {
        let placement = Placement::random(arch, netlist, seed).map_err(LayoutError::Placement)?;
        let mut routing = RoutingState::new(arch, netlist);
        routing.route_incremental(arch, netlist, &placement, &router_cfg);
        let timing =
            TimingState::new(arch, netlist, &placement, &routing).map_err(LayoutError::CombLoop)?;
        let weights = CostWeights::initial(&cost_cfg, timing.worst(), netlist.num_nets());
        let mover = MoveGenerator::new(arch, netlist, move_weights);
        Ok(LayoutProblem {
            arch,
            netlist,
            placement,
            routing,
            timing,
            mover,
            router_cfg,
            cost_cfg,
            weights,
            deltas: DeltaStats::default(),
            perturbed: vec![false; netlist.num_cells()],
            trace: DynamicsTrace::new(),
            window: usize::MAX,
            obs: Obs::disabled(),
        })
    }

    /// Attaches an observability handle: per-move counters and histograms
    /// (move classes, reroute cascade sizes, nets ripped, detail failures,
    /// STA frontier sizes) and one [`Event::Dynamics`] per temperature. A
    /// disabled handle (the default) keeps every hook a no-op.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Convenience constructor mapping a [`CombLoopError`] directly.
    pub fn check_levelizable(netlist: &Netlist) -> Result<(), CombLoopError> {
        rowfpga_netlist::Levels::compute(netlist).map(|_| ())
    }

    /// The current placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The current routing state.
    pub fn routing(&self) -> &RoutingState {
        &self.routing
    }

    /// The current timing state.
    pub fn timing(&self) -> &TimingState {
        &self.timing
    }

    /// The current cost weights.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// The dynamics recorded so far (one sample per completed temperature).
    pub fn trace(&self) -> &DynamicsTrace {
        &self.trace
    }

    /// Decomposes the problem into its final placement, routing and
    /// dynamics trace.
    pub fn into_parts(self) -> (Placement, RoutingState, DynamicsTrace) {
        (self.placement, self.routing, self.trace)
    }

    /// Exports the checkpointable state as plain data. Meant to be taken
    /// at a temperature boundary, where the per-temperature accumulators
    /// (delta statistics, perturbation flags) have just been reset and
    /// need not be stored.
    pub fn snapshot(&self) -> ProblemSnapshot {
        ProblemSnapshot {
            sites: self.placement.export_sites(),
            pinmaps: self.placement.export_pinmaps(),
            routes: self.routing.export_routes(),
            weights: self.weights,
            window: self.window,
            trace: self.trace.clone(),
        }
    }

    /// Reconstructs a problem from a [`ProblemSnapshot`]: placement and
    /// routing are rebuilt through their checked constructors, the
    /// restored routing is verified against the placement, and timing is
    /// re-derived from scratch (it is deterministic in the rest, so it is
    /// never stored).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::Placement`] or [`LayoutError::Checkpoint`]
    /// when the snapshot does not reconstruct a legal layout, and
    /// [`LayoutError::CombLoop`] if the netlist cannot be levelized.
    pub fn restore(
        arch: &'a Architecture,
        netlist: &'a Netlist,
        router_cfg: RouterConfig,
        cost_cfg: CostConfig,
        move_weights: MoveWeights,
        snap: &ProblemSnapshot,
    ) -> Result<LayoutProblem<'a>, LayoutError> {
        let placement = Placement::from_parts(arch, netlist, &snap.sites, &snap.pinmaps)
            .map_err(LayoutError::Placement)?;
        let routing = RoutingState::restore(arch, netlist, &snap.routes).map_err(|e| {
            LayoutError::Checkpoint(CheckpointError::Restore {
                detail: format!("routing: {e}"),
            })
        })?;
        rowfpga_route::verify_routing(&routing, arch, netlist, &placement).map_err(|e| {
            LayoutError::Checkpoint(CheckpointError::Restore {
                detail: format!("restored routing fails verification: {e}"),
            })
        })?;
        let timing =
            TimingState::new(arch, netlist, &placement, &routing).map_err(LayoutError::CombLoop)?;
        let mover = MoveGenerator::new(arch, netlist, move_weights);
        Ok(LayoutProblem {
            arch,
            netlist,
            placement,
            routing,
            timing,
            mover,
            router_cfg,
            cost_cfg,
            weights: snap.weights,
            deltas: DeltaStats::default(),
            perturbed: vec![false; netlist.num_cells()],
            trace: snap.trace.clone(),
            window: snap.window,
            obs: Obs::disabled(),
        })
    }

    /// Re-verifies the incremental state against ground truth: the
    /// routing invariants ([`verify_routing`]) and a from-scratch timing
    /// analysis compared to the incrementally tracked one (worst delay
    /// and every cell arrival, to 1e-6 ps).
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence found.
    ///
    /// [`verify_routing`]: rowfpga_route::verify_routing
    pub fn audit(&self) -> Result<(), String> {
        rowfpga_route::verify_routing(&self.routing, self.arch, self.netlist, &self.placement)
            .map_err(|e| format!("routing: {e}"))?;
        let oracle = TimingState::new(self.arch, self.netlist, &self.placement, &self.routing)
            .map_err(|e| format!("timing oracle: {e}"))?;
        if (oracle.worst() - self.timing.worst()).abs() > 1e-6 {
            return Err(format!(
                "timing: worst delay diverged (incremental {} vs oracle {})",
                self.timing.worst(),
                oracle.worst()
            ));
        }
        for (id, _) in self.netlist.cells() {
            let tracked = self.timing.arrival(id);
            let truth = oracle.arrival(id);
            if (truth - tracked).abs() > 1e-6 {
                return Err(format!(
                    "timing: arrival diverged at cell {} (incremental {tracked} vs oracle {truth})",
                    id.index()
                ));
            }
        }
        Ok(())
    }

    /// Repair tier 1: re-derive the timing state from scratch off the
    /// current placement and routing.
    ///
    /// # Errors
    ///
    /// Returns a description if the netlist cannot be levelized (which
    /// cannot happen mid-run: it was levelized at construction).
    pub fn rebuild_timing(&mut self) -> Result<(), String> {
        self.timing = TimingState::new(self.arch, self.netlist, &self.placement, &self.routing)
            .map_err(|e| format!("timing rebuild: {e}"))?;
        Ok(())
    }

    /// Repair tier 2: discard the routing entirely, re-route every net
    /// from scratch against the current placement, and re-derive timing.
    ///
    /// # Errors
    ///
    /// Returns a description if the subsequent timing rebuild fails.
    pub fn rebuild_routing(&mut self) -> Result<(), String> {
        let mut routing = RoutingState::new(self.arch, self.netlist);
        routing.route_incremental(self.arch, self.netlist, &self.placement, &self.router_cfg);
        self.routing = routing;
        self.rebuild_timing()
    }

    /// Applies one *specific* move through the full incremental cascade
    /// (perturb → rip up → global reroute → detail reroute → STA frontier)
    /// and returns the applied record plus the weighted cost delta, exactly
    /// as [`AnnealProblem::propose_and_apply`] would for the same move.
    ///
    /// This is the scripted-replay entry point used by differential fuzzing
    /// and delta-debugging: a recorded move sequence can be re-executed
    /// independently of any RNG state. The caller must still
    /// [`commit`](AnnealProblem::commit) or [`undo`](AnnealProblem::undo)
    /// the returned record; the transaction discipline is identical to the
    /// annealer's.
    pub fn apply_move(&mut self, mv: Move) -> (AppliedLayoutMove, f64) {
        self.run_cascade(mv)
    }

    /// The shared move cascade body (steps 2–6 of the paper's recipe).
    fn run_cascade(&mut self, mv: Move) -> (AppliedLayoutMove, f64) {
        let g0 = self.routing.globally_unrouted();
        let d0 = self.routing.incomplete();
        let t0 = self.timing.worst();

        self.routing.begin_txn();
        self.timing.begin_txn();
        mv.apply(self.arch, self.netlist, &mut self.placement);
        for cell in mv.affected_cells(&self.placement) {
            self.routing.rip_up_cell(self.netlist, cell);
        }
        let ripped = self.routing.globally_unrouted().saturating_sub(g0);
        let reroute = self.obs.span_quiet("reroute.incremental", || {
            self.routing.route_incremental(
                self.arch,
                self.netlist,
                &self.placement,
                &self.router_cfg,
            )
        });
        let changed = self.routing.touched_nets();
        self.obs.span_quiet("sta.delay_update", || {
            self.timing.update_nets(
                self.arch,
                self.netlist,
                &self.placement,
                &self.routing,
                changed,
            )
        });
        if self.obs.enabled() {
            self.obs.observe("move.nets_ripped", ripped as f64);
            self.obs
                .observe("reroute.cascade_nets", reroute.cascade_size() as f64);
            self.obs
                .add("route.detail_failures", reroute.detail_failures as u64);
            self.obs
                .observe("sta.frontier_cells", self.timing.last_frontier() as f64);
        }

        let g1 = self.routing.globally_unrouted();
        let d1 = self.routing.incomplete();
        let t1 = self.timing.worst();
        self.deltas
            .record(g1 as f64 - g0 as f64, d1 as f64 - d0 as f64, t1 - t0);
        let delta = self.weights.cost(g1, d1, t1) - self.weights.cost(g0, d0, t0);
        (AppliedLayoutMove { mv }, delta)
    }
}

#[cfg(feature = "fault-inject")]
impl LayoutProblem<'_> {
    /// Applies one injected state corruption through the routing and
    /// timing crates' fault hooks. Returns `false` when the fault found
    /// nothing to corrupt (e.g. no claimed segments yet).
    pub fn inject_fault(&mut self, fault: &crate::fault::InjectedFault) -> bool {
        use crate::fault::InjectedFault;
        match *fault {
            InjectedFault::RouteOwner { nth } => self.routing.fault_clear_hseg_owner(nth),
            InjectedFault::RouteRun { nth } => self.routing.fault_truncate_run(nth),
            InjectedFault::RouteCounter => {
                self.routing.fault_skew_incomplete();
                true
            }
            InjectedFault::TimingWorst { delta_ps } => {
                self.timing.fault_skew_worst(delta_ps);
                true
            }
            InjectedFault::TimingArrival { cell, delta_ps } => {
                self.timing.fault_skew_arrival(cell, delta_ps);
                true
            }
            InjectedFault::CheckpointShortWrite | InjectedFault::CheckpointSkipRename => false,
        }
    }
}

impl AnnealProblem for LayoutProblem<'_> {
    type Applied = AppliedLayoutMove;

    fn propose_and_apply(&mut self, rng: &mut StdRng) -> (AppliedLayoutMove, f64) {
        let window = (self.window < self.mover.max_window()).then_some(self.window);
        let mv = self
            .mover
            .propose_in_window(self.netlist, &self.placement, rng, window);
        if self.obs.enabled() {
            self.obs.inc(match &mv {
                Move::Exchange { .. } => "move.proposed.exchange",
                Move::Pinmap { .. } => "move.proposed.pinmap",
            });
        }
        self.run_cascade(mv)
    }

    fn undo(&mut self, applied: AppliedLayoutMove) {
        if self.obs.enabled() {
            self.obs.inc(match &applied.mv {
                Move::Exchange { .. } => "move.undone.exchange",
                Move::Pinmap { .. } => "move.undone.pinmap",
            });
        }
        self.routing.rollback();
        self.timing.rollback();
        applied
            .mv
            .undo(self.arch, self.netlist, &mut self.placement);
    }

    fn commit(&mut self, applied: AppliedLayoutMove) {
        if self.obs.enabled() {
            self.obs.inc(match &applied.mv {
                Move::Exchange { .. } => "move.committed.exchange",
                Move::Pinmap { .. } => "move.committed.pinmap",
            });
        }
        self.routing.commit();
        self.timing.commit();
        for cell in applied.mv.affected_cells(&self.placement) {
            self.perturbed[cell.index()] = true;
        }
    }

    fn cost(&self) -> f64 {
        self.weights.cost(
            self.routing.globally_unrouted(),
            self.routing.incomplete(),
            self.timing.worst(),
        )
    }

    fn on_temperature(&mut self, stats: &TemperatureStats) {
        let n_cells = self.netlist.num_cells().max(1) as f64;
        let n_nets = self.netlist.num_nets().max(1) as f64;
        let cells_perturbed = self.perturbed.iter().filter(|p| **p).count();
        self.trace.push(DynamicsSample {
            index: stats.index,
            temperature: stats.temperature,
            cells_perturbed: cells_perturbed as f64 / n_cells,
            nets_globally_unrouted: self.routing.globally_unrouted() as f64 / n_nets,
            nets_unrouted: self.routing.incomplete() as f64 / n_nets,
            worst_delay: self.timing.worst(),
            cost: self.cost(),
        });
        self.obs.emit(Event::Dynamics(DynamicsRecord {
            index: stats.index,
            temperature: stats.temperature,
            cells_perturbed,
            nets_globally_unrouted: self.routing.globally_unrouted(),
            nets_unrouted: self.routing.incomplete(),
            worst_delay: self.timing.worst(),
            cost: self.cost(),
        }));
        self.perturbed.fill(false);
        self.weights.adapt(&self.cost_cfg, &self.deltas);
        self.deltas.reset();
        // Range limiting: once acceptance falls below the classic 44%
        // target, shrink the exchange window so cold-regime moves become
        // local refinements (TimberWolf; the paper's §5 names this family
        // of annealing-core improvements as ongoing work).
        if stats.acceptance_ratio() < 0.44 {
            let current = self.window.min(self.mover.max_window());
            self.window = ((current as f64 * 0.85) as usize).max(2);
        }
    }
}

impl ReplicaProblem for LayoutProblem<'_> {
    type Snapshot = ProblemSnapshot;

    fn snapshot(&self) -> ProblemSnapshot {
        LayoutProblem::snapshot(self)
    }

    /// Replaces this replica's layout with `snapshot`: placement and
    /// routing are rebuilt through their checked constructors and timing
    /// is re-derived, exactly as [`LayoutProblem::restore`] does, but in
    /// place — the replica keeps its own dynamics trace and observability
    /// handle, resets its per-temperature accumulators, and takes over the
    /// donor's adaptive weights and exchange window so the annealing
    /// schedule stays coherent with the adopted layout.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not reconstruct a legal layout. It
    /// always does when taken from a live replica of the same problem
    /// (same architecture and netlist), which is the only way
    /// [`anneal_parallel`](rowfpga_anneal::anneal_parallel) produces one.
    fn adopt(&mut self, snap: &ProblemSnapshot) {
        let placement = Placement::from_parts(self.arch, self.netlist, &snap.sites, &snap.pinmaps)
            .expect("adopted snapshot has a legal placement");
        let routing = RoutingState::restore(self.arch, self.netlist, &snap.routes)
            .expect("adopted snapshot has a consistent routing");
        let timing = TimingState::new(self.arch, self.netlist, &placement, &routing)
            .expect("netlist was levelizable when the replica was built");
        self.placement = placement;
        self.routing = routing;
        self.timing = timing;
        self.weights = snap.weights;
        self.window = snap.window;
        self.deltas = DeltaStats::default();
        self.perturbed.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_route::verify_routing;
    use rowfpga_timing::TimingState as Oracle;

    fn problem_fixture<'a>(arch: &'a Architecture, netlist: &'a Netlist) -> LayoutProblem<'a> {
        LayoutProblem::new(
            arch,
            netlist,
            RouterConfig::default(),
            CostConfig::default(),
            MoveWeights::default(),
            42,
        )
        .unwrap()
    }

    fn fixture() -> (Architecture, Netlist) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(14)
            .build()
            .unwrap();
        (arch, nl)
    }

    #[test]
    fn moves_apply_and_roll_back_the_whole_state() {
        let (arch, nl) = fixture();
        let mut p = problem_fixture(&arch, &nl);
        let cost0 = p.cost();
        let sites0: Vec<_> = nl
            .cells()
            .map(|(id, _)| p.placement().site_of(id))
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let (applied, _) = p.propose_and_apply(&mut rng);
            p.undo(applied);
        }
        assert_eq!(p.cost(), cost0);
        for (i, (id, _)) in nl.cells().enumerate() {
            assert_eq!(p.placement().site_of(id), sites0[i]);
        }
        verify_routing(p.routing(), &arch, &nl, p.placement()).unwrap();
        // timing agrees with a from-scratch oracle
        let oracle = Oracle::new(&arch, &nl, p.placement(), p.routing()).unwrap();
        assert!((p.timing().worst() - oracle.worst()).abs() < 1e-6);
    }

    #[test]
    fn committed_moves_keep_state_consistent() {
        let (arch, nl) = fixture();
        let mut p = problem_fixture(&arch, &nl);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..200 {
            let (applied, delta) = p.propose_and_apply(&mut rng);
            if delta <= 0.0 || i % 3 == 0 {
                p.commit(applied);
            } else {
                p.undo(applied);
            }
        }
        verify_routing(p.routing(), &arch, &nl, p.placement()).unwrap();
        let oracle = Oracle::new(&arch, &nl, p.placement(), p.routing()).unwrap();
        assert!(
            (p.timing().worst() - oracle.worst()).abs() < 1e-6,
            "incremental timing diverged: {} vs {}",
            p.timing().worst(),
            oracle.worst()
        );
        assert!(p.placement().check_invariants(&arch, &nl));
    }

    #[test]
    fn cost_reflects_weighted_components() {
        let (arch, nl) = fixture();
        let p = problem_fixture(&arch, &nl);
        let w = p.weights();
        let expect = w.cost(
            p.routing().globally_unrouted(),
            p.routing().incomplete(),
            p.timing().worst(),
        );
        assert_eq!(p.cost(), expect);
    }

    #[test]
    fn on_temperature_records_dynamics_and_resets_counters() {
        let (arch, nl) = fixture();
        let mut p = problem_fixture(&arch, &nl);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let (applied, _) = p.propose_and_apply(&mut rng);
            p.commit(applied);
        }
        let stats = TemperatureStats {
            index: 0,
            temperature: 5.0,
            moves: 50,
            accepted: 50,
            mean_cost: p.cost(),
            std_cost: 1.0,
            current_cost: p.cost(),
            best_cost: p.cost(),
        };
        p.on_temperature(&stats);
        assert_eq!(p.trace().len(), 1);
        let s = p.trace().samples()[0];
        assert!(s.cells_perturbed > 0.0);
        assert!(s.nets_unrouted >= s.nets_globally_unrouted);
        // second temperature with no accepted moves records zero
        p.on_temperature(&TemperatureStats { index: 1, ..stats });
        assert_eq!(p.trace().samples()[1].cells_perturbed, 0.0);
    }
}
