//! The layout cost function and its adaptive weight normalization.

/// User-level emphasis of the three cost components. The absolute weights
/// are derived at runtime ([`CostWeights::adapt`]) so that each component's
/// *average per-move delta* contributes proportionally to its emphasis —
/// the paper's "weights determined adaptively at runtime so as to
/// normalize the components of the cost function" (§3.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostConfig {
    /// Emphasis of the globally-unrouted-nets term `G`.
    pub global_emphasis: f64,
    /// Emphasis of the detail-incomplete-nets term `D`.
    pub detail_emphasis: f64,
    /// Emphasis of the worst-case-delay term `T`. Set to zero for a
    /// wirability-only ablation.
    pub timing_emphasis: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        // Routability terms dominate: a layout that does not route has no
        // delay to speak of. Timing pressure stays meaningful throughout.
        Self {
            global_emphasis: 1.5,
            detail_emphasis: 1.0,
            timing_emphasis: 0.6,
        }
    }
}

impl CostConfig {
    /// An ablation profile with no timing pressure.
    pub fn wirability_only() -> Self {
        Self {
            timing_emphasis: 0.0,
            ..Self::default()
        }
    }
}

/// The current absolute weights of the cost `Wg·G + Wd·D + Wt·T`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// Weight of the globally unrouted net count.
    pub wg: f64,
    /// Weight of the detail-incomplete net count.
    pub wd: f64,
    /// Weight of the worst-case delay (per picosecond).
    pub wt: f64,
}

impl CostWeights {
    /// Initial weights before any delta statistics exist: the routability
    /// counters get unit weight and the delay term is scaled so the initial
    /// worst delay weighs like `initial_nets` unrouted nets.
    pub fn initial(config: &CostConfig, initial_worst_delay: f64, initial_nets: usize) -> Self {
        let wt = if initial_worst_delay > 0.0 {
            config.timing_emphasis * initial_nets as f64 / initial_worst_delay
        } else {
            0.0
        };
        Self {
            wg: config.global_emphasis,
            wd: config.detail_emphasis,
            wt,
        }
    }

    /// The weighted cost of a state.
    pub fn cost(&self, g: usize, d: usize, t: f64) -> f64 {
        self.wg * g as f64 + self.wd * d as f64 + self.wt * t
    }

    /// Re-derives the weights from the mean absolute per-move deltas
    /// observed over the last temperature, so that a typical move's
    /// contribution from each term is its configured emphasis.
    ///
    /// Terms whose deltas vanished keep their previous weight (nothing to
    /// normalize against), which also freezes `Wt` when timing emphasis is
    /// zero.
    pub fn adapt(&mut self, config: &CostConfig, stats: &DeltaStats) {
        if stats.samples == 0 {
            return;
        }
        let n = stats.samples as f64;
        let mean_g = stats.abs_dg / n;
        let mean_d = stats.abs_dd / n;
        let mean_t = stats.abs_dt / n;
        if mean_g > f64::EPSILON {
            self.wg = config.global_emphasis / mean_g;
        }
        if mean_d > f64::EPSILON {
            self.wd = config.detail_emphasis / mean_d;
        }
        if mean_t > f64::EPSILON && config.timing_emphasis > 0.0 {
            self.wt = config.timing_emphasis / mean_t;
        }
    }
}

/// Accumulated absolute per-move deltas of the cost components over one
/// temperature.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeltaStats {
    /// Moves observed.
    pub samples: usize,
    /// Σ|δG|.
    pub abs_dg: f64,
    /// Σ|δD|.
    pub abs_dd: f64,
    /// Σ|δT|.
    pub abs_dt: f64,
}

impl DeltaStats {
    /// Records one move's component deltas.
    pub fn record(&mut self, dg: f64, dd: f64, dt: f64) {
        self.samples += 1;
        self.abs_dg += dg.abs();
        self.abs_dd += dd.abs();
        self.abs_dt += dt.abs();
    }

    /// Clears the accumulator for the next temperature.
    pub fn reset(&mut self) {
        *self = DeltaStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_weights_scale_timing_to_net_count() {
        let w = CostWeights::initial(&CostConfig::default(), 50_000.0, 100);
        assert!((w.wt * 50_000.0 - 0.6 * 100.0).abs() < 1e-9);
        assert_eq!(w.wg, 1.5);
        assert_eq!(w.wd, 1.0);
    }

    #[test]
    fn cost_is_linear_in_components() {
        let w = CostWeights {
            wg: 2.0,
            wd: 1.0,
            wt: 0.5,
        };
        assert_eq!(w.cost(3, 4, 10.0), 6.0 + 4.0 + 5.0);
        assert_eq!(w.cost(0, 0, 0.0), 0.0);
    }

    #[test]
    fn adapt_normalizes_to_mean_deltas() {
        let cfg = CostConfig::default();
        let mut w = CostWeights::initial(&cfg, 10_000.0, 10);
        let mut s = DeltaStats::default();
        for _ in 0..10 {
            s.record(2.0, 4.0, 500.0);
        }
        w.adapt(&cfg, &s);
        // typical move now contributes emphasis per component
        assert!((w.wg * 2.0 - cfg.global_emphasis).abs() < 1e-9);
        assert!((w.wd * 4.0 - cfg.detail_emphasis).abs() < 1e-9);
        assert!((w.wt * 500.0 - cfg.timing_emphasis).abs() < 1e-9);
    }

    #[test]
    fn adapt_keeps_weights_when_deltas_vanish() {
        let cfg = CostConfig::default();
        let mut w = CostWeights::initial(&cfg, 10_000.0, 10);
        let before = w;
        let mut s = DeltaStats::default();
        s.record(0.0, 0.0, 0.0);
        w.adapt(&cfg, &s);
        assert_eq!(w, before);
    }

    #[test]
    fn wirability_only_never_raises_wt() {
        let cfg = CostConfig::wirability_only();
        let mut w = CostWeights::initial(&cfg, 10_000.0, 10);
        assert_eq!(w.wt, 0.0);
        let mut s = DeltaStats::default();
        s.record(1.0, 1.0, 300.0);
        w.adapt(&cfg, &s);
        assert_eq!(w.wt, 0.0);
    }
}
