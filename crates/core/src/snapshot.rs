// rowfpga-lint: durable
//! Versioned, dependency-free checkpoints of a layout run.
//!
//! A checkpoint captures the full annealer state at a temperature boundary
//! — placement sites and pinmaps, every net's routing record, the RNG
//! stream words, the cooling-schedule cursor, the adaptive cost weights,
//! the dynamics trace and the best layout seen so far — as one JSON
//! document (the same [`Json`] value the observability journal uses).
//! Restoring it and stepping on is bit-identical to never having stopped:
//! timing is *not* stored because [`TimingState::new`] rebuilds it
//! deterministically from placement and routing.
//!
//! Checkpoints are written atomically: the document goes to a `.tmp`
//! sibling first, is fsynced, and is renamed over the real path, so a
//! crash mid-write leaves the previous complete snapshot intact (the
//! loader only ever reads the real path).
//!
//! The header carries a format marker, a version, FNV-1a fingerprints of
//! the architecture and the netlist, and the run seeds, so a resume
//! against the wrong design or configuration fails with a typed
//! [`CheckpointError`] instead of corrupting a run.
//!
//! [`TimingState::new`]: rowfpga_timing::TimingState::new

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use rowfpga_anneal::AnnealCursor;
use rowfpga_arch::Architecture;
use rowfpga_netlist::{write_netlist, Netlist};
use rowfpga_obs::Json;
use rowfpga_route::NetRouteSnapshot;

use crate::cost::CostWeights;
use crate::dynamics::{DynamicsSample, DynamicsTrace};

/// The `format` marker every checkpoint document carries.
pub const CHECKPOINT_FORMAT: &str = "rowfpga-checkpoint";

/// The current checkpoint format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Errors of checkpoint I/O, decoding and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error text.
        detail: String,
    },
    /// The file is not valid JSON.
    Parse {
        /// The parser's complaint.
        detail: String,
    },
    /// The document is JSON but not a well-formed checkpoint.
    Format {
        /// What was missing or malformed.
        detail: String,
    },
    /// The checkpoint is from an unsupported format version.
    Version {
        /// The version found in the file.
        found: u64,
    },
    /// The checkpoint was written for a different architecture.
    ArchMismatch {
        /// Fingerprint in the file.
        found: u64,
        /// Fingerprint of the architecture being resumed on.
        expected: u64,
    },
    /// The checkpoint was written for a different netlist.
    NetlistMismatch {
        /// Fingerprint in the file.
        found: u64,
        /// Fingerprint of the netlist being resumed on.
        expected: u64,
    },
    /// The checkpoint was written under different run seeds.
    SeedMismatch {
        /// Which seed disagrees (`placement` or `anneal`).
        which: &'static str,
        /// Seed in the file.
        found: u64,
        /// Seed of the resuming configuration.
        expected: u64,
    },
    /// The decoded state does not reconstruct a legal layout.
    Restore {
        /// What failed to restore.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => write!(f, "checkpoint io on {path}: {detail}"),
            CheckpointError::Parse { detail } => write!(f, "checkpoint is not JSON: {detail}"),
            CheckpointError::Format { detail } => write!(f, "malformed checkpoint: {detail}"),
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads {CHECKPOINT_VERSION})"
            ),
            CheckpointError::ArchMismatch { found, expected } => write!(
                f,
                "checkpoint architecture fingerprint {found:#018x} does not match {expected:#018x}"
            ),
            CheckpointError::NetlistMismatch { found, expected } => write!(
                f,
                "checkpoint netlist fingerprint {found:#018x} does not match {expected:#018x}"
            ),
            CheckpointError::SeedMismatch {
                which,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {which} seed {found} does not match configured seed {expected}"
            ),
            CheckpointError::Restore { detail } => write!(f, "checkpoint restore failed: {detail}"),
        }
    }
}

impl Error for CheckpointError {}

/// Injectable checkpoint-write failures, modelling the two crash windows
/// of the atomic write protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// The process dies mid-write: the temp file holds a truncated
    /// document and the rename never happens.
    ShortWrite,
    /// The process dies after the write but before the rename: the temp
    /// file is complete, the real path still holds the previous snapshot.
    SkipRename,
}

/// FNV-1a 64-bit hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the architecture dimensions a routing snapshot depends
/// on. Two architectures with equal fingerprints index the same site,
/// segment and channel spaces.
pub fn arch_fingerprint(arch: &Architecture) -> u64 {
    let g = arch.geometry();
    let text = format!(
        "rows={} cols={} io_columns={} tracks={} sites={} channels={} hsegs={} vsegs={}",
        g.num_rows(),
        g.num_cols(),
        g.io_columns(),
        arch.tracks_per_channel(),
        g.num_sites(),
        g.num_channels(),
        arch.num_hsegs(),
        arch.num_vsegs(),
    );
    fnv1a64(text.as_bytes())
}

/// Fingerprint of the netlist, taken over its canonical serialized text.
pub fn netlist_fingerprint(netlist: &Netlist) -> u64 {
    fnv1a64(write_netlist(netlist).as_bytes())
}

/// The layout-side state of a checkpoint: everything [`LayoutProblem`]
/// needs to reconstruct itself at a temperature boundary.
///
/// [`LayoutProblem`]: crate::LayoutProblem
#[derive(Clone, Debug, PartialEq)]
pub struct ProblemSnapshot {
    /// Site index per cell (dense, in cell-id order).
    pub sites: Vec<usize>,
    /// Pinmap palette index per cell.
    pub pinmaps: Vec<u16>,
    /// Routing record per net (dense, in net-id order).
    pub routes: Vec<NetRouteSnapshot>,
    /// Current adaptive cost weights.
    pub weights: CostWeights,
    /// Current exchange-window half-width (`usize::MAX` = unlimited).
    pub window: usize,
    /// Dynamics trace accumulated so far.
    pub trace: DynamicsTrace,
}

/// The best layout observed so far, kept as plain data so it survives a
/// checkpoint round trip.
#[derive(Clone, Debug, PartialEq)]
pub struct BestLayout {
    /// Site index per cell.
    pub sites: Vec<usize>,
    /// Pinmap palette index per cell.
    pub pinmaps: Vec<u16>,
    /// Routing record per net.
    pub routes: Vec<NetRouteSnapshot>,
    /// Globally unrouted nets of this layout.
    pub globally_unrouted: usize,
    /// Detail-incomplete nets of this layout.
    pub incomplete: usize,
    /// Incremental worst delay of this layout (ps).
    pub worst_delay: f64,
}

impl BestLayout {
    /// Quality key: fewer incomplete nets first, then fewer globally
    /// unrouted, then lower delay.
    pub fn key(&self) -> (usize, usize, f64) {
        (self.incomplete, self.globally_unrouted, self.worst_delay)
    }
}

/// One complete, versioned snapshot of a layout run.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// [`arch_fingerprint`] of the run's architecture.
    pub arch_fingerprint: u64,
    /// [`netlist_fingerprint`] of the run's netlist.
    pub netlist_fingerprint: u64,
    /// Seed of the initial random placement.
    pub placement_seed: u64,
    /// Seed of the annealing schedule.
    pub anneal_seed: u64,
    /// Repairs performed so far in the run.
    pub repairs: usize,
    /// The annealing-schedule cursor (RNG words, temperature, indices).
    pub cursor: AnnealCursor,
    /// The layout-side state.
    pub problem: ProblemSnapshot,
    /// Best layout seen so far, if tracking was active.
    pub best: Option<BestLayout>,
}

// --- JSON helpers ----------------------------------------------------------
//
// u64 values (RNG state words, fingerprints, seeds) are encoded as decimal
// strings: Json::Num is an f64 and cannot represent all 64-bit integers.

fn ju64(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn get<'a>(j: &'a Json, key: &str, what: &str) -> Result<&'a Json, CheckpointError> {
    j.get(key).ok_or_else(|| CheckpointError::Format {
        detail: format!("{what}: missing key '{key}'"),
    })
}

fn get_u64(j: &Json, key: &str, what: &str) -> Result<u64, CheckpointError> {
    let v = get(j, key, what)?;
    match v {
        Json::Str(s) => s.parse::<u64>().map_err(|_| CheckpointError::Format {
            detail: format!("{what}: '{key}' is not a decimal u64"),
        }),
        _ => v.as_u64().ok_or_else(|| CheckpointError::Format {
            detail: format!("{what}: '{key}' is not a u64"),
        }),
    }
}

fn get_usize(j: &Json, key: &str, what: &str) -> Result<usize, CheckpointError> {
    get(j, key, what)?
        .as_u64()
        .map(|v| v as usize)
        .ok_or_else(|| CheckpointError::Format {
            detail: format!("{what}: '{key}' is not an unsigned integer"),
        })
}

fn get_f64(j: &Json, key: &str, what: &str) -> Result<f64, CheckpointError> {
    get(j, key, what)?
        .as_f64()
        .ok_or_else(|| CheckpointError::Format {
            detail: format!("{what}: '{key}' is not a number"),
        })
}

fn get_bool(j: &Json, key: &str, what: &str) -> Result<bool, CheckpointError> {
    get(j, key, what)?
        .as_bool()
        .ok_or_else(|| CheckpointError::Format {
            detail: format!("{what}: '{key}' is not a bool"),
        })
}

fn get_arr<'a>(j: &'a Json, key: &str, what: &str) -> Result<&'a [Json], CheckpointError> {
    get(j, key, what)?
        .as_arr()
        .ok_or_else(|| CheckpointError::Format {
            detail: format!("{what}: '{key}' is not an array"),
        })
}

fn usize_arr(values: &[Json], what: &str) -> Result<Vec<usize>, CheckpointError> {
    values
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| CheckpointError::Format {
                    detail: format!("{what}: non-integer array element"),
                })
        })
        .collect()
}

fn cursor_to_json(c: &AnnealCursor) -> Json {
    Json::obj(vec![
        (
            "rng_state",
            Json::Arr(c.rng_state.iter().map(|&w| ju64(w)).collect()),
        ),
        ("temperature", c.temperature.into()),
        ("next_index", c.next_index.into()),
        ("stalled", c.stalled.into()),
        ("total_moves", c.total_moves.into()),
        ("best_cost", c.best_cost.into()),
        ("frozen", c.frozen.into()),
    ])
}

fn cursor_from_json(j: &Json) -> Result<AnnealCursor, CheckpointError> {
    let what = "cursor";
    let words = get_arr(j, "rng_state", what)?;
    if words.len() != 4 {
        return Err(CheckpointError::Format {
            detail: "cursor: rng_state must have 4 words".into(),
        });
    }
    let mut rng_state = [0u64; 4];
    for (i, w) in words.iter().enumerate() {
        rng_state[i] = match w {
            Json::Str(s) => s.parse::<u64>().map_err(|_| CheckpointError::Format {
                detail: "cursor: rng_state word is not a decimal u64".into(),
            })?,
            _ => {
                return Err(CheckpointError::Format {
                    detail: "cursor: rng_state word is not a string".into(),
                })
            }
        };
    }
    Ok(AnnealCursor {
        rng_state,
        temperature: get_f64(j, "temperature", what)?,
        next_index: get_usize(j, "next_index", what)?,
        stalled: get_usize(j, "stalled", what)?,
        total_moves: get_usize(j, "total_moves", what)?,
        best_cost: get_f64(j, "best_cost", what)?,
        frozen: get_bool(j, "frozen", what)?,
    })
}

fn route_to_json(r: &NetRouteSnapshot) -> Json {
    Json::obj(vec![
        (
            "vsegs",
            Json::Arr(r.vsegs.iter().map(|&v| v.into()).collect()),
        ),
        (
            "vcol",
            match r.vcol {
                Some(c) => c.into(),
                None => Json::Null,
            },
        ),
        (
            "hsegs",
            Json::Arr(
                r.hsegs
                    .iter()
                    .map(|(chan, segs)| {
                        Json::Arr(vec![
                            (*chan).into(),
                            Json::Arr(segs.iter().map(|&s| s.into()).collect()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "pending",
            Json::Arr(r.pending_channels.iter().map(|&c| c.into()).collect()),
        ),
        (
            "spans",
            Json::Arr(
                r.spans
                    .iter()
                    .map(|&(chan, lo, hi)| {
                        Json::Arr(vec![
                            chan.into(),
                            u64::from(lo).into(),
                            u64::from(hi).into(),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("global", r.globally_routed.into()),
    ])
}

fn route_from_json(j: &Json) -> Result<NetRouteSnapshot, CheckpointError> {
    let what = "route";
    let vcol = match get(j, "vcol", what)? {
        Json::Null => None,
        v => Some(v.as_u64().ok_or_else(|| CheckpointError::Format {
            detail: "route: vcol is not an integer".into(),
        })? as usize),
    };
    let hsegs = get_arr(j, "hsegs", what)?
        .iter()
        .map(|run| {
            let pair =
                run.as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| CheckpointError::Format {
                        detail: "route: hseg run is not a [channel, segs] pair".into(),
                    })?;
            let chan = pair[0].as_u64().ok_or_else(|| CheckpointError::Format {
                detail: "route: hseg channel is not an integer".into(),
            })? as usize;
            let segs = usize_arr(
                pair[1].as_arr().ok_or_else(|| CheckpointError::Format {
                    detail: "route: hseg run segs is not an array".into(),
                })?,
                "route.hsegs",
            )?;
            Ok((chan, segs))
        })
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let spans = get_arr(j, "spans", what)?
        .iter()
        .map(|span| {
            let trip =
                span.as_arr()
                    .filter(|t| t.len() == 3)
                    .ok_or_else(|| CheckpointError::Format {
                        detail: "route: span is not a [channel, lo, hi] triple".into(),
                    })?;
            let nums = trip
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| CheckpointError::Format {
                        detail: "route: span element is not an integer".into(),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((nums[0] as usize, nums[1] as u32, nums[2] as u32))
        })
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    Ok(NetRouteSnapshot {
        vsegs: usize_arr(get_arr(j, "vsegs", what)?, "route.vsegs")?,
        vcol,
        hsegs,
        pending_channels: usize_arr(get_arr(j, "pending", what)?, "route.pending")?,
        spans,
        globally_routed: get_bool(j, "global", what)?,
    })
}

fn sample_to_json(s: &DynamicsSample) -> Json {
    Json::obj(vec![
        ("index", s.index.into()),
        ("temperature", s.temperature.into()),
        ("cells_perturbed", s.cells_perturbed.into()),
        ("nets_globally_unrouted", s.nets_globally_unrouted.into()),
        ("nets_unrouted", s.nets_unrouted.into()),
        ("worst_delay", s.worst_delay.into()),
        ("cost", s.cost.into()),
    ])
}

fn sample_from_json(j: &Json) -> Result<DynamicsSample, CheckpointError> {
    let what = "dynamics sample";
    Ok(DynamicsSample {
        index: get_usize(j, "index", what)?,
        temperature: get_f64(j, "temperature", what)?,
        cells_perturbed: get_f64(j, "cells_perturbed", what)?,
        nets_globally_unrouted: get_f64(j, "nets_globally_unrouted", what)?,
        nets_unrouted: get_f64(j, "nets_unrouted", what)?,
        worst_delay: get_f64(j, "worst_delay", what)?,
        cost: get_f64(j, "cost", what)?,
    })
}

fn pinmap_arr(values: &[Json], what: &str) -> Result<Vec<u16>, CheckpointError> {
    values
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u16::try_from(n).ok())
                .ok_or_else(|| CheckpointError::Format {
                    detail: format!("{what}: pinmap out of u16 range"),
                })
        })
        .collect()
}

/// Serializes one layout triple as `(sites, pinmaps, routes)` JSON arrays.
fn layout_fields(
    sites: &[usize],
    pinmaps: &[u16],
    routes: &[NetRouteSnapshot],
) -> (Json, Json, Json) {
    (
        Json::Arr(sites.iter().map(|&s| s.into()).collect()),
        Json::Arr(pinmaps.iter().map(|&p| u64::from(p).into()).collect()),
        Json::Arr(routes.iter().map(route_to_json).collect()),
    )
}

impl Checkpoint {
    /// Serializes the checkpoint as one JSON document.
    pub fn to_json(&self) -> Json {
        let p = &self.problem;
        let (sites, pinmaps, routes) = layout_fields(&p.sites, &p.pinmaps, &p.routes);
        let best = match &self.best {
            None => Json::Null,
            Some(b) => {
                let (sites, pinmaps, routes) = layout_fields(&b.sites, &b.pinmaps, &b.routes);
                Json::obj(vec![
                    ("sites", sites),
                    ("pinmaps", pinmaps),
                    ("routes", routes),
                    ("globally_unrouted", b.globally_unrouted.into()),
                    ("incomplete", b.incomplete.into()),
                    ("worst_delay", b.worst_delay.into()),
                ])
            }
        };
        Json::obj(vec![
            ("format", CHECKPOINT_FORMAT.into()),
            ("version", self.version.into()),
            ("arch_fingerprint", ju64(self.arch_fingerprint)),
            ("netlist_fingerprint", ju64(self.netlist_fingerprint)),
            ("placement_seed", ju64(self.placement_seed)),
            ("anneal_seed", ju64(self.anneal_seed)),
            ("repairs", self.repairs.into()),
            ("cursor", cursor_to_json(&self.cursor)),
            (
                "weights",
                Json::obj(vec![
                    ("wg", self.problem.weights.wg.into()),
                    ("wd", self.problem.weights.wd.into()),
                    ("wt", self.problem.weights.wt.into()),
                ]),
            ),
            (
                "window",
                if p.window == usize::MAX {
                    Json::Null
                } else {
                    p.window.into()
                },
            ),
            ("sites", sites),
            ("pinmaps", pinmaps),
            ("routes", routes),
            (
                "trace",
                Json::Arr(p.trace.samples().iter().map(sample_to_json).collect()),
            ),
            ("best", best),
        ])
    }

    /// Decodes a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] on any missing or mistyped
    /// field and [`CheckpointError::Version`] on an unsupported version.
    pub fn from_json(j: &Json) -> Result<Checkpoint, CheckpointError> {
        let what = "checkpoint";
        match get(j, "format", what)?.as_str() {
            Some(CHECKPOINT_FORMAT) => {}
            _ => {
                return Err(CheckpointError::Format {
                    detail: format!("not a {CHECKPOINT_FORMAT} document"),
                })
            }
        }
        let version = get_u64(j, "version", what)?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version { found: version });
        }
        let weights_j = get(j, "weights", what)?;
        let weights = CostWeights {
            wg: get_f64(weights_j, "wg", "weights")?,
            wd: get_f64(weights_j, "wd", "weights")?,
            wt: get_f64(weights_j, "wt", "weights")?,
        };
        let window = match get(j, "window", what)? {
            Json::Null => usize::MAX,
            v => v.as_u64().ok_or_else(|| CheckpointError::Format {
                detail: "window is not an integer or null".into(),
            })? as usize,
        };
        let mut trace = DynamicsTrace::new();
        for s in get_arr(j, "trace", what)? {
            trace.push(sample_from_json(s)?);
        }
        let routes = get_arr(j, "routes", what)?
            .iter()
            .map(route_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let best = match get(j, "best", what)? {
            Json::Null => None,
            b => Some(BestLayout {
                sites: usize_arr(get_arr(b, "sites", "best")?, "best.sites")?,
                pinmaps: pinmap_arr(get_arr(b, "pinmaps", "best")?, "best.pinmaps")?,
                routes: get_arr(b, "routes", "best")?
                    .iter()
                    .map(route_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
                globally_unrouted: get_usize(b, "globally_unrouted", "best")?,
                incomplete: get_usize(b, "incomplete", "best")?,
                worst_delay: get_f64(b, "worst_delay", "best")?,
            }),
        };
        Ok(Checkpoint {
            version,
            arch_fingerprint: get_u64(j, "arch_fingerprint", what)?,
            netlist_fingerprint: get_u64(j, "netlist_fingerprint", what)?,
            placement_seed: get_u64(j, "placement_seed", what)?,
            anneal_seed: get_u64(j, "anneal_seed", what)?,
            repairs: get_usize(j, "repairs", what)?,
            cursor: cursor_from_json(get(j, "cursor", what)?)?,
            problem: ProblemSnapshot {
                sites: usize_arr(get_arr(j, "sites", what)?, "sites")?,
                pinmaps: pinmap_arr(get_arr(j, "pinmaps", what)?, "pinmaps")?,
                routes,
                weights,
                window,
                trace,
            },
            best,
        })
    }

    /// Checks the header against the design and seeds of the resuming run.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch: architecture, netlist, or either seed.
    pub fn validate(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
        placement_seed: u64,
        anneal_seed: u64,
    ) -> Result<(), CheckpointError> {
        let expected = arch_fingerprint(arch);
        if self.arch_fingerprint != expected {
            return Err(CheckpointError::ArchMismatch {
                found: self.arch_fingerprint,
                expected,
            });
        }
        let expected = netlist_fingerprint(netlist);
        if self.netlist_fingerprint != expected {
            return Err(CheckpointError::NetlistMismatch {
                found: self.netlist_fingerprint,
                expected,
            });
        }
        if self.placement_seed != placement_seed {
            return Err(CheckpointError::SeedMismatch {
                which: "placement",
                found: self.placement_seed,
                expected: placement_seed,
            });
        }
        if self.anneal_seed != anneal_seed {
            return Err(CheckpointError::SeedMismatch {
                which: "anneal",
                found: self.anneal_seed,
                expected: anneal_seed,
            });
        }
        Ok(())
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp`, fsync,
    /// rename over `path`. A crash at any point leaves either the previous
    /// complete snapshot or the new one at `path` — never a torn file.
    ///
    /// `fault` injects one of the crash windows (for the resilience test
    /// suite): the write returns an error and `path` is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when any filesystem step fails.
    pub fn save(&self, path: &Path, fault: Option<WriteFault>) -> Result<(), CheckpointError> {
        let text = self.to_json().to_string_compact();
        write_atomic(path, &text, fault)
    }

    /// Reads and decodes a checkpoint. Only the real path is consulted —
    /// a leftover `.tmp` sibling from an interrupted write is ignored, so
    /// the last complete snapshot wins.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be read and
    /// [`CheckpointError::Parse`]/[`CheckpointError::Format`] when it does
    /// not decode.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        let doc = rowfpga_obs::json::parse(&text).map_err(|e| CheckpointError::Parse {
            detail: e.to_string(),
        })?;
        Checkpoint::from_json(&doc)
    }
}

/// The temp-file sibling used by the atomic write.
pub fn temp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn write_atomic(path: &Path, text: &str, fault: Option<WriteFault>) -> Result<(), CheckpointError> {
    let tmp = temp_path(path);
    let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    let bytes = text.as_bytes();
    match fault {
        Some(WriteFault::ShortWrite) => {
            file.write_all(&bytes[..bytes.len() / 2])
                .map_err(|e| io_err(&tmp, e))?;
            let _ = file.sync_all();
            return Err(CheckpointError::Io {
                path: tmp.display().to_string(),
                detail: "injected crash mid-write (temp file truncated, no rename)".into(),
            });
        }
        Some(WriteFault::SkipRename) | None => {
            file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
            file.write_all(b"\n").map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
            drop(file);
            if fault == Some(WriteFault::SkipRename) {
                return Err(CheckpointError::Io {
                    path: tmp.display().to_string(),
                    detail: "injected crash before rename (temp file complete, no rename)".into(),
                });
            }
        }
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

// --- Retention generations -------------------------------------------------
//
// Long daemon runs checkpoint thousands of times; keeping every snapshot
// grows disk without bound, keeping only the latest loses the safety net
// against a corrupt newest file. Retention keeps the newest `keep`
// snapshots as sortable generation siblings of the base path
// (`ckpt.json.g00000042` for temperature 42) while the base path itself
// always names the newest complete snapshot, so every pre-retention
// consumer of the base path keeps working unchanged.

/// Generation sibling of `base` for the snapshot taken after `temp`
/// completed temperatures: `<base>.gNNNNNNNN`, zero-padded so
/// lexicographic and numeric order agree.
pub fn generation_path(base: &Path, temp: usize) -> std::path::PathBuf {
    let mut name = base.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".g{temp:08}"));
    base.with_file_name(name)
}

/// The generation files of `base` present on disk, oldest first.
pub fn list_generations(base: &Path) -> Vec<(usize, std::path::PathBuf)> {
    let Some(name) = base.file_name().and_then(|n| n.to_str()) else {
        return Vec::new();
    };
    let prefix = format!("{name}.g");
    let dir = match base.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(&dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        let Some(digits) = file_name.strip_prefix(prefix.as_str()) else {
            continue;
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(temp) = digits.parse::<usize>() else {
            continue;
        };
        out.push((temp, entry.path()));
    }
    out.sort_unstable();
    out
}

/// Quick structural probe of a snapshot file: the format marker near the
/// head and a closing brace at the tail. Cheaper than a full parse, which
/// is what retention GC wants when deciding whether a survivor exists.
pub fn probe_snapshot(path: &Path) -> bool {
    let Ok(text) = fs::read_to_string(path) else {
        return false;
    };
    let head_len = text.char_indices().nth(256).map_or(text.len(), |(i, _)| i);
    text[..head_len].contains(CHECKPOINT_FORMAT) && text.trim_end().ends_with('}')
}

/// Deletes the oldest generation files of `base` until at most
/// `keep.max(1)` remain. Refuses to delete the only valid snapshot: when
/// neither `base` nor any retained generation probes as valid, the newest
/// valid eviction candidate is spared. Returns the number of files
/// deleted; failures to delete are ignored (GC is best-effort).
pub fn gc_generations(base: &Path, keep: usize) -> usize {
    let keep = keep.max(1);
    let gens = list_generations(base);
    if gens.len() <= keep {
        return 0;
    }
    let (evict, retain) = gens.split_at(gens.len() - keep);
    let survivor_valid = probe_snapshot(base) || retain.iter().any(|(_, p)| probe_snapshot(p));
    let spared: Option<&Path> = if survivor_valid {
        None
    } else {
        evict
            .iter()
            .rev()
            .find(|(_, p)| probe_snapshot(p))
            .map(|(_, p)| p.as_path())
    };
    let mut deleted = 0;
    for (_, path) in evict {
        if Some(path.as_path()) == spared {
            continue;
        }
        if fs::remove_file(path).is_ok() {
            deleted += 1;
        }
    }
    deleted
}

/// Loads the newest generation of `base` that decodes, quarantining
/// corrupt generations along the way (renamed to a `.corrupt` sibling so
/// they are never retried). Returns `None` when no generation decodes.
pub fn load_newest_generation(base: &Path) -> Option<(Checkpoint, std::path::PathBuf)> {
    for (_, path) in list_generations(base).into_iter().rev() {
        match Checkpoint::load(&path) {
            Ok(ck) => return Some((ck, path)),
            Err(_) => {
                let mut name = path.file_name().unwrap_or_default().to_os_string();
                name.push(".corrupt");
                let _ = fs::rename(&path, path.with_file_name(name));
            }
        }
    }
    None
}

/// Repoints `base` at the freshly written generation file without a
/// second serialization: hard-link the generation onto the temp sibling
/// and rename it over `base`, falling back to an independent atomic write
/// on filesystems without hard links.
fn promote(generation: &Path, base: &Path, text: &str) -> Result<(), CheckpointError> {
    let tmp = temp_path(base);
    let _ = fs::remove_file(&tmp);
    if fs::hard_link(generation, &tmp).is_ok() {
        fs::rename(&tmp, base).map_err(|e| io_err(base, e))
    } else {
        write_atomic(base, text, None)
    }
}

impl Checkpoint {
    /// Writes the checkpoint as a retention generation: the document goes
    /// to [`generation_path`]`(base, temp)` atomically, `base` is
    /// repointed at the fresh document (so `base` always names the newest
    /// complete snapshot), and generations beyond `keep` are
    /// garbage-collected oldest-first.
    ///
    /// `fault` injects a crash window into the generation write; neither
    /// `base` nor any existing generation is touched when it fires.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when a filesystem step fails.
    pub fn save_generation(
        &self,
        base: &Path,
        temp: usize,
        keep: usize,
        fault: Option<WriteFault>,
    ) -> Result<(), CheckpointError> {
        let text = self.to_json().to_string_compact();
        let generation = generation_path(base, temp);
        write_atomic(&generation, &text, fault)?;
        promote(&generation, base, &text)?;
        gc_generations(base, keep);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            arch_fingerprint: u64::MAX - 3,
            netlist_fingerprint: 0x1234_5678_9abc_def0,
            placement_seed: 7,
            anneal_seed: u64::MAX,
            repairs: 2,
            cursor: AnnealCursor {
                rng_state: [u64::MAX, 1, 0x8000_0000_0000_0001, 42],
                temperature: 3.25,
                next_index: 11,
                stalled: 1,
                total_moves: 12_345,
                best_cost: 98.765,
                frozen: false,
            },
            problem: ProblemSnapshot {
                sites: vec![3, 1, 4, 1, 5],
                pinmaps: vec![0, 2, 0, 1, 7],
                routes: vec![
                    NetRouteSnapshot {
                        vsegs: vec![9, 2],
                        vcol: Some(4),
                        hsegs: vec![(0, vec![5, 6]), (3, vec![1])],
                        pending_channels: vec![2],
                        spans: vec![(0, 1, 7), (3, 2, 4), (2, 0, 3)],
                        globally_routed: true,
                    },
                    NetRouteSnapshot::default(),
                ],
                weights: CostWeights {
                    wg: 1.5,
                    wd: 1.0,
                    wt: 0.0123,
                },
                window: usize::MAX,
                trace: {
                    let mut t = DynamicsTrace::new();
                    t.push(DynamicsSample {
                        index: 0,
                        temperature: 10.5,
                        cells_perturbed: 0.75,
                        nets_globally_unrouted: 0.25,
                        nets_unrouted: 0.5,
                        worst_delay: 12_500.0,
                        cost: 200.25,
                    });
                    t
                },
            },
            best: Some(BestLayout {
                sites: vec![1, 3, 4, 0, 5],
                pinmaps: vec![0, 0, 0, 0, 0],
                routes: vec![NetRouteSnapshot::default(), NetRouteSnapshot::default()],
                globally_unrouted: 0,
                incomplete: 1,
                worst_delay: 11_000.5,
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let ck = sample_checkpoint();
        let text = ck.to_json().to_string_compact();
        let back = Checkpoint::from_json(&rowfpga_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ck);

        // window that is limited survives too
        let mut ck2 = ck;
        ck2.problem.window = 17;
        ck2.best = None;
        let text = ck2.to_json().to_string_compact();
        let back = Checkpoint::from_json(&rowfpga_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ck2);
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let ck = sample_checkpoint();
        let path = std::env::temp_dir().join("rowfpga_ckpt_roundtrip.json");
        ck.save(&path, None).unwrap();
        assert!(!temp_path(&path).exists(), "temp file must be renamed away");
        let back = Checkpoint::load(&path).unwrap();
        let _ = fs::remove_file(&path);
        assert_eq!(back, ck);
    }

    #[test]
    fn short_write_crash_window_keeps_the_previous_snapshot() {
        let path = std::env::temp_dir().join("rowfpga_ckpt_shortwrite.json");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(temp_path(&path));
        let mut ck = sample_checkpoint();
        ck.save(&path, None).unwrap();

        // A later write dies mid-stream: temp file present and truncated,
        // real path still holds the first snapshot.
        ck.repairs = 99;
        let err = ck.save(&path, Some(WriteFault::ShortWrite)).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
        assert!(temp_path(&path).exists(), "truncated temp file remains");
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.repairs, sample_checkpoint().repairs);

        // The loader never looks at the temp file, and the torn temp file
        // is not even parseable JSON.
        let torn = fs::read_to_string(temp_path(&path)).unwrap();
        assert!(rowfpga_obs::json::parse(&torn).is_err());
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(temp_path(&path));
    }

    #[test]
    fn skipped_rename_crash_window_keeps_the_previous_snapshot() {
        let path = std::env::temp_dir().join("rowfpga_ckpt_norename.json");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(temp_path(&path));
        let mut ck = sample_checkpoint();
        ck.save(&path, None).unwrap();

        ck.repairs = 42;
        let err = ck.save(&path, Some(WriteFault::SkipRename)).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
        // The temp file is a complete document — the crash hit between
        // write and rename — but the real path wins on load.
        let tmp_text = fs::read_to_string(temp_path(&path)).unwrap();
        assert!(rowfpga_obs::json::parse(&tmp_text).is_ok());
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.repairs, sample_checkpoint().repairs);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(temp_path(&path));
    }

    #[test]
    fn validation_rejects_wrong_design_and_seeds() {
        use rowfpga_netlist::{generate, GenerateConfig};
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let other_nl = generate(&GenerateConfig {
            num_cells: 31,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .tracks_per_channel(12)
            .build()
            .unwrap();
        let other_arch = arch.with_tracks(13).unwrap();

        let mut ck = sample_checkpoint();
        ck.arch_fingerprint = arch_fingerprint(&arch);
        ck.netlist_fingerprint = netlist_fingerprint(&nl);
        ck.placement_seed = 5;
        ck.anneal_seed = 6;

        ck.validate(&arch, &nl, 5, 6).unwrap();
        assert!(matches!(
            ck.validate(&other_arch, &nl, 5, 6),
            Err(CheckpointError::ArchMismatch { .. })
        ));
        assert!(matches!(
            ck.validate(&arch, &other_nl, 5, 6),
            Err(CheckpointError::NetlistMismatch { .. })
        ));
        assert!(matches!(
            ck.validate(&arch, &nl, 9, 6),
            Err(CheckpointError::SeedMismatch {
                which: "placement",
                ..
            })
        ));
        assert!(matches!(
            ck.validate(&arch, &nl, 5, 9),
            Err(CheckpointError::SeedMismatch {
                which: "anneal",
                ..
            })
        ));
    }

    #[test]
    fn version_and_format_gates_reject_foreign_documents() {
        let ck = sample_checkpoint();
        let mut doc = ck.to_json();
        // bump the version in place
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "version" {
                    *v = Json::Num(2.0);
                }
            }
        }
        assert!(matches!(
            Checkpoint::from_json(&doc),
            Err(CheckpointError::Version { found: 2 })
        ));
        let not_ours = Json::obj(vec![("format", "something-else".into())]);
        assert!(matches!(
            Checkpoint::from_json(&not_ours),
            Err(CheckpointError::Format { .. })
        ));
    }

    #[test]
    fn fingerprints_separate_designs_and_architectures() {
        use rowfpga_netlist::{generate, GenerateConfig};
        let a = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let b = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            seed: 99,
            ..GenerateConfig::default()
        });
        assert_eq!(netlist_fingerprint(&a), netlist_fingerprint(&a));
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&b));

        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .tracks_per_channel(12)
            .build()
            .unwrap();
        assert_eq!(arch_fingerprint(&arch), arch_fingerprint(&arch));
        assert_ne!(
            arch_fingerprint(&arch),
            arch_fingerprint(&arch.with_tracks(13).unwrap())
        );
    }

    fn retention_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rowfpga-ret-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generation_paths_sort_with_temperature() {
        let base = Path::new("/spool/job/ckpt.json");
        let g5 = generation_path(base, 5);
        let g40 = generation_path(base, 40);
        assert_eq!(
            g5.file_name().unwrap().to_str().unwrap(),
            "ckpt.json.g00000005"
        );
        assert!(g5.to_str() < g40.to_str(), "zero padding keeps order");
    }

    #[test]
    fn save_generation_promotes_base_and_gcs_oldest() {
        let dir = retention_dir("gc");
        let base = dir.join("ckpt.json");
        let mut ck = sample_checkpoint();
        for temp in 1..=5 {
            ck.repairs = temp;
            ck.save_generation(&base, temp, 2, None).unwrap();
        }
        let gens = list_generations(&base);
        assert_eq!(
            gens.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![4, 5],
            "keep=2 retains the two newest generations"
        );
        // The base path always holds the newest snapshot.
        assert_eq!(Checkpoint::load(&base).unwrap().repairs, 5);
        assert_eq!(Checkpoint::load(&gens[1].1).unwrap().repairs, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_refuses_to_delete_the_only_valid_snapshot() {
        let dir = retention_dir("guard");
        let base = dir.join("ckpt.json");
        let ck = sample_checkpoint();
        // One valid old generation; base and the newer generations are
        // corrupt (torn tails).
        ck.save(&generation_path(&base, 1), None).unwrap();
        for temp in [2usize, 3, 4] {
            fs::write(
                generation_path(&base, temp),
                "{\"format\":\"rowfpga-checkpoint\"",
            )
            .unwrap();
        }
        fs::write(&base, "{\"format\":\"rowfpga-checkpoint\"").unwrap();
        let deleted = gc_generations(&base, 2);
        let gens = list_generations(&base);
        assert_eq!(deleted, 1, "only the corrupt evictable generation goes");
        assert_eq!(
            gens.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![1, 3, 4],
            "the only valid snapshot (g1) is spared: {gens:?}"
        );
        assert!(probe_snapshot(&gens[0].1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_newest_generation_quarantines_corrupt_files() {
        let dir = retention_dir("quarantine");
        let base = dir.join("ckpt.json");
        let mut ck = sample_checkpoint();
        ck.repairs = 7;
        ck.save(&generation_path(&base, 3), None).unwrap();
        // A newer but torn generation must be skipped and quarantined.
        fs::write(
            generation_path(&base, 9),
            "{\"format\":\"rowfpga-checkpoint\"",
        )
        .unwrap();
        let (loaded, source) = load_newest_generation(&base).unwrap();
        assert_eq!(loaded.repairs, 7);
        assert_eq!(source, generation_path(&base, 3));
        assert!(!generation_path(&base, 9).exists());
        let corrupt = generation_path(&base, 9).with_file_name("ckpt.json.g00000009.corrupt");
        assert!(
            corrupt.exists(),
            "torn generation is quarantined, not deleted"
        );
        assert!(load_newest_generation(&base).is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
