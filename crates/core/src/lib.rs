//! Performance-driven simultaneous placement, global routing and detailed
//! routing for row-based FPGAs.
//!
//! This crate is the primary contribution of Nag & Rutenbar,
//! *Performance-Driven Simultaneous Place and Route for Row-Based FPGAs*
//! (DAC 1994): a single simulated-annealing loop in which **all** the
//! layout variables — cell locations, cell pinmaps, vertical feedthrough
//! assignments and horizontal segment assignments — evolve concurrently.
//!
//! Every annealing move perturbs the placement (cell exchange or pinmap
//! reassignment) and triggers a cascade: the moved cells' nets are ripped
//! up, incrementally re-routed globally and in detail, and the worst-case
//! path delay is incrementally re-propagated. The move is then accepted or
//! rejected against the cost
//!
//! ```text
//! Cost = Wg·G + Wd·D + Wt·T
//! ```
//!
//! where `G` counts globally unrouted nets, `D` counts nets lacking a
//! complete detailed routing and `T` is the worst-case path delay, with the
//! weights normalized adaptively at runtime (paper §3.2). There is no
//! wirelength term: short wires emerge constructively from the incremental
//! routers' cost functions.
//!
//! ```no_run
//! use rowfpga_core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
//! use rowfpga_netlist::{generate, paper_preset, PaperBenchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = generate(&paper_preset(PaperBenchmark::Cse));
//! let arch = size_architecture(&netlist, &SizingConfig::default())?;
//! let result = SimultaneousPlaceRoute::new(SimPrConfig::fast()).run(&arch, &netlist)?;
//! println!(
//!     "routed {}%, worst path {:.1} ns",
//!     100 * (result.fully_routed as u8),
//!     result.worst_delay / 1000.0
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod dynamics;
mod engine;
#[cfg(feature = "fault-inject")]
mod fault;
mod problem;
mod render;
mod sizing;
mod snapshot;

pub use cost::{CostConfig, CostWeights};
pub use dynamics::{DynamicsSample, DynamicsTrace};
pub use engine::{
    LayoutError, LayoutResult, ResilienceConfig, SimPrConfig, SimultaneousPlaceRoute, StopFlag,
    StopReason,
};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultPlan, InjectedFault};
pub use problem::LayoutProblem;
pub use render::{render_ascii, render_svg};
pub use sizing::{size_architecture, SizingConfig};
pub use snapshot::{
    arch_fingerprint, gc_generations, generation_path, list_generations, load_newest_generation,
    netlist_fingerprint, probe_snapshot, temp_path as checkpoint_temp_path, BestLayout, Checkpoint,
    CheckpointError, ProblemSnapshot, WriteFault, CHECKPOINT_FORMAT, CHECKPOINT_VERSION,
};
