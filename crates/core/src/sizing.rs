//! Deriving a right-sized chip for a netlist.
//!
//! The paper's wirability experiment (Table 2) fixes the chip's site grid
//! and varies tracks per channel; this module produces that grid: enough
//! logic sites for the design at a target utilization (dense packing is
//! the economic point of the exercise — §1: failing to pack a design onto
//! the smallest feasible FPGA carries a substantial cost penalty), enough
//! I/O sites at the row ends, and a row-based aspect ratio (more columns
//! than rows, as in the ACT parts).

use rowfpga_arch::{
    Architecture, BuildArchitectureError, DelayParams, SegmentationScheme, VerticalScheme,
};
use rowfpga_netlist::Netlist;

/// Parameters of the sizing heuristic.
#[derive(Clone, Debug, PartialEq)]
pub struct SizingConfig {
    /// Target logic-site utilization (cells / sites), in (0, 1].
    pub utilization: f64,
    /// Columns-to-rows aspect ratio of the logic array.
    pub aspect: f64,
    /// Tracks per channel of the produced fabric.
    pub tracks_per_channel: usize,
    /// Segmentation scheme of the produced fabric.
    pub segmentation: SegmentationScheme,
    /// Vertical resources of the produced fabric.
    pub verticals: VerticalScheme,
    /// Electrical parameters.
    pub delay: DelayParams,
}

impl Default for SizingConfig {
    fn default() -> Self {
        Self {
            utilization: 0.85,
            aspect: 2.0,
            tracks_per_channel: 36,
            segmentation: SegmentationScheme::ActelLike { seed: 3 },
            verticals: VerticalScheme::WithLongLines {
                tracks_per_column: 6,
                span: 3,
            },
            delay: DelayParams::default(),
        }
    }
}

/// Builds an architecture sized for `netlist` under `config`.
///
/// # Errors
///
/// Propagates [`BuildArchitectureError`] from the architecture builder
/// (only possible with degenerate configs, e.g. zero tracks).
pub fn size_architecture(
    netlist: &Netlist,
    config: &SizingConfig,
) -> Result<Architecture, BuildArchitectureError> {
    let stats = netlist.stats();
    let logic_cells = (stats.num_comb + stats.num_seq).max(1);
    let io_cells = (stats.num_inputs + stats.num_outputs).max(1);
    let util = config.utilization.clamp(0.05, 1.0);
    let aspect = config.aspect.max(0.25);

    let logic_sites_needed = (logic_cells as f64 / util).ceil();
    let mut rows = (logic_sites_needed / aspect).sqrt().round().max(1.0) as usize;
    let mut logic_cols = (logic_sites_needed / rows as f64).ceil() as usize;
    // Ensure capacity despite rounding.
    while rows * logic_cols < logic_cells {
        logic_cols += 1;
    }
    let mut io_columns = io_cells.div_ceil(2 * rows).max(1);
    // If the chip would be I/O-bound into a sliver, add rows instead.
    while io_columns * 2 > logic_cols && rows < 4 * logic_cols {
        rows += 1;
        logic_cols = (logic_sites_needed / rows as f64).ceil().max(1.0) as usize;
        io_columns = io_cells.div_ceil(2 * rows).max(1);
    }

    // Taller chips mean longer vertical chains per net and more
    // channel-crossing nets per column; scale the per-column vertical
    // capacity with the row count so vertical resources are never the
    // accidental bottleneck of a sizing (the experiments that *want* a
    // starved fabric construct it explicitly).
    let min_vtracks = rows.div_ceil(2);
    let verticals = match config.verticals {
        VerticalScheme::Uniform {
            tracks_per_column,
            span,
        } => VerticalScheme::Uniform {
            tracks_per_column: tracks_per_column.max(min_vtracks),
            span,
        },
        VerticalScheme::WithLongLines {
            tracks_per_column,
            span,
        } => VerticalScheme::WithLongLines {
            tracks_per_column: tracks_per_column.max(min_vtracks),
            span,
        },
    };

    Architecture::builder()
        .rows(rows)
        .cols(logic_cols + 2 * io_columns)
        .io_columns(io_columns)
        .tracks_per_channel(config.tracks_per_channel)
        .segmentation(config.segmentation.clone())
        .verticals(verticals)
        .delay(config.delay)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, paper_preset, GenerateConfig, PaperBenchmark};
    use rowfpga_place::Placement;

    #[test]
    fn sized_chips_hold_their_designs() {
        for bench in PaperBenchmark::all() {
            let nl = generate(&paper_preset(bench));
            let arch = size_architecture(&nl, &SizingConfig::default()).unwrap();
            // a random placement must exist
            Placement::random(&arch, &nl, 1)
                .unwrap_or_else(|e| panic!("{}: sized chip cannot hold design: {e}", bench.name()));
        }
    }

    #[test]
    fn utilization_is_respected() {
        let nl = generate(&paper_preset(PaperBenchmark::S1));
        let stats = nl.stats();
        let arch = size_architecture(
            &nl,
            &SizingConfig {
                utilization: 0.5,
                ..SizingConfig::default()
            },
        )
        .unwrap();
        let logic_sites = arch.geometry().num_logic_sites();
        let logic_cells = stats.num_comb + stats.num_seq;
        assert!(logic_sites * 5 >= logic_cells * 10 - logic_sites); // ≥ ~2x cells (rounding slack)
        assert!(
            logic_sites as f64 >= logic_cells as f64 / 0.5 * 0.9,
            "sites {logic_sites} too few for 50% utilization of {logic_cells}"
        );
    }

    #[test]
    fn aspect_leans_wide() {
        let nl = generate(&GenerateConfig {
            num_cells: 200,
            num_inputs: 10,
            num_outputs: 10,
            num_seq: 10,
            ..GenerateConfig::default()
        });
        let arch = size_architecture(&nl, &SizingConfig::default()).unwrap();
        assert!(arch.geometry().num_cols() >= arch.geometry().num_rows());
    }

    #[test]
    fn io_heavy_designs_get_enough_io_sites() {
        let nl = generate(&GenerateConfig {
            num_cells: 80,
            num_inputs: 20,
            num_outputs: 30,
            num_seq: 5,
            ..GenerateConfig::default()
        });
        let arch = size_architecture(&nl, &SizingConfig::default()).unwrap();
        assert!(arch.geometry().num_io_sites() >= 50);
        Placement::random(&arch, &nl, 1).unwrap();
    }
}
