//! Per-temperature dynamics trace (paper Figure 6).
//!
//! The paper illustrates the character of simultaneous layout by plotting,
//! per temperature: the fraction of cells perturbed, the fraction of nets
//! globally unrouted, and the fraction of nets unrouted (lacking complete
//! detailed routing). The difference of the last two is the fraction of
//! nets globally routed but detail-unrouted. The trace shows placement
//! activity starting aggressively and falling off, global routing
//! converging by mid-run, and detailed routability converging to zero last.

/// One temperature's dynamics sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicsSample {
    /// Temperature index (0 = first).
    pub index: usize,
    /// The annealing temperature.
    pub temperature: f64,
    /// Fraction of cells touched by an accepted move at this temperature.
    pub cells_perturbed: f64,
    /// Fraction of nets globally unrouted at the end of the temperature.
    pub nets_globally_unrouted: f64,
    /// Fraction of nets lacking complete detailed routing.
    pub nets_unrouted: f64,
    /// Worst-case delay at the end of the temperature (ps).
    pub worst_delay: f64,
    /// Weighted cost at the end of the temperature.
    pub cost: f64,
}

impl DynamicsSample {
    /// Fraction of nets globally routed but not yet detail routed — the
    /// difference the paper reads off Figure 6.
    pub fn nets_global_only(&self) -> f64 {
        (self.nets_unrouted - self.nets_globally_unrouted).max(0.0)
    }
}

/// The full per-temperature dynamics of a layout run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicsTrace {
    samples: Vec<DynamicsSample>,
}

impl DynamicsTrace {
    /// Creates an empty trace.
    pub fn new() -> DynamicsTrace {
        DynamicsTrace::default()
    }

    /// Appends one temperature's sample.
    pub fn push(&mut self, sample: DynamicsSample) {
        self.samples.push(sample);
    }

    /// The samples in temperature order.
    pub fn samples(&self) -> &[DynamicsSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serializes the trace as CSV with a header row — the input to the
    /// Figure 6 reproduction.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "temp_index,temperature,cells_perturbed,nets_globally_unrouted,nets_unrouted,worst_delay_ps,cost\n",
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{},{:.6},{:.4},{:.4},{:.4},{:.1},{:.3}",
                s.index,
                s.temperature,
                s.cells_perturbed,
                s.nets_globally_unrouted,
                s.nets_unrouted,
                s.worst_delay,
                s.cost
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize, g: f64, d: f64) -> DynamicsSample {
        DynamicsSample {
            index: i,
            temperature: 10.0 / (i + 1) as f64,
            cells_perturbed: 0.5,
            nets_globally_unrouted: g,
            nets_unrouted: d,
            worst_delay: 10_000.0,
            cost: 42.0,
        }
    }

    #[test]
    fn global_only_is_the_difference() {
        assert!((sample(0, 0.2, 0.5).nets_global_only() - 0.3).abs() < 1e-12);
        // clamped when (pathologically) inverted
        assert_eq!(sample(0, 0.5, 0.2).nets_global_only(), 0.0);
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let mut t = DynamicsTrace::new();
        t.push(sample(0, 0.3, 0.6));
        t.push(sample(1, 0.1, 0.4));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("temp_index,"));
        assert!(lines[1].starts_with("0,"));
        assert!(lines[2].starts_with("1,"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
