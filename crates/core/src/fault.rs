// rowfpga-lint: allow-file(cfg-hygiene) reason=whole module sits behind the fault-inject feature gate in lib.rs
//! Deterministic fault injection for the resilience test suite.
//!
//! Only compiled under the `fault-inject` feature. A [`FaultPlan`] is a
//! seeded schedule mapping temperature indices to [`InjectedFault`]s; the
//! engine consumes it at each temperature boundary, corrupting the
//! incremental routing or timing state (through the crates' own
//! feature-gated hooks) or sabotaging the next checkpoint write. The
//! suite then proves that the self-audit detects every corruption, that
//! repair restores verifiable state, and that checkpoint crash windows
//! never lose the last complete snapshot.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

use crate::snapshot::WriteFault;

/// One injectable corruption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InjectedFault {
    /// Clear the `nth` claimed horizontal-segment owner without touching
    /// the owning net's route (an ownership bookkeeping divergence).
    RouteOwner {
        /// Which claimed segment to hit (wrapped over the claimed set).
        nth: usize,
    },
    /// Drop the tail segment of the `nth` non-empty horizontal run (a
    /// span-coverage divergence).
    RouteRun {
        /// Which run to hit (wrapped over the non-empty runs).
        nth: usize,
    },
    /// Skew the incomplete-net counter by one (a counter divergence).
    RouteCounter,
    /// Skew the incrementally tracked worst delay.
    TimingWorst {
        /// Picoseconds added to the tracked worst delay.
        delta_ps: f64,
    },
    /// Skew one cell's tracked arrival time (may leave the worst delay
    /// untouched — only the per-cell audit catches it).
    TimingArrival {
        /// Cell index to skew (wrapped over the cell count).
        cell: usize,
        /// Picoseconds added to the cell's arrival.
        delta_ps: f64,
    },
    /// Make the next checkpoint write die mid-stream.
    CheckpointShortWrite,
    /// Make the next checkpoint write die between write and rename.
    CheckpointSkipRename,
}

impl InjectedFault {
    /// The checkpoint-write crash window this fault maps to, if any.
    pub fn write_fault(&self) -> Option<WriteFault> {
        match self {
            InjectedFault::CheckpointShortWrite => Some(WriteFault::ShortWrite),
            InjectedFault::CheckpointSkipRename => Some(WriteFault::SkipRename),
            _ => None,
        }
    }
}

/// A deterministic schedule of faults, keyed by temperature index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    entries: Vec<(usize, InjectedFault)>,
}

impl FaultPlan {
    /// Builds a plan from explicit `(temperature index, fault)` pairs.
    pub fn new(entries: Vec<(usize, InjectedFault)>) -> FaultPlan {
        FaultPlan { entries }
    }

    /// Derives a plan of `count` state faults from a seed, spread over
    /// temperatures `1..=max_temp`. Equal seeds give equal plans.
    pub fn seeded(seed: u64, count: usize, max_temp: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let temp = 1 + rng.gen_range(0..max_temp.max(1));
            let fault = match rng.gen_range(0..5u32) {
                0 => InjectedFault::RouteOwner {
                    nth: rng.gen_range(0..64usize),
                },
                1 => InjectedFault::RouteRun {
                    nth: rng.gen_range(0..64usize),
                },
                2 => InjectedFault::RouteCounter,
                3 => InjectedFault::TimingWorst {
                    delta_ps: 50.0 + f64::from(rng.gen_range(0..1000u32)),
                },
                _ => InjectedFault::TimingArrival {
                    cell: rng.gen_range(0..4096usize),
                    delta_ps: 50.0 + f64::from(rng.gen_range(0..1000u32)),
                },
            };
            entries.push((temp, fault));
        }
        FaultPlan { entries }
    }

    /// Removes and returns the faults scheduled at temperature `temp`.
    pub fn take_at(&mut self, temp: usize) -> Vec<InjectedFault> {
        let mut due = Vec::new();
        self.entries.retain(|(t, f)| {
            if *t == temp {
                due.push(*f);
                false
            } else {
                true
            }
        });
        due
    }

    /// Faults not yet delivered.
    pub fn remaining(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan has no pending faults.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(11, 8, 20);
        let b = FaultPlan::seeded(11, 8, 20);
        assert_eq!(a, b);
        assert_eq!(a.remaining(), 8);
        let c = FaultPlan::seeded(12, 8, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn take_at_drains_matching_temps_in_order() {
        let mut plan = FaultPlan::new(vec![
            (3, InjectedFault::RouteCounter),
            (5, InjectedFault::TimingWorst { delta_ps: 100.0 }),
            (3, InjectedFault::RouteOwner { nth: 0 }),
        ]);
        assert!(plan.take_at(1).is_empty());
        let due = plan.take_at(3);
        assert_eq!(
            due,
            vec![
                InjectedFault::RouteCounter,
                InjectedFault::RouteOwner { nth: 0 }
            ]
        );
        assert_eq!(plan.remaining(), 1);
        assert!(!plan.is_empty());
        plan.take_at(5);
        assert!(plan.is_empty());
    }

    #[test]
    fn write_faults_map_to_crash_windows() {
        assert_eq!(
            InjectedFault::CheckpointShortWrite.write_fault(),
            Some(WriteFault::ShortWrite)
        );
        assert_eq!(
            InjectedFault::CheckpointSkipRename.write_fault(),
            Some(WriteFault::SkipRename)
        );
        assert_eq!(InjectedFault::RouteCounter.write_fault(), None);
    }
}
