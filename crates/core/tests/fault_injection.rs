//! Fault-injection suite: proves the self-audit detects every injected
//! corruption, that repair restores verifiable state, and that checkpoint
//! write crashes never lose the last complete snapshot.
//!
//! Compiled only with `--features fault-inject`.

#![cfg(feature = "fault-inject")]

use rowfpga_arch::Architecture;
use rowfpga_core::{
    CostConfig, FaultPlan, InjectedFault, LayoutProblem, SimPrConfig, SimultaneousPlaceRoute,
    StopReason,
};
use rowfpga_netlist::{generate, GenerateConfig, Netlist};
use rowfpga_place::MoveWeights;
use rowfpga_route::{verify_routing, RouterConfig};

fn fixture() -> (Architecture, Netlist) {
    let nl = generate(&GenerateConfig {
        num_cells: 40,
        num_inputs: 5,
        num_outputs: 5,
        num_seq: 3,
        ..GenerateConfig::default()
    });
    let arch = Architecture::builder()
        .rows(5)
        .cols(12)
        .io_columns(2)
        .tracks_per_channel(16)
        .build()
        .unwrap();
    (arch, nl)
}

fn problem<'a>(arch: &'a Architecture, nl: &'a Netlist) -> LayoutProblem<'a> {
    LayoutProblem::new(
        arch,
        nl,
        RouterConfig::default(),
        CostConfig::default(),
        MoveWeights::default(),
        42,
    )
    .unwrap()
}

/// Every state fault is caught by the audit, and the tiered rebuild
/// restores a state the audit (and the routing verifier) accept.
#[test]
fn audit_detects_and_repair_clears_every_state_fault() {
    let (arch, nl) = fixture();
    let state_faults = [
        (InjectedFault::RouteOwner { nth: 0 }, "routing"),
        (InjectedFault::RouteRun { nth: 1 }, "routing"),
        (InjectedFault::RouteCounter, "routing"),
        (InjectedFault::TimingWorst { delta_ps: 321.0 }, "timing"),
        (
            InjectedFault::TimingArrival {
                cell: 17,
                delta_ps: 250.0,
            },
            "timing",
        ),
    ];
    for (fault, scope) in state_faults {
        let mut p = problem(&arch, &nl);
        p.audit().expect("fresh state must audit clean");
        assert!(p.inject_fault(&fault), "{fault:?} found nothing to corrupt");
        let detail = p
            .audit()
            .expect_err(&format!("audit missed injected {fault:?}"));
        assert!(
            detail.starts_with(scope),
            "{fault:?} should be reported as a {scope} divergence, got: {detail}"
        );
        // Tiered repair: timing divergences need only the timing rebuild;
        // routing divergences need the full routing+timing rebuild.
        match scope {
            "timing" => p.rebuild_timing().unwrap(),
            _ => p.rebuild_routing().unwrap(),
        }
        p.audit()
            .unwrap_or_else(|e| panic!("repair did not clear {fault:?}: {e}"));
        verify_routing(p.routing(), &arch, &nl, p.placement()).unwrap();
    }
}

/// A timing-only rebuild cannot clear a routing corruption — the repair
/// tiering in the engine escalates for exactly this reason.
#[test]
fn timing_rebuild_does_not_mask_a_routing_fault() {
    let (arch, nl) = fixture();
    let mut p = problem(&arch, &nl);
    assert!(p.inject_fault(&InjectedFault::RouteOwner { nth: 0 }));
    p.rebuild_timing().unwrap();
    assert!(
        p.audit().is_err(),
        "a routing corruption must survive a timing-only rebuild"
    );
    p.rebuild_routing().unwrap();
    p.audit().unwrap();
}

/// End to end: a seeded fault plan corrupts the run mid-anneal, the audit
/// catches it, repair restores state, and the run converges with the
/// repair recorded in the result and the journal.
#[test]
fn faulted_run_self_repairs_and_converges() {
    use rowfpga_obs::{json, Event, Obs, RunJournal};

    let (arch, nl) = fixture();
    let journal = std::env::temp_dir().join("rowfpga_fault_run_journal.jsonl");
    let file = std::fs::File::create(&journal).unwrap();
    let obs = Obs::with_sink(Box::new(RunJournal::new(std::io::BufWriter::new(file))));

    let mut cfg = SimPrConfig::fast().with_seed(6);
    cfg.resilience.audit_every = 1;
    cfg.resilience.faults = Some(FaultPlan::new(vec![
        (2, InjectedFault::TimingWorst { delta_ps: 400.0 }),
        (4, InjectedFault::RouteCounter),
    ]));
    let result = SimultaneousPlaceRoute::new(cfg)
        .run_observed(&arch, &nl, "faulted", &obs)
        .unwrap();

    assert_eq!(result.stop_reason, StopReason::Repaired);
    assert_eq!(result.repairs, 2);
    verify_routing(&result.routing, &arch, &nl, &result.placement).unwrap();

    let text = std::fs::read_to_string(&journal).unwrap();
    let _ = std::fs::remove_file(&journal);
    let events: Vec<Event> = json::parse_lines(&text)
        .unwrap()
        .iter()
        .filter_map(Event::from_json)
        .collect();
    let failed_audits = events
        .iter()
        .filter(|e| matches!(e, Event::Audit { ok: false, .. }))
        .count();
    assert_eq!(failed_audits, 2, "both injected faults must be detected");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Repair { ok: true, .. })),
        "at least one successful repair must be journaled"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Stop { reason, .. } if reason == "repaired")),
        "the stop record must carry the repaired reason"
    );
}

/// A seeded plan is deterministic: two identical faulted runs agree.
#[test]
fn seeded_fault_runs_are_deterministic() {
    let (arch, nl) = fixture();
    let run = || {
        let mut cfg = SimPrConfig::fast().with_seed(8);
        cfg.resilience.audit_every = 1;
        cfg.resilience.faults = Some(FaultPlan::seeded(33, 2, 6));
        SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.total_moves, b.total_moves);
    assert_eq!(a.worst_delay, b.worst_delay);
    for (id, _) in nl.cells() {
        assert_eq!(a.placement.site_of(id), b.placement.site_of(id));
    }
}

/// Checkpoint write crashes (short write, missed rename) are non-fatal:
/// the run keeps going and the real path always holds the last complete
/// snapshot, which still resumes.
#[test]
fn checkpoint_write_faults_keep_the_last_complete_snapshot() {
    use rowfpga_core::Checkpoint;
    use rowfpga_obs::{json, Event, Obs, RunJournal};

    let (arch, nl) = fixture();
    let ckpt = std::env::temp_dir().join("rowfpga_fault_ckpt.json");
    let journal = std::env::temp_dir().join("rowfpga_fault_ckpt_journal.jsonl");
    let _ = std::fs::remove_file(&ckpt);
    let file = std::fs::File::create(&journal).unwrap();
    let obs = Obs::with_sink(Box::new(RunJournal::new(std::io::BufWriter::new(file))));

    let mut cfg = SimPrConfig::fast().with_seed(5);
    cfg.resilience.checkpoint_path = Some(ckpt.clone());
    cfg.resilience.checkpoint_every = 1;
    cfg.resilience.temp_budget = Some(6);
    cfg.resilience.faults = Some(FaultPlan::new(vec![
        (2, InjectedFault::CheckpointShortWrite),
        (4, InjectedFault::CheckpointSkipRename),
    ]));
    let result = SimultaneousPlaceRoute::new(cfg)
        .run_observed(&arch, &nl, "ckpt-faults", &obs)
        .unwrap();
    assert_eq!(result.stop_reason, StopReason::Deadline);

    // The surviving file is the last complete snapshot and still resumes.
    let ck = Checkpoint::load(&ckpt).unwrap();
    assert_eq!(ck.cursor.next_index, 6, "final checkpoint wins");
    let mut cfg = SimPrConfig::fast().with_seed(5);
    cfg.resilience.resume_path = Some(ckpt.clone());
    let resumed = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
    assert_eq!(resumed.stop_reason, StopReason::Converged);

    let text = std::fs::read_to_string(&journal).unwrap();
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&ckpt);
    let events: Vec<Event> = json::parse_lines(&text)
        .unwrap()
        .iter()
        .filter_map(Event::from_json)
        .collect();
    let failed_writes = events
        .iter()
        .filter(|e| matches!(e, Event::Checkpoint { ok: false, .. }))
        .count();
    assert_eq!(failed_writes, 2, "both injected write crashes journaled");
    assert!(
        events
            .iter()
            .filter(|e| matches!(e, Event::Checkpoint { ok: true, .. }))
            .count()
            >= 4,
        "the un-faulted writes must succeed"
    );
}
