//! Property tests for the move cascade's transactional undo: over random
//! move sequences with a random accept/reject mix, a rejected move must
//! roll the placement, routing and timing back bit-exactly, and the
//! surviving incremental state must still match ground truth.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rowfpga_anneal::AnnealProblem;
use rowfpga_core::{size_architecture, CostConfig, LayoutProblem, SizingConfig};
use rowfpga_netlist::{generate, GenerateConfig};
use rowfpga_place::MoveWeights;
use rowfpga_route::RouterConfig;

fn fixture(seed: u64) -> (rowfpga_arch::Architecture, rowfpga_netlist::Netlist) {
    let nl = generate(&GenerateConfig {
        num_cells: 60,
        num_inputs: 6,
        num_outputs: 6,
        num_seq: 4,
        seed,
        ..GenerateConfig::default()
    });
    let arch = size_architecture(&nl, &SizingConfig::default()).expect("design fits sized chip");
    (arch, nl)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Every rejected move rolls back to a bit-identical snapshot of the
    /// full problem state (placement sites and pinmaps, every net's route,
    /// cost weights, exchange window).
    #[test]
    fn rollback_is_bit_exact_over_random_move_sequences(
        design_seed in 0u64..1_000,
        problem_seed in 0u64..1_000,
        accepts in collection::vec(any::<bool>(), 40..60),
    ) {
        let (arch, nl) = fixture(design_seed);
        let mut problem = LayoutProblem::new(
            &arch,
            &nl,
            RouterConfig::default(),
            CostConfig::default(),
            MoveWeights::default(),
            problem_seed,
        )
        .expect("fixture fits");
        let mut rng = StdRng::seed_from_u64(problem_seed.wrapping_add(0x9e37));
        for accept in accepts {
            let before = problem.snapshot();
            let worst_before = problem.timing().worst();
            let (applied, _) = problem.propose_and_apply(&mut rng);
            if accept {
                problem.commit(applied);
            } else {
                problem.undo(applied);
                prop_assert_eq!(problem.snapshot(), before.clone());
                prop_assert!(problem.timing().worst() == worst_before);
            }
        }
        // The surviving state (after the whole commit/rollback mix) still
        // matches ground-truth re-derivation.
        prop_assert!(problem.audit().is_ok(), "{:?}", problem.audit());
    }
}
