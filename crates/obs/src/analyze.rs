//! Convergence analytics over a recorded run journal.
//!
//! [`analyze_journal`] folds a JSONL journal (see [`crate::record`] for the
//! schema) into:
//!
//! * per-temperature acceptance rates and cost statistics, attributed to
//!   the replica that produced them,
//! * a delta-cost histogram over consecutive end-of-temperature costs,
//! * stall/plateau detection on the best-cost trajectory,
//! * replica-exchange win counts and per-replica totals, and
//! * a folded-stack (flamegraph-compatible) span profile rebuilt from the
//!   `span_start` / `span_end` events.
//!
//! [`LiveStatus`] is the incremental sibling used by `rowfpga tail`: it
//! ingests lines one at a time and renders a one-line progress summary
//! (current temperature, cost, acceptance, per-replica best, ETA).
//!
//! Both readers check the `journal_header`: journals written by a *newer*
//! schema are rejected instead of misparsed, and header-less journals are
//! accepted as legacy schema 1 (events they don't carry simply yield
//! empty sections).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::record::{Event, EventMeta, TemperatureRecord, SCHEMA_VERSION};

/// Why a journal could not be analyzed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AnalyzeError {}

fn err(message: impl Into<String>) -> AnalyzeError {
    AnalyzeError {
        message: message.into(),
    }
}

/// Checks a parsed first line for schema compatibility. Returns the
/// effective schema version: the header's, or 1 for legacy header-less
/// journals.
pub fn check_schema(first: Option<&Json>) -> Result<u32, AnalyzeError> {
    match first.map(|doc| (doc, Event::from_json(doc))) {
        Some((_, Some(Event::JournalHeader { schema, generator }))) => {
            if schema > SCHEMA_VERSION {
                Err(err(format!(
                    "journal schema {schema} (written by {generator}) is newer than the \
                     supported schema {SCHEMA_VERSION}; upgrade rowfpga to read it"
                )))
            } else {
                Ok(schema)
            }
        }
        _ => Ok(1),
    }
}

/// One temperature summary with replica attribution.
#[derive(Clone, Copy, Debug)]
pub struct TempStat {
    /// Replica the sweep ran on (0 = driver / sequential run).
    pub replica: u32,
    /// The temperature record as journaled.
    pub record: TemperatureRecord,
}

impl TempStat {
    /// Accepted / attempted moves for the sweep.
    pub fn acceptance(&self) -> f64 {
        if self.record.moves == 0 {
            0.0
        } else {
            self.record.accepted as f64 / self.record.moves as f64
        }
    }
}

/// A run of temperatures where the best cost stopped improving.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plateau {
    /// Replica whose best-cost trajectory stalled.
    pub replica: u32,
    /// Temperature index the stall started at.
    pub start: usize,
    /// Number of consecutive stalled temperatures.
    pub len: usize,
    /// Best cost over the plateau.
    pub best_cost: f64,
}

/// Totals for one replica stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaStat {
    /// Replica id as journaled (0 = driver).
    pub replica: u32,
    /// Events attributed to the replica.
    pub events: u64,
    /// Temperature sweeps it completed.
    pub temps: usize,
    /// Moves it attempted.
    pub moves: usize,
    /// Best cost it reached.
    pub best_cost: f64,
    /// Exchange rounds it won.
    pub wins: usize,
}

/// One signed delta-cost bin.
#[derive(Clone, Copy, Debug)]
pub struct DeltaBin {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (inclusive for the last bin).
    pub hi: f64,
    /// Deltas that landed here.
    pub count: u64,
}

/// The folded analytics for one journal.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Effective journal schema (1 = legacy, header-less).
    pub schema: u32,
    /// Flow name from `run_start` (empty if absent).
    pub flow: String,
    /// Benchmark name from `run_start`.
    pub benchmark: String,
    /// Seed from `run_start`.
    pub seed: u64,
    /// Stop reason, if the run journaled one.
    pub stop_reason: String,
    /// Final cost from `run_end`, if present.
    pub final_cost: Option<f64>,
    /// Total journal lines that parsed as events.
    pub events: u64,
    /// Per-temperature statistics in journal order.
    pub temperatures: Vec<TempStat>,
    /// Signed histogram of consecutive end-of-temperature cost deltas.
    pub delta_bins: Vec<DeltaBin>,
    /// Detected best-cost plateaus.
    pub plateaus: Vec<Plateau>,
    /// Per-replica totals, ascending replica id.
    pub replicas: Vec<ReplicaStat>,
    /// Raw exchange rounds: `(round, winner, winner_cost, adopted)`.
    pub exchanges: Vec<(usize, usize, f64, usize)>,
    /// Folded-stack lines (`path;to;span self_us`), ready for flamegraph
    /// tooling, sorted by stack path.
    pub folded: Vec<String>,
}

/// Minimum consecutive stalled temperatures to report as a plateau.
const PLATEAU_MIN_LEN: usize = 5;
/// Relative best-cost improvement below which a temperature counts as
/// stalled.
const PLATEAU_REL_EPS: f64 = 1e-3;

/// Parses and folds a whole journal.
pub fn analyze_journal(text: &str) -> Result<Analysis, AnalyzeError> {
    let docs = json::parse_lines(text).map_err(|e| err(format!("journal is not JSONL: {e}")))?;
    analyze_docs(&docs)
}

/// Folds already-parsed journal lines.
pub fn analyze_docs(docs: &[Json]) -> Result<Analysis, AnalyzeError> {
    let mut a = Analysis {
        schema: check_schema(docs.first())?,
        ..Analysis::default()
    };

    // Span-tree bookkeeping for the folded profile.
    let mut open: BTreeMap<u64, (String, u64, u32)> = BTreeMap::new(); // id -> (name, parent, replica)
    let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();

    let mut replicas: BTreeMap<u32, ReplicaStat> = BTreeMap::new();

    for doc in docs {
        let Some(event) = Event::from_json(doc) else {
            continue;
        };
        let meta = EventMeta::from_json(doc);
        a.events += 1;
        {
            let r = replicas.entry(meta.replica).or_default();
            r.replica = meta.replica;
            r.events += 1;
        }
        match event {
            Event::RunStart {
                flow,
                benchmark,
                seed,
                ..
            } => {
                a.flow = flow;
                a.benchmark = benchmark;
                a.seed = seed;
            }
            Event::Temperature(t) => {
                let r = replicas.entry(meta.replica).or_default();
                r.temps += 1;
                r.moves += t.moves;
                r.best_cost = if r.temps == 1 {
                    t.best_cost
                } else {
                    r.best_cost.min(t.best_cost)
                };
                a.temperatures.push(TempStat {
                    replica: meta.replica,
                    record: t,
                });
            }
            Event::Exchange {
                round,
                winner,
                winner_cost,
                adopted,
            } => {
                // Exchange winners are 0-based replica indices; their
                // journal streams are stamped index + 1.
                let r = replicas.entry(winner as u32 + 1).or_default();
                r.replica = winner as u32 + 1;
                r.wins += 1;
                a.exchanges.push((round, winner, winner_cost, adopted));
            }
            Event::Stop { reason, .. } => a.stop_reason = reason,
            Event::RunEnd { cost, .. } => a.final_cost = Some(cost),
            Event::SpanStart { id, parent, name } => {
                open.insert(id, (name, parent, meta.replica));
            }
            Event::SpanEnd { id, elapsed_us, .. } => {
                let Some((name, parent, replica)) = open.remove(&id) else {
                    continue; // truncated or legacy journal
                };
                let self_us = elapsed_us.saturating_sub(child_us.remove(&id).unwrap_or(0));
                *child_us.entry(parent).or_default() += elapsed_us;
                // Rebuild the stack path from the still-open ancestors.
                let mut path = vec![name.as_str()];
                let mut cursor = parent;
                while let Some((pname, pparent, _)) = open.get(&cursor) {
                    path.push(pname.as_str());
                    cursor = *pparent;
                }
                let root = if replica == 0 {
                    "main".to_string()
                } else {
                    format!("replica{replica}")
                };
                path.push(root.as_str());
                path.reverse();
                *folded.entry(path.join(";")).or_default() += self_us;
            }
            _ => {}
        }
    }

    a.replicas = replicas.into_values().collect();
    a.folded = folded
        .into_iter()
        .map(|(path, us)| format!("{path} {us}"))
        .collect();
    a.delta_bins = delta_histogram(&a.temperatures);
    a.plateaus = find_plateaus(&a.temperatures);
    Ok(a)
}

/// Buckets consecutive same-replica `current_cost` deltas into a signed
/// histogram with edges scaled to the largest observed magnitude.
fn delta_histogram(temps: &[TempStat]) -> Vec<DeltaBin> {
    let mut deltas = Vec::new();
    let mut last: BTreeMap<u32, f64> = BTreeMap::new();
    for t in temps {
        if let Some(prev) = last.insert(t.replica, t.record.current_cost) {
            deltas.push(t.record.current_cost - prev);
        }
    }
    if deltas.is_empty() {
        return Vec::new();
    }
    let scale = deltas.iter().fold(0.0f64, |m, d| m.max(d.abs())).max(1e-12);
    let fractions = [
        -1.0, -0.5, -0.25, -0.1, -0.01, 0.0, 0.01, 0.1, 0.25, 0.5, 1.0,
    ];
    let edges: Vec<f64> = fractions.iter().map(|f| f * scale).collect();
    let mut bins: Vec<DeltaBin> = edges
        .windows(2)
        .map(|w| DeltaBin {
            lo: w[0],
            hi: w[1],
            count: 0,
        })
        .collect();
    for d in deltas {
        let idx = bins.iter().position(|b| d < b.hi).unwrap_or(bins.len() - 1);
        bins[idx].count += 1;
    }
    bins
}

/// Finds runs of `PLATEAU_MIN_LEN`+ temperatures whose best cost improved
/// by less than `PLATEAU_REL_EPS` relative to the cost entering the run.
fn find_plateaus(temps: &[TempStat]) -> Vec<Plateau> {
    let mut by_replica: BTreeMap<u32, Vec<(usize, f64)>> = BTreeMap::new();
    for t in temps {
        by_replica
            .entry(t.replica)
            .or_default()
            .push((t.record.index, t.record.best_cost));
    }
    let mut plateaus = Vec::new();
    for (replica, series) in by_replica {
        let mut run_start = 0usize;
        let mut run_base = f64::INFINITY;
        let mut run_len = 0usize;
        for (i, &(index, best)) in series.iter().enumerate() {
            let stalled = run_len > 0 && run_base - best < PLATEAU_REL_EPS * run_base.abs();
            if stalled {
                run_len += 1;
            } else {
                if run_len >= PLATEAU_MIN_LEN {
                    plateaus.push(Plateau {
                        replica,
                        start: series[run_start].0,
                        len: run_len,
                        best_cost: run_base,
                    });
                }
                run_start = i;
                run_base = best;
                run_len = 1;
            }
            let _ = index;
        }
        if run_len >= PLATEAU_MIN_LEN {
            plateaus.push(Plateau {
                replica,
                start: series[run_start].0,
                len: run_len,
                best_cost: run_base,
            });
        }
    }
    plateaus
}

impl Analysis {
    /// The full analytics as one JSON document (the `analyze` artifact).
    pub fn to_json(&self) -> Json {
        let temps = Json::Arr(
            self.temperatures
                .iter()
                .map(|t| {
                    Json::obj(vec![
                        ("replica", u64::from(t.replica).into()),
                        ("index", t.record.index.into()),
                        ("temperature", t.record.temperature.into()),
                        ("moves", t.record.moves.into()),
                        ("accepted", t.record.accepted.into()),
                        ("acceptance", t.acceptance().into()),
                        ("mean_cost", t.record.mean_cost.into()),
                        ("std_cost", t.record.std_cost.into()),
                        ("current_cost", t.record.current_cost.into()),
                        ("best_cost", t.record.best_cost.into()),
                    ])
                })
                .collect(),
        );
        let deltas = Json::Arr(
            self.delta_bins
                .iter()
                .map(|b| {
                    Json::obj(vec![
                        ("lo", b.lo.into()),
                        ("hi", b.hi.into()),
                        ("count", b.count.into()),
                    ])
                })
                .collect(),
        );
        let plateaus = Json::Arr(
            self.plateaus
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("replica", u64::from(p.replica).into()),
                        ("start", p.start.into()),
                        ("len", p.len.into()),
                        ("best_cost", p.best_cost.into()),
                    ])
                })
                .collect(),
        );
        let replicas = Json::Arr(
            self.replicas
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("replica", u64::from(r.replica).into()),
                        ("events", r.events.into()),
                        ("temps", r.temps.into()),
                        ("moves", r.moves.into()),
                        ("best_cost", r.best_cost.into()),
                        ("wins", r.wins.into()),
                    ])
                })
                .collect(),
        );
        let exchanges = Json::Arr(
            self.exchanges
                .iter()
                .map(|&(round, winner, cost, adopted)| {
                    Json::obj(vec![
                        ("round", round.into()),
                        ("winner", winner.into()),
                        ("winner_cost", cost.into()),
                        ("adopted", adopted.into()),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema", Json::Str("rowfpga.analyze/v1".into())),
            ("journal_schema", u64::from(self.schema).into()),
            ("flow", self.flow.as_str().into()),
            ("benchmark", self.benchmark.as_str().into()),
            ("seed", self.seed.into()),
            ("stop_reason", self.stop_reason.as_str().into()),
            ("final_cost", self.final_cost.map_or(Json::Null, Json::from)),
            ("events", self.events.into()),
            ("temperatures", temps),
            ("delta_cost_histogram", deltas),
            ("plateaus", plateaus),
            ("replicas", replicas),
            ("exchanges", exchanges),
            (
                "folded",
                Json::Arr(self.folded.iter().map(|l| l.as_str().into()).collect()),
            ),
        ])
    }

    /// The folded-stack profile as one flamegraph-compatible text blob.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for line in &self.folded {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run: {} / {} (seed {}, journal schema {})",
            self.flow, self.benchmark, self.seed, self.schema
        );
        if !self.stop_reason.is_empty() {
            let _ = writeln!(out, "stop: {}", self.stop_reason);
        }
        if let Some(cost) = self.final_cost {
            let _ = writeln!(out, "final cost: {cost:.3}");
        }
        let _ = writeln!(out, "events: {}", self.events);

        if !self.temperatures.is_empty() {
            let _ = writeln!(out, "\nper-temperature acceptance");
            let _ = writeln!(
                out,
                "  {:>3} {:>5} {:>12} {:>7} {:>6} {:>12} {:>12}",
                "rep", "idx", "temperature", "moves", "acc%", "current", "best"
            );
            for t in &self.temperatures {
                let _ = writeln!(
                    out,
                    "  {:>3} {:>5} {:>12.4} {:>7} {:>5.1}% {:>12.3} {:>12.3}",
                    t.replica,
                    t.record.index,
                    t.record.temperature,
                    t.record.moves,
                    100.0 * t.acceptance(),
                    t.record.current_cost,
                    t.record.best_cost,
                );
            }
        }

        if !self.delta_bins.is_empty() {
            let _ = writeln!(out, "\ndelta-cost histogram (end-of-temperature steps)");
            let total: u64 = self.delta_bins.iter().map(|b| b.count).sum();
            for b in &self.delta_bins {
                let bar = "#".repeat(if total == 0 {
                    0
                } else {
                    (40 * b.count / total.max(1)) as usize
                });
                let _ = writeln!(
                    out,
                    "  [{:>12.4} .. {:>12.4}) {:>6}  {}",
                    b.lo, b.hi, b.count, bar
                );
            }
        }

        if self.plateaus.is_empty() {
            let _ = writeln!(out, "\nplateaus: none detected");
        } else {
            let _ = writeln!(out, "\nplateaus (best cost stalled)");
            for p in &self.plateaus {
                let _ = writeln!(
                    out,
                    "  replica {} @ temp {}: {} temps at best {:.3}",
                    p.replica, p.start, p.len, p.best_cost
                );
            }
        }

        if !self.replicas.is_empty() {
            let _ = writeln!(out, "\nreplica attribution");
            let _ = writeln!(
                out,
                "  {:>7} {:>8} {:>6} {:>9} {:>12} {:>5}",
                "replica", "events", "temps", "moves", "best", "wins"
            );
            for r in &self.replicas {
                let _ = writeln!(
                    out,
                    "  {:>7} {:>8} {:>6} {:>9} {:>12.3} {:>5}",
                    if r.replica == 0 {
                        "main".to_string()
                    } else {
                        format!("{}", r.replica)
                    },
                    r.events,
                    r.temps,
                    r.moves,
                    r.best_cost,
                    r.wins,
                );
            }
        }

        if !self.exchanges.is_empty() {
            let _ = writeln!(out, "\nexchanges: {} rounds", self.exchanges.len());
        }

        if !self.folded.is_empty() {
            let _ = writeln!(out, "\nspan profile (folded stacks, self µs)");
            for line in &self.folded {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

/// Incremental journal reader behind `rowfpga tail`.
#[derive(Clone, Debug, Default)]
pub struct LiveStatus {
    schema_checked: bool,
    /// Benchmark name once `run_start` arrived.
    pub benchmark: String,
    /// Latest temperature record per replica.
    pub latest: BTreeMap<u32, TemperatureRecord>,
    /// Best cost per replica.
    pub best: BTreeMap<u32, f64>,
    /// Temperatures seen (driver stream or replica 1, whichever leads).
    pub temps_seen: usize,
    /// Acceptance history used for the ETA projection.
    acceptance: Vec<f64>,
    /// Stop reason once the run ended.
    pub stop_reason: Option<String>,
    /// Warnings seen so far (`code: detail`).
    pub warnings: Vec<String>,
    /// Events ingested.
    pub events: u64,
}

/// Acceptance ratio the cooling schedule freezes at (the annealer stops
/// after a few temperatures below ~this); used only to project an ETA.
const FREEZE_ACCEPTANCE: f64 = 0.02;

impl LiveStatus {
    /// Creates an empty status.
    pub fn new() -> LiveStatus {
        LiveStatus::default()
    }

    /// Whether a `run_end`/`stop` has been seen.
    pub fn done(&self) -> bool {
        self.stop_reason.is_some()
    }

    /// Ingests one journal line. The first line is checked for schema
    /// compatibility; later unknown kinds are ignored.
    pub fn ingest_line(&mut self, line: &str) -> Result<(), AnalyzeError> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let doc =
            json::parse(line.trim()).map_err(|e| err(format!("journal line is not JSON: {e}")))?;
        if !self.schema_checked {
            self.schema_checked = true;
            check_schema(Some(&doc))?;
        }
        let Some(event) = Event::from_json(&doc) else {
            return Ok(());
        };
        let meta = EventMeta::from_json(&doc);
        self.events += 1;
        match event {
            Event::RunStart { benchmark, .. } => self.benchmark = benchmark,
            Event::Temperature(t) => {
                let lead = self.latest.keys().next().copied().unwrap_or(meta.replica);
                if meta.replica == lead {
                    self.temps_seen += 1;
                    self.acceptance.push(if t.moves == 0 {
                        0.0
                    } else {
                        t.accepted as f64 / t.moves as f64
                    });
                }
                self.best
                    .entry(meta.replica)
                    .and_modify(|b| *b = b.min(t.best_cost))
                    .or_insert(t.best_cost);
                self.latest.insert(meta.replica, t);
            }
            Event::Stop { reason, .. } => self.stop_reason = Some(reason),
            Event::Warning { code, detail } => self.warnings.push(format!("{code}: {detail}")),
            _ => {}
        }
        Ok(())
    }

    /// Projects how many temperatures remain before the schedule freezes,
    /// from the recent acceptance-rate trend (`None` until a downward
    /// trend is visible).
    pub fn eta_temps(&self) -> Option<usize> {
        let n = self.acceptance.len();
        if n < 6 {
            return None;
        }
        let window = &self.acceptance[n - 6..];
        let slope = (window[5] - window[0]) / 5.0;
        let current = window[5];
        if slope >= -1e-6 {
            return None; // flat or rising: no projection
        }
        if current <= FREEZE_ACCEPTANCE {
            return Some(0);
        }
        Some(((FREEZE_ACCEPTANCE - current) / slope).ceil() as usize)
    }

    /// Renders the one-line live summary. `secs_per_temp`, measured by the
    /// caller's clock, turns the temperature ETA into a wall-clock one.
    pub fn status_line(&self, secs_per_temp: Option<f64>) -> String {
        if let Some(reason) = &self.stop_reason {
            let best = self.best.values().fold(f64::INFINITY, |m, &b| m.min(b));
            return if best.is_finite() {
                format!("done ({reason}); best cost {best:.3}")
            } else {
                format!("done ({reason})")
            };
        }
        let Some((&lead, t)) = self.latest.iter().next() else {
            return format!("waiting for events ({} seen)…", self.events);
        };
        let mut line = format!(
            "temp {:>4} T={:<10.4} cost {:>10.3} acc {:>5.1}%",
            t.index,
            t.temperature,
            t.current_cost,
            if t.moves == 0 {
                0.0
            } else {
                100.0 * t.accepted as f64 / t.moves as f64
            }
        );
        for (&replica, best) in &self.best {
            if replica == lead && self.best.len() == 1 {
                let _ = write!(line, " best {best:.3}");
            } else {
                let name = if replica == 0 {
                    "main".to_string()
                } else {
                    format!("r{replica}")
                };
                let _ = write!(line, " {name}={best:.3}");
            }
        }
        match (self.eta_temps(), secs_per_temp) {
            (Some(temps), Some(secs)) => {
                let _ = write!(line, " eta ~{:.0}s", temps as f64 * secs);
            }
            (Some(temps), None) => {
                let _ = write!(line, " eta ~{temps} temps");
            }
            _ => {}
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventMeta, Recorder, RunJournal};

    fn temp(index: usize, replica: u32, accepted: usize, current: f64, best: f64) -> (Event, u32) {
        (
            Event::Temperature(TemperatureRecord {
                index,
                temperature: 10.0 * 0.9f64.powi(index as i32),
                moves: 100,
                accepted,
                mean_cost: current + 1.0,
                std_cost: 1.0,
                current_cost: current,
                best_cost: best,
            }),
            replica,
        )
    }

    fn journal_of(events: &[(Event, u32)]) -> String {
        let mut j = RunJournal::new(Vec::new());
        let header = Event::JournalHeader {
            schema: SCHEMA_VERSION,
            generator: "test".into(),
        };
        j.record_with(&header, &EventMeta::default());
        for (seq, (e, replica)) in (2..).zip(events.iter()) {
            let meta = EventMeta {
                seq,
                span: 0,
                parent_span: 0,
                replica: *replica,
            };
            j.record_with(e, &meta);
        }
        String::from_utf8(j.into_inner()).unwrap()
    }

    #[test]
    fn rejects_journals_from_the_future() {
        let text = "{\"event\":\"journal_header\",\"schema\":99,\"generator\":\"x\"}\n";
        let e = analyze_journal(text).unwrap_err();
        assert!(e.message.contains("newer"), "{e}");
        let mut live = LiveStatus::new();
        assert!(live.ingest_line(text.trim()).is_err());
    }

    #[test]
    fn legacy_headerless_journals_read_as_schema_1() {
        let (e, _) = temp(0, 0, 50, 10.0, 10.0);
        let text = e.to_json().to_string_compact() + "\n";
        let a = analyze_journal(&text).unwrap();
        assert_eq!(a.schema, 1);
        assert_eq!(a.temperatures.len(), 1);
    }

    #[test]
    fn acceptance_and_replica_attribution() {
        let events = vec![
            (
                Event::RunStart {
                    flow: "simultaneous".into(),
                    benchmark: "s1".into(),
                    seed: 7,
                    config: vec![],
                },
                0,
            ),
            temp(0, 1, 80, 100.0, 100.0),
            temp(0, 2, 60, 105.0, 105.0),
            (
                Event::Exchange {
                    round: 0,
                    winner: 0,
                    winner_cost: 100.0,
                    adopted: 1,
                },
                0,
            ),
            temp(1, 1, 40, 90.0, 90.0),
            temp(1, 2, 30, 95.0, 92.0),
            (
                Event::Stop {
                    reason: "converged".into(),
                    temps: 2,
                    repairs: 0,
                },
                0,
            ),
        ];
        let a = analyze_journal(&journal_of(&events)).unwrap();
        assert_eq!(a.schema, SCHEMA_VERSION);
        assert_eq!(a.benchmark, "s1");
        assert_eq!(a.stop_reason, "converged");
        assert_eq!(a.temperatures.len(), 4);
        assert!((a.temperatures[0].acceptance() - 0.8).abs() < 1e-12);
        let r1 = a.replicas.iter().find(|r| r.replica == 1).unwrap();
        assert_eq!(r1.temps, 2);
        assert_eq!(r1.moves, 200);
        assert_eq!(r1.best_cost, 90.0);
        assert_eq!(r1.wins, 1, "exchange winner 0 maps to replica stream 1");
        assert_eq!(a.exchanges.len(), 1);
        // Two replicas, two deltas: -10 and -10.
        let total: u64 = a.delta_bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn plateaus_are_detected() {
        let mut events = vec![temp(0, 0, 90, 100.0, 100.0)];
        for i in 1..4 {
            events.push(temp(
                i,
                0,
                80,
                100.0 - i as f64 * 10.0,
                100.0 - i as f64 * 10.0,
            ));
        }
        for i in 4..12 {
            events.push(temp(i, 0, 10, 70.0, 70.0));
        }
        let a = analyze_journal(&journal_of(&events)).unwrap();
        assert_eq!(a.plateaus.len(), 1, "{:?}", a.plateaus);
        assert_eq!(a.plateaus[0].replica, 0);
        assert!(a.plateaus[0].len >= PLATEAU_MIN_LEN);
        assert_eq!(a.plateaus[0].best_cost, 70.0);
    }

    #[test]
    fn folded_stacks_rebuild_the_span_tree() {
        let events = vec![
            (
                Event::SpanStart {
                    id: 1,
                    parent: 0,
                    name: "anneal".into(),
                },
                0,
            ),
            (
                Event::SpanStart {
                    id: 2,
                    parent: 1,
                    name: "sta".into(),
                },
                0,
            ),
            (
                Event::SpanEnd {
                    id: 2,
                    name: "sta".into(),
                    elapsed_us: 30,
                },
                0,
            ),
            (
                Event::SpanEnd {
                    id: 1,
                    name: "anneal".into(),
                    elapsed_us: 100,
                },
                0,
            ),
        ];
        let a = analyze_journal(&journal_of(&events)).unwrap();
        assert_eq!(
            a.folded,
            vec![
                "main;anneal 70".to_string(),
                "main;anneal;sta 30".to_string()
            ],
            "self time excludes child time"
        );
        assert!(a.folded_text().ends_with('\n'));
    }

    #[test]
    fn live_status_tracks_progress_and_eta() {
        let mut live = LiveStatus::new();
        let header = Event::JournalHeader {
            schema: SCHEMA_VERSION,
            generator: "test".into(),
        };
        live.ingest_line(&header.to_json().to_string_compact())
            .unwrap();
        // Steadily falling acceptance: 90, 80, … so a projection appears.
        for i in 0..8 {
            let (e, _) = temp(i, 0, 90 - i * 10, 100.0 - i as f64, 100.0 - i as f64);
            live.ingest_line(&e.to_json().to_string_compact()).unwrap();
        }
        assert_eq!(live.temps_seen, 8);
        assert!(!live.done());
        let eta = live.eta_temps().expect("falling acceptance projects");
        assert!(eta > 0 && eta < 60, "eta={eta}");
        let line = live.status_line(Some(0.5));
        assert!(line.contains("temp"), "{line}");
        assert!(line.contains("eta"), "{line}");
        let stop = Event::Stop {
            reason: "converged".into(),
            temps: 8,
            repairs: 0,
        };
        live.ingest_line(&stop.to_json().to_string_compact())
            .unwrap();
        assert!(live.done());
        assert!(live.status_line(None).contains("done (converged)"));
    }
}
