//! Nestable monotonic span timers for phase profiling.
//!
//! Spans are identified by static names and may nest (e.g. a
//! `temperature` span containing many `delay_update` spans). Each span's
//! inclusive time, call count, and self time (inclusive minus time spent in
//! child spans) are accumulated; the final report renders totals in first-
//! started order.
//!
//! Beyond the aggregate totals, every span instance is also assigned a
//! session-unique id so the journal can reconstruct the full span *tree*
//! (`span_start` / `span_end` events, see [`crate::record`]). Ids are
//! assigned by a deterministic counter, not the clock; parallel replicas
//! namespace theirs via [`PhaseProfiler::set_id_base`] so merged journals
//! never collide.

use std::collections::BTreeMap;
// rowfpga-lint: begin-allow(determinism) reason=span timing is observability wall-clock by design; durations are reported, never fed back into the search
use std::time::{Duration, Instant};

/// Accumulated timing for one span name.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTotal {
    /// Number of times the span was entered.
    pub calls: u64,
    /// Total wall time with the span open (includes children).
    pub total: Duration,
    /// Total wall time spent in child spans while this span was open.
    pub child: Duration,
}

impl PhaseTotal {
    /// Time attributable to this span alone.
    pub fn self_time(&self) -> Duration {
        self.total.saturating_sub(self.child)
    }
}

/// A closed span instance, as returned by [`PhaseProfiler::end`].
#[derive(Clone, Copy, Debug)]
pub struct ClosedSpan {
    /// The id [`PhaseProfiler::start`] assigned.
    pub id: u64,
    /// The enclosing span's id (0 = root).
    pub parent: u64,
    /// Wall time the span was open.
    pub elapsed: Duration,
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    id: u64,
    started: Instant,
    child: Duration,
}

/// Records nested, named spans against a monotonic clock.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    stack: Vec<OpenSpan>,
    totals: BTreeMap<&'static str, PhaseTotal>,
    order: Vec<&'static str>,
    next_id: u64,
    id_base: u64,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Namespaces all ids this profiler assigns from here on (replica `r`
    /// uses `(r as u64) << 32`). The default base is 0.
    pub fn set_id_base(&mut self, base: u64) {
        self.id_base = base;
    }

    /// Opens a span and returns `(id, parent_id)`. Must be balanced by
    /// [`PhaseProfiler::end`] with the same name, in LIFO order.
    pub fn start(&mut self, name: &'static str) -> (u64, u64) {
        self.next_id += 1;
        let id = self.id_base + self.next_id;
        let parent = self.stack.last().map_or(0, |s| s.id);
        self.stack.push(OpenSpan {
            name,
            id,
            started: Instant::now(),
            child: Duration::ZERO,
        });
        (id, parent)
    }

    /// Closes the innermost span and returns its identity and elapsed
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if no span is open or the innermost open span has a
    /// different name (mismatched nesting is a bug in the caller).
    pub fn end(&mut self, name: &'static str) -> ClosedSpan {
        let span = self.stack.pop().unwrap_or_else(|| {
            panic!("span `{name}` ended with no span open");
        });
        assert_eq!(
            span.name, name,
            "span `{name}` ended while `{}` was innermost",
            span.name
        );
        let elapsed = span.started.elapsed();
        if !self.totals.contains_key(name) {
            self.order.push(name);
        }
        let entry = self.totals.entry(name).or_default();
        entry.calls += 1;
        entry.total += elapsed;
        entry.child += span.child;
        if let Some(parent) = self.stack.last_mut() {
            parent.child += elapsed;
        }
        ClosedSpan {
            id: span.id,
            parent: self.stack.last().map_or(0, |s| s.id),
            elapsed,
        }
    }

    /// `(id, parent_id)` of the innermost open span, or `(0, 0)` when no
    /// span is open.
    pub fn current(&self) -> (u64, u64) {
        match self.stack.len() {
            0 => (0, 0),
            1 => (self.stack[0].id, 0),
            n => (self.stack[n - 1].id, self.stack[n - 2].id),
        }
    }

    /// Number of spans currently open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Accumulated totals for one span name, if it ever closed.
    pub fn total(&self, name: &str) -> Option<PhaseTotal> {
        self.totals.get(name).copied()
    }

    /// `(name, totals)` pairs in first-started order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, PhaseTotal)> + '_ {
        self.order.iter().map(|n| (*n, self.totals[n]))
    }

    /// Folds another profiler's closed-span totals into this one (used to
    /// merge parallel replicas' profiles into the driver's report). Open
    /// spans on `other` are ignored; names unseen here keep `other`'s
    /// relative order.
    pub fn absorb(&mut self, other: &PhaseProfiler) {
        for (name, t) in other.phases() {
            if !self.totals.contains_key(name) {
                self.order.push(name);
            }
            let entry = self.totals.entry(name).or_default();
            entry.calls += t.calls;
            entry.total += t.total;
            entry.child += t.child;
        }
    }
}
// rowfpga-lint: end-allow(determinism)

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_attribute_child_time() {
        let mut p = PhaseProfiler::new();
        p.start("outer");
        p.start("inner");
        std::thread::sleep(Duration::from_millis(2));
        p.end("inner");
        p.end("outer");

        let outer = p.total("outer").unwrap();
        let inner = p.total("inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total >= inner.total, "outer includes inner");
        assert!(outer.child >= inner.total - Duration::from_micros(1));
        assert!(inner.self_time() <= inner.total);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        let mut p = PhaseProfiler::new();
        for _ in 0..5 {
            p.start("temperature");
            p.end("temperature");
        }
        assert_eq!(p.total("temperature").unwrap().calls, 5);
    }

    #[test]
    fn phases_keep_first_started_order() {
        let mut p = PhaseProfiler::new();
        p.start("warmup");
        p.end("warmup");
        p.start("anneal");
        p.start("warmup");
        p.end("warmup");
        p.end("anneal");
        let names: Vec<_> = p.phases().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["warmup", "anneal"]);
    }

    #[test]
    fn span_ids_form_a_tree() {
        let mut p = PhaseProfiler::new();
        let (outer_id, outer_parent) = p.start("outer");
        assert_eq!(outer_parent, 0);
        assert_eq!(p.current(), (outer_id, 0));
        let (inner_id, inner_parent) = p.start("inner");
        assert_eq!(inner_parent, outer_id);
        assert_eq!(p.current(), (inner_id, outer_id));
        let closed = p.end("inner");
        assert_eq!(closed.id, inner_id);
        assert_eq!(closed.parent, outer_id);
        let closed = p.end("outer");
        assert_eq!(closed.id, outer_id);
        assert_eq!(closed.parent, 0);
        assert_eq!(p.current(), (0, 0));
        // Ids are fresh per instance even for a repeated name.
        let (again, _) = p.start("outer");
        assert_ne!(again, outer_id);
        p.end("outer");
    }

    #[test]
    fn id_base_namespaces_replica_spans() {
        let mut p = PhaseProfiler::new();
        p.set_id_base(2u64 << 32);
        let (id, parent) = p.start("anneal");
        assert_eq!(id, (2u64 << 32) + 1);
        assert_eq!(parent, 0);
        p.end("anneal");
    }

    #[test]
    fn absorb_merges_totals_and_preserves_order() {
        let mut main = PhaseProfiler::new();
        main.start("anneal");
        main.end("anneal");
        let mut replica = PhaseProfiler::new();
        replica.start("anneal");
        replica.end("anneal");
        replica.start("sta");
        replica.end("sta");
        main.absorb(&replica);
        assert_eq!(main.total("anneal").unwrap().calls, 2);
        assert_eq!(main.total("sta").unwrap().calls, 1);
        let names: Vec<_> = main.phases().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["anneal", "sta"]);
    }

    #[test]
    #[should_panic(expected = "ended while")]
    fn mismatched_end_panics() {
        let mut p = PhaseProfiler::new();
        p.start("a");
        p.end("b");
    }

    #[test]
    #[should_panic(expected = "no span open")]
    fn end_without_start_panics() {
        let mut p = PhaseProfiler::new();
        p.end("a");
    }
}
