//! Nestable monotonic span timers for phase profiling.
//!
//! Spans are identified by static names and may nest (e.g. a
//! `temperature` span containing many `delay_update` spans). Each span's
//! inclusive time, call count, and self time (inclusive minus time spent in
//! child spans) are accumulated; the final report renders totals in first-
//! started order.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulated timing for one span name.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTotal {
    /// Number of times the span was entered.
    pub calls: u64,
    /// Total wall time with the span open (includes children).
    pub total: Duration,
    /// Total wall time spent in child spans while this span was open.
    pub child: Duration,
}

impl PhaseTotal {
    /// Time attributable to this span alone.
    pub fn self_time(&self) -> Duration {
        self.total.saturating_sub(self.child)
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    started: Instant,
    child: Duration,
}

/// Records nested, named spans against a monotonic clock.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    stack: Vec<OpenSpan>,
    totals: BTreeMap<&'static str, PhaseTotal>,
    order: Vec<&'static str>,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Opens a span. Must be balanced by [`PhaseProfiler::end`] with the
    /// same name, in LIFO order.
    pub fn start(&mut self, name: &'static str) {
        self.stack.push(OpenSpan {
            name,
            started: Instant::now(),
            child: Duration::ZERO,
        });
    }

    /// Closes the innermost span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open or the innermost open span has a
    /// different name (mismatched nesting is a bug in the caller).
    pub fn end(&mut self, name: &'static str) {
        let span = self.stack.pop().unwrap_or_else(|| {
            panic!("span `{name}` ended with no span open");
        });
        assert_eq!(
            span.name, name,
            "span `{name}` ended while `{}` was innermost",
            span.name
        );
        let elapsed = span.started.elapsed();
        if !self.totals.contains_key(name) {
            self.order.push(name);
        }
        let entry = self.totals.entry(name).or_default();
        entry.calls += 1;
        entry.total += elapsed;
        entry.child += span.child;
        if let Some(parent) = self.stack.last_mut() {
            parent.child += elapsed;
        }
    }

    /// Number of spans currently open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Accumulated totals for one span name, if it ever closed.
    pub fn total(&self, name: &str) -> Option<PhaseTotal> {
        self.totals.get(name).copied()
    }

    /// `(name, totals)` pairs in first-started order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, PhaseTotal)> + '_ {
        self.order.iter().map(|n| (*n, self.totals[n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_attribute_child_time() {
        let mut p = PhaseProfiler::new();
        p.start("outer");
        p.start("inner");
        std::thread::sleep(Duration::from_millis(2));
        p.end("inner");
        p.end("outer");

        let outer = p.total("outer").unwrap();
        let inner = p.total("inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total >= inner.total, "outer includes inner");
        assert!(outer.child >= inner.total - Duration::from_micros(1));
        assert!(inner.self_time() <= inner.total);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        let mut p = PhaseProfiler::new();
        for _ in 0..5 {
            p.start("temperature");
            p.end("temperature");
        }
        assert_eq!(p.total("temperature").unwrap().calls, 5);
    }

    #[test]
    fn phases_keep_first_started_order() {
        let mut p = PhaseProfiler::new();
        p.start("warmup");
        p.end("warmup");
        p.start("anneal");
        p.start("warmup");
        p.end("warmup");
        p.end("anneal");
        let names: Vec<_> = p.phases().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["warmup", "anneal"]);
    }

    #[test]
    #[should_panic(expected = "ended while")]
    fn mismatched_end_panics() {
        let mut p = PhaseProfiler::new();
        p.start("a");
        p.end("b");
    }

    #[test]
    #[should_panic(expected = "no span open")]
    fn end_without_start_panics() {
        let mut p = PhaseProfiler::new();
        p.end("a");
    }
}
