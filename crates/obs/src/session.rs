//! The shared observability handle threaded through the layout engine.
//!
//! [`Obs`] is a cheaply clonable handle that is either *disabled* (the
//! default — every call is a no-op on an `Option::None`, no allocation, no
//! locking) or *enabled*, in which case it shares one [`ObsSession`]
//! holding the metrics registry, the phase profiler, and the event sink.
//!
//! The engine is single-threaded, so the session lives behind
//! `Rc<RefCell<…>>`; borrows are confined to individual method calls and
//! never held across user code (the [`Obs::span`] closure runs with the
//! session released).

use std::cell::RefCell;
use std::rc::Rc;

use crate::metrics::MetricsRegistry;
use crate::profile::PhaseProfiler;
use crate::record::{Event, EventMeta, NoopRecorder, Recorder, SCHEMA_VERSION};
use crate::report;

/// The state behind an enabled [`Obs`] handle.
pub struct ObsSession {
    /// Named counters and histograms.
    pub metrics: MetricsRegistry,
    /// Nested span timers.
    pub profiler: PhaseProfiler,
    sink: Box<dyn Recorder>,
    seq: u64,
    replica: u32,
    emit_spans: bool,
}

impl std::fmt::Debug for ObsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSession")
            .field("metrics", &self.metrics)
            .field("profiler", &self.profiler)
            .finish_non_exhaustive()
    }
}

impl ObsSession {
    /// Creates a session draining events into `sink`.
    pub fn new(sink: Box<dyn Recorder>) -> ObsSession {
        ObsSession {
            metrics: MetricsRegistry::new(),
            profiler: PhaseProfiler::new(),
            sink,
            seq: 0,
            replica: 0,
            emit_spans: true,
        }
    }

    fn stamp(&mut self) -> EventMeta {
        let (span, parent_span) = self.profiler.current();
        self.seq += 1;
        EventMeta {
            seq: self.seq,
            span,
            parent_span,
            replica: self.replica,
        }
    }

    /// Sends one event to the sink, stamped with the current causal
    /// envelope (sequence number, enclosing span, replica).
    pub fn emit(&mut self, event: &Event) {
        let meta = self.stamp();
        self.sink.record_with(event, &meta);
    }

    /// Re-emits an event recorded elsewhere (a replica's buffered journal),
    /// preserving its span and replica attribution but re-stamping the
    /// sequence number so the merged journal stays monotonic.
    pub fn emit_replayed(&mut self, event: &Event, recorded: &EventMeta) {
        self.seq += 1;
        let meta = EventMeta {
            seq: self.seq,
            ..*recorded
        };
        self.sink.record_with(event, &meta);
    }

    /// Opens a profiling span and journals its `span_start` edge.
    pub fn span_start(&mut self, name: &'static str) {
        let (id, parent) = self.profiler.start(name);
        if self.emit_spans {
            self.seq += 1;
            let meta = EventMeta {
                seq: self.seq,
                span: id,
                parent_span: parent,
                replica: self.replica,
            };
            let event = Event::SpanStart {
                id,
                parent,
                name: name.to_string(),
            };
            self.sink.record_with(&event, &meta);
        }
    }

    /// Opens a profiling span without journaling a `span_start` event —
    /// the per-move variant (§7: per-move data is aggregated, never
    /// journaled, so journal size stays bounded by temperature count).
    pub fn span_start_quiet(&mut self, name: &'static str) {
        self.profiler.start(name);
    }

    /// Closes a span opened by [`Session::span_start_quiet`].
    pub fn span_end_quiet(&mut self, name: &'static str) {
        self.profiler.end(name);
    }

    /// Closes the innermost profiling span and journals its `span_end`
    /// edge.
    pub fn span_end(&mut self, name: &'static str) {
        let closed = self.profiler.end(name);
        if self.emit_spans {
            self.seq += 1;
            let meta = EventMeta {
                seq: self.seq,
                span: closed.id,
                parent_span: closed.parent,
                replica: self.replica,
            };
            let event = Event::SpanEnd {
                id: closed.id,
                name: name.to_string(),
                elapsed_us: u64::try_from(closed.elapsed.as_micros()).unwrap_or(u64::MAX),
            };
            self.sink.record_with(&event, &meta);
        }
    }

    /// Which replica this session attributes events to (0 = driver).
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

/// Handle to an optional observability session. `Clone` is a pointer copy.
#[derive(Clone, Default)]
pub struct Obs(Option<Rc<RefCell<ObsSession>>>);

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Obs")
            .field(if self.0.is_some() {
                &"enabled"
            } else {
                &"disabled"
            })
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every operation is a no-op.
    pub fn disabled() -> Obs {
        Obs(None)
    }

    /// An enabled handle recording into `sink`. A `journal_header` event
    /// (schema version + generator) is emitted first, so every sink-backed
    /// journal is self-describing.
    pub fn with_sink(sink: Box<dyn Recorder>) -> Obs {
        let obs = Obs(Some(Rc::new(RefCell::new(ObsSession::new(sink)))));
        obs.emit(Event::JournalHeader {
            schema: SCHEMA_VERSION,
            generator: format!("rowfpga-obs {}", env!("CARGO_PKG_VERSION")),
        });
        obs
    }

    /// An enabled handle that keeps metrics and spans but drops events
    /// (no journal header, no per-span event allocation).
    pub fn metrics_only() -> Obs {
        let obs = Obs(Some(Rc::new(RefCell::new(ObsSession::new(Box::new(
            NoopRecorder,
        ))))));
        obs.with_session(|s| s.emit_spans = false);
        obs
    }

    /// An enabled handle for parallel-annealing replica `replica` (1-based;
    /// 0 is the driver). Events carry the replica id and span ids are
    /// namespaced by `(replica as u64) << 32`; no journal header is
    /// emitted — the driver's journal already has one.
    pub fn for_replica(replica: u32, sink: Box<dyn Recorder>) -> Obs {
        let obs = Obs(Some(Rc::new(RefCell::new(ObsSession::new(sink)))));
        obs.with_session(|s| {
            s.replica = replica;
            s.profiler.set_id_base(u64::from(replica) << 32);
        });
        obs
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` against the session, if enabled.
    pub fn with_session<T>(&self, f: impl FnOnce(&mut ObsSession) -> T) -> Option<T> {
        self.0.as_ref().map(|cell| f(&mut cell.borrow_mut()))
    }

    /// Increments a counter.
    pub fn inc(&self, name: &'static str) {
        self.with_session(|s| s.metrics.inc(name));
    }

    /// Adds `n` to a counter.
    pub fn add(&self, name: &'static str, n: u64) {
        self.with_session(|s| s.metrics.add(name, n));
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.with_session(|s| s.metrics.observe(name, value));
    }

    /// Emits an event to the sink.
    pub fn emit(&self, event: Event) {
        self.with_session(|s| s.emit(&event));
    }

    /// Opens a profiling span (pair with [`Obs::span_end`]). Besides the
    /// aggregate timer, this journals a `span_start` event carrying the
    /// span's id and parent so readers can rebuild the span tree.
    pub fn span_start(&self, name: &'static str) {
        self.with_session(|s| s.span_start(name));
    }

    /// Closes a profiling span and journals its `span_end` event.
    pub fn span_end(&self, name: &'static str) {
        self.with_session(|s| s.span_end(name));
    }

    /// Times `f` under a named span. The session borrow is released while
    /// `f` runs, so `f` may use this (or a cloned) handle freely.
    pub fn span<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.span_start(name);
        let value = f();
        self.span_end(name);
        value
    }

    /// Times `f` under a named span without journaling its edges — for
    /// per-move instrumentation (§7's rule: per-move data goes to the
    /// aggregate profiler/metrics, only per-temperature and per-run data
    /// is journaled, so journal size never scales with move count).
    pub fn span_quiet<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.with_session(|s| s.span_start_quiet(name));
        let value = f();
        self.with_session(|s| s.span_end_quiet(name));
        value
    }

    /// Flushes the sink (call at run end).
    pub fn flush(&self) {
        self.with_session(|s| s.flush());
    }

    /// Renders the final counters / histogram / phase breakdown, or `None`
    /// when disabled.
    pub fn render_report(&self) -> Option<String> {
        self.with_session(report::render)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::record::RunJournal;
    use crate::sink::{ReplaySink, RingSink};

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.inc("x");
        obs.observe("h", 1.0);
        obs.emit(Event::Dynamics(crate::record::DynamicsRecord {
            index: 0,
            temperature: 1.0,
            cells_perturbed: 0,
            nets_globally_unrouted: 0,
            nets_unrouted: 0,
            worst_delay: 0.0,
            cost: 0.0,
        }));
        let out = obs.span("phase", || 41 + 1);
        assert_eq!(out, 42);
        assert!(obs.render_report().is_none());
    }

    #[test]
    fn clones_share_one_session() {
        let obs = Obs::metrics_only();
        let alias = obs.clone();
        obs.inc("moves");
        alias.inc("moves");
        let count = obs.with_session(|s| s.metrics.counter("moves")).unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn span_closure_may_reenter_the_handle() {
        let obs = Obs::metrics_only();
        obs.span("outer", || {
            obs.inc("inside");
            obs.span("inner", || {});
        });
        let (outer, inner, inside) = obs
            .with_session(|s| {
                (
                    s.profiler.total("outer").unwrap().calls,
                    s.profiler.total("inner").unwrap().calls,
                    s.metrics.counter("inside"),
                )
            })
            .unwrap();
        assert_eq!((outer, inner, inside), (1, 1, 1));
    }

    #[test]
    fn events_reach_the_sink() {
        // Share a Vec<u8> via Rc<RefCell<…>> indirection: use a journal
        // into a Vec and pull it back out through with_session.
        struct Counting {
            inner: RunJournal<Vec<u8>>,
        }
        impl Recorder for Counting {
            fn record(&mut self, event: &Event) {
                self.inner.record(event);
            }
        }
        let obs = Obs::with_sink(Box::new(Counting {
            inner: RunJournal::new(Vec::new()),
        }));
        obs.emit(Event::Reroute {
            scope: "test".into(),
            stats: crate::record::RerouteRecord {
                globally_routed: 1,
                detail_routed: 2,
                detail_failures: 0,
            },
        });
        assert!(obs.enabled());
    }

    #[test]
    fn spans_and_events_carry_causal_meta() {
        let ring = RingSink::new(64);
        let obs = Obs::with_sink(Box::new(ring.clone()));
        obs.span("outer", || {
            obs.emit(Event::Warning {
                code: "w".into(),
                detail: String::new(),
            });
            obs.span("inner", || {});
        });
        let docs: Vec<_> = ring
            .snapshot()
            .iter()
            .map(|l| json::parse(l).unwrap())
            .collect();
        let kinds: Vec<String> = docs
            .iter()
            .map(|d| d.get("event").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "journal_header",
                "span_start",
                "warning",
                "span_start",
                "span_end",
                "span_end"
            ]
        );
        let metas: Vec<EventMeta> = docs.iter().map(EventMeta::from_json).collect();
        for (i, m) in metas.iter().enumerate() {
            assert_eq!(m.seq, i as u64 + 1, "seq is monotonic from 1");
            assert_eq!(m.replica, 0, "driver session attributes replica 0");
        }
        let outer_id = docs[1].get("id").unwrap().as_u64().unwrap();
        let inner_id = docs[3].get("id").unwrap().as_u64().unwrap();
        assert_eq!(metas[2].span, outer_id, "warning fired inside outer");
        assert_eq!(docs[3].get("parent").unwrap().as_u64(), Some(outer_id));
        assert_eq!(metas[4].span, inner_id);
        assert_eq!(metas[4].parent_span, outer_id);
    }

    #[test]
    fn replica_sessions_namespace_ids_and_replay_restamps_seq() {
        let buf = ReplaySink::new();
        let replica = Obs::for_replica(2, Box::new(buf.clone()));
        replica.span("anneal", || {});
        let recorded = buf.drain();
        assert_eq!(recorded.len(), 2, "span_start + span_end, no header");
        for (event, meta) in &recorded {
            assert_eq!(meta.replica, 2);
            let id = match event {
                Event::SpanStart { id, .. } | Event::SpanEnd { id, .. } => *id,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(id >> 32, 2, "span ids are namespaced by replica");
        }

        let ring = RingSink::new(8);
        let main = Obs::with_sink(Box::new(ring.clone()));
        main.with_session(|s| {
            for (event, meta) in &recorded {
                s.emit_replayed(event, meta);
            }
        });
        let docs: Vec<_> = ring
            .snapshot()
            .iter()
            .map(|l| json::parse(l).unwrap())
            .collect();
        let metas: Vec<EventMeta> = docs.iter().map(EventMeta::from_json).collect();
        // Header is seq 1; the replayed events continue the driver's
        // sequence but keep their replica and span attribution.
        assert_eq!(metas[1].seq, 2);
        assert_eq!(metas[2].seq, 3);
        assert_eq!(metas[1].replica, 2);
        assert_eq!(metas[1].span >> 32, 2);
    }
}
