//! The shared observability handle threaded through the layout engine.
//!
//! [`Obs`] is a cheaply clonable handle that is either *disabled* (the
//! default — every call is a no-op on an `Option::None`, no allocation, no
//! locking) or *enabled*, in which case it shares one [`ObsSession`]
//! holding the metrics registry, the phase profiler, and the event sink.
//!
//! The engine is single-threaded, so the session lives behind
//! `Rc<RefCell<…>>`; borrows are confined to individual method calls and
//! never held across user code (the [`Obs::span`] closure runs with the
//! session released).

use std::cell::RefCell;
use std::rc::Rc;

use crate::metrics::MetricsRegistry;
use crate::profile::PhaseProfiler;
use crate::record::{Event, NoopRecorder, Recorder};
use crate::report;

/// The state behind an enabled [`Obs`] handle.
pub struct ObsSession {
    /// Named counters and histograms.
    pub metrics: MetricsRegistry,
    /// Nested span timers.
    pub profiler: PhaseProfiler,
    sink: Box<dyn Recorder>,
}

impl std::fmt::Debug for ObsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSession")
            .field("metrics", &self.metrics)
            .field("profiler", &self.profiler)
            .finish_non_exhaustive()
    }
}

impl ObsSession {
    /// Creates a session draining events into `sink`.
    pub fn new(sink: Box<dyn Recorder>) -> ObsSession {
        ObsSession {
            metrics: MetricsRegistry::new(),
            profiler: PhaseProfiler::new(),
            sink,
        }
    }

    /// Sends one event to the sink.
    pub fn emit(&mut self, event: &Event) {
        self.sink.record(event);
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

/// Handle to an optional observability session. `Clone` is a pointer copy.
#[derive(Clone, Default)]
pub struct Obs(Option<Rc<RefCell<ObsSession>>>);

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Obs")
            .field(if self.0.is_some() {
                &"enabled"
            } else {
                &"disabled"
            })
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every operation is a no-op.
    pub fn disabled() -> Obs {
        Obs(None)
    }

    /// An enabled handle recording into `sink`.
    pub fn with_sink(sink: Box<dyn Recorder>) -> Obs {
        Obs(Some(Rc::new(RefCell::new(ObsSession::new(sink)))))
    }

    /// An enabled handle that keeps metrics and spans but drops events.
    pub fn metrics_only() -> Obs {
        Obs::with_sink(Box::new(NoopRecorder))
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` against the session, if enabled.
    pub fn with_session<T>(&self, f: impl FnOnce(&mut ObsSession) -> T) -> Option<T> {
        self.0.as_ref().map(|cell| f(&mut cell.borrow_mut()))
    }

    /// Increments a counter.
    pub fn inc(&self, name: &'static str) {
        self.with_session(|s| s.metrics.inc(name));
    }

    /// Adds `n` to a counter.
    pub fn add(&self, name: &'static str, n: u64) {
        self.with_session(|s| s.metrics.add(name, n));
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.with_session(|s| s.metrics.observe(name, value));
    }

    /// Emits an event to the sink.
    pub fn emit(&self, event: Event) {
        self.with_session(|s| s.emit(&event));
    }

    /// Opens a profiling span (pair with [`Obs::span_end`]).
    pub fn span_start(&self, name: &'static str) {
        self.with_session(|s| s.profiler.start(name));
    }

    /// Closes a profiling span.
    pub fn span_end(&self, name: &'static str) {
        self.with_session(|s| s.profiler.end(name));
    }

    /// Times `f` under a named span. The session borrow is released while
    /// `f` runs, so `f` may use this (or a cloned) handle freely.
    pub fn span<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.span_start(name);
        let value = f();
        self.span_end(name);
        value
    }

    /// Flushes the sink (call at run end).
    pub fn flush(&self) {
        self.with_session(|s| s.flush());
    }

    /// Renders the final counters / histogram / phase breakdown, or `None`
    /// when disabled.
    pub fn render_report(&self) -> Option<String> {
        self.with_session(report::render)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunJournal;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.inc("x");
        obs.observe("h", 1.0);
        obs.emit(Event::Dynamics(crate::record::DynamicsRecord {
            index: 0,
            temperature: 1.0,
            cells_perturbed: 0,
            nets_globally_unrouted: 0,
            nets_unrouted: 0,
            worst_delay: 0.0,
            cost: 0.0,
        }));
        let out = obs.span("phase", || 41 + 1);
        assert_eq!(out, 42);
        assert!(obs.render_report().is_none());
    }

    #[test]
    fn clones_share_one_session() {
        let obs = Obs::metrics_only();
        let alias = obs.clone();
        obs.inc("moves");
        alias.inc("moves");
        let count = obs.with_session(|s| s.metrics.counter("moves")).unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn span_closure_may_reenter_the_handle() {
        let obs = Obs::metrics_only();
        obs.span("outer", || {
            obs.inc("inside");
            obs.span("inner", || {});
        });
        let (outer, inner, inside) = obs
            .with_session(|s| {
                (
                    s.profiler.total("outer").unwrap().calls,
                    s.profiler.total("inner").unwrap().calls,
                    s.metrics.counter("inside"),
                )
            })
            .unwrap();
        assert_eq!((outer, inner, inside), (1, 1, 1));
    }

    #[test]
    fn events_reach_the_sink() {
        // Share a Vec<u8> via Rc<RefCell<…>> indirection: use a journal
        // into a Vec and pull it back out through with_session.
        struct Counting {
            inner: RunJournal<Vec<u8>>,
        }
        impl Recorder for Counting {
            fn record(&mut self, event: &Event) {
                self.inner.record(event);
            }
        }
        let obs = Obs::with_sink(Box::new(Counting {
            inner: RunJournal::new(Vec::new()),
        }));
        obs.emit(Event::Reroute {
            scope: "test".into(),
            stats: crate::record::RerouteRecord {
                globally_routed: 1,
                detail_routed: 2,
                detail_failures: 0,
            },
        });
        assert!(obs.enabled());
    }
}
