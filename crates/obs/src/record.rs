//! The recorder interface and the JSONL run-journal implementation.
//!
//! Producers (anneal loop, layout engine, router) describe what happened
//! with [`Event`] values; a [`Recorder`] decides what to do with them.
//! [`NoopRecorder`] drops everything (the zero-overhead default), while
//! [`RunJournal`] serializes each event as one JSON line.
//!
//! ## Journal schema (version [`SCHEMA_VERSION`])
//!
//! This module doc is the single authoritative description of the journal
//! format; DESIGN.md §12 and the README link here rather than restating it.
//!
//! Every line is an object with an `"event"` discriminator. A schema-2
//! journal starts with a `journal_header` line, and every event written
//! through an [`crate::Obs`] session additionally carries the causal
//! envelope of [`EventMeta`]: `seq` (monotonic per journal), `span` (the
//! innermost open span when the event fired, 0 = outside any span),
//! `parent_span` (that span's parent, 0 = root), and `replica` (0 = the
//! driver thread / a sequential run; parallel annealing replicas are
//! numbered 1..=K). Readers must ignore unknown keys and unknown event
//! kinds; [`Event::from_json`] returns `None` for kinds from the future.
//!
//! * `journal_header` — first line of a schema-2 journal: `schema`
//!   (integer version) and `generator` (writer name/version). Journals
//!   without a header are treated as legacy schema 1.
//! * `run_start` — `flow`, `benchmark`, `seed`, plus a free-form `config`
//!   object captured from the run configuration.
//! * `temperature` — one line per annealing temperature: `index`,
//!   `temperature`, `moves`, `accepted`, `mean_cost`, `std_cost`,
//!   `current_cost`, `best_cost`.
//! * `dynamics` — the paper's Fig. 6 trace: `index`, `temperature`,
//!   `cells_perturbed`, `nets_globally_unrouted`, `nets_unrouted`,
//!   `worst_delay`, `cost`.
//! * `reroute` — a batch (re)route summary: `scope`,
//!   `globally_routed`, `detail_routed`, `detail_failures`.
//! * `run_end` — `cost`, `worst_delay`, `unrouted`, `total_moves`,
//!   `temperatures`, `runtime_sec`, plus a `metrics` snapshot object.
//!
//! The tracing layer adds the span tree and diagnostics:
//!
//! * `span_start` — a profiler span opened: `id`, `parent` (0 = root),
//!   `name`. Span ids are monotonic per session; parallel replicas
//!   namespace theirs as `(replica << 32) + n` so merged journals never
//!   collide.
//! * `span_end` — the span closed: `id`, `name`, `elapsed_us` (wall time;
//!   the only non-deterministic field of the pair).
//! * `warning` — a non-fatal condition worth keeping with the run:
//!   `code` (stable machine key, e.g. `"oversubscribed"`), `detail`.
//! * `exchange` — one parallel-annealing exchange barrier: `round`,
//!   `winner` (0-based replica index, matching
//!   `ParallelOutcome::best_replica`), `winner_cost`, `adopted` (replicas
//!   that copied the winner's layout this round).
//!
//! The resilience layer adds four more kinds:
//!
//! * `audit` — one self-audit of incremental state against ground truth:
//!   `temp` (temperature index), `ok`, `detail` (empty when `ok`).
//! * `repair` — one repair attempt after a failed audit: `temp`,
//!   `attempt`, `scope` (`"timing"` or `"routing"`), `ok`.
//! * `checkpoint` — one checkpoint write: `temp`, `path`, `ok`, `detail`
//!   (the I/O error when `ok` is false).
//! * `stop` — why the run returned: `reason` (`"converged"`,
//!   `"deadline"`, `"interrupted"`, `"repaired"`), `temps`, `repairs`.

use std::io::Write;

use crate::json::Json;

/// Version of the journal format this crate writes. Bump when an event
/// kind changes incompatibly; readers reject journals from the future and
/// treat header-less journals as legacy version 1.
pub const SCHEMA_VERSION: u32 = 2;

/// The causal envelope stamped onto every event an `Obs` session emits:
/// where in the run (sequence), where in the span tree, and on which
/// replica the event happened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventMeta {
    /// Monotonic 1-based sequence number within the journal.
    pub seq: u64,
    /// Innermost open span when the event fired (0 = outside any span).
    pub span: u64,
    /// Parent of that span (0 = root).
    pub parent_span: u64,
    /// Replica attribution: 0 = driver thread / sequential run, parallel
    /// replicas are 1..=K (i.e. replica index + 1).
    pub replica: u32,
}

impl EventMeta {
    /// Reads the envelope back from a journal line; fields a legacy writer
    /// did not emit default to 0.
    pub fn from_json(j: &Json) -> EventMeta {
        let int = |key: &str| j.get(key).and_then(Json::as_u64).unwrap_or(0);
        EventMeta {
            seq: int("seq"),
            span: int("span"),
            parent_span: int("parent_span"),
            replica: int("replica") as u32,
        }
    }
}

/// One annealing-temperature summary (mirrors the anneal crate's
/// `TemperatureStats`, restated here so this crate stays dependency-free).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TemperatureRecord {
    /// Zero-based temperature index.
    pub index: usize,
    /// Temperature value.
    pub temperature: f64,
    /// Moves attempted at this temperature.
    pub moves: usize,
    /// Moves accepted at this temperature.
    pub accepted: usize,
    /// Mean accepted-state cost over the temperature.
    pub mean_cost: f64,
    /// Standard deviation of the cost over the temperature.
    pub std_cost: f64,
    /// Cost at the end of the temperature.
    pub current_cost: f64,
    /// Best cost seen so far.
    pub best_cost: f64,
}

/// One layout-dynamics sample (the paper's Fig. 6 quantities).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicsRecord {
    /// Temperature index the sample was taken at.
    pub index: usize,
    /// Temperature value.
    pub temperature: f64,
    /// Cells perturbed during this temperature.
    pub cells_perturbed: usize,
    /// Nets lacking a global route at sample time.
    pub nets_globally_unrouted: usize,
    /// Nets lacking a complete detail route at sample time.
    pub nets_unrouted: usize,
    /// Worst sink delay at sample time.
    pub worst_delay: f64,
    /// Weighted layout cost at sample time.
    pub cost: f64,
}

/// Summary of one batch (re)route pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RerouteRecord {
    /// Nets given a fresh global route.
    pub globally_routed: usize,
    /// Nets given a fresh detail route.
    pub detail_routed: usize,
    /// Detail track-assignment failures during the pass.
    pub detail_failures: usize,
}

/// A structured observation from somewhere in the layout engine.
#[derive(Clone, Debug)]
pub enum Event {
    /// First line of a schema-2 journal: identifies the format version so
    /// readers can reject or adapt instead of misparsing.
    JournalHeader {
        /// Journal schema version ([`SCHEMA_VERSION`] for this writer).
        schema: u32,
        /// Writer name/version, e.g. `"rowfpga-obs 0.1.0"`.
        generator: String,
    },
    /// A profiling span opened.
    SpanStart {
        /// Session-unique span id (replicas namespace theirs by
        /// `(replica << 32)`).
        id: u64,
        /// Enclosing span's id (0 = root).
        parent: u64,
        /// Static span name (`"anneal.temperature"`, `"route.batch"` …).
        name: String,
    },
    /// The span closed.
    SpanEnd {
        /// Id assigned by the matching [`Event::SpanStart`].
        id: u64,
        /// Span name, repeated for line-local readability.
        name: String,
        /// Wall time the span was open, in microseconds.
        elapsed_us: u64,
    },
    /// A non-fatal condition worth keeping with the run.
    Warning {
        /// Stable machine-readable key (`"oversubscribed"` …).
        code: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// One parallel-annealing exchange barrier completed.
    Exchange {
        /// Zero-based exchange round.
        round: usize,
        /// Winning replica (0-based index, as in `ParallelOutcome`).
        winner: usize,
        /// The winner's cost at the barrier.
        winner_cost: f64,
        /// Number of replicas that adopted the winner's layout.
        adopted: usize,
    },
    /// The run began. `config` is a free-form key/value capture of the run
    /// configuration (annealing schedule, router limits, weights …).
    RunStart {
        /// Flow name (`"simultaneous"`, `"sequential"` …).
        flow: String,
        /// Benchmark / netlist name.
        benchmark: String,
        /// RNG seed for the run.
        seed: u64,
        /// Configuration capture.
        config: Vec<(String, Json)>,
    },
    /// One annealing temperature completed.
    Temperature(TemperatureRecord),
    /// One layout-dynamics sample was taken.
    Dynamics(DynamicsRecord),
    /// A batch (re)route pass ran in the named scope.
    Reroute {
        /// Which pass this was (`"final_repair"`, `"global"` …).
        scope: String,
        /// Pass totals.
        stats: RerouteRecord,
    },
    /// One self-audit of incremental routing/timing state completed.
    Audit {
        /// Temperature index the audit ran at.
        temp: usize,
        /// Whether the incremental state matched ground truth.
        ok: bool,
        /// First divergence found (empty when `ok`).
        detail: String,
    },
    /// One repair attempt after a failed audit.
    Repair {
        /// Temperature index the repair ran at.
        temp: usize,
        /// 1-based attempt number within this audit failure.
        attempt: usize,
        /// What was rebuilt (`"timing"` or `"routing"`).
        scope: String,
        /// Whether the re-audit after the rebuild passed.
        ok: bool,
    },
    /// One checkpoint write finished (or failed).
    Checkpoint {
        /// Temperature index the snapshot captures.
        temp: usize,
        /// Destination path.
        path: String,
        /// Whether the atomic write completed.
        ok: bool,
        /// The I/O error when `ok` is false (empty otherwise).
        detail: String,
    },
    /// Why the run returned.
    Stop {
        /// `"converged"`, `"deadline"`, `"interrupted"` or `"repaired"`.
        reason: String,
        /// Temperatures completed over the whole run.
        temps: usize,
        /// Successful repairs performed during the run.
        repairs: usize,
    },
    /// The run finished.
    RunEnd {
        /// Final weighted cost.
        cost: f64,
        /// Final worst sink delay.
        worst_delay: f64,
        /// Nets still unrouted at the end.
        unrouted: usize,
        /// Total annealing moves attempted.
        total_moves: usize,
        /// Number of temperatures run.
        temperatures: usize,
        /// Wall-clock runtime in seconds.
        runtime_sec: f64,
        /// Metrics snapshot (from `MetricsRegistry::to_json`).
        metrics: Json,
    },
}

impl Event {
    /// Serializes the event to its journal-line JSON object, appending the
    /// causal envelope (`seq`, `span`, `parent_span`, `replica`) after the
    /// event's own fields so the `"event"` discriminator stays first.
    pub fn to_json_with(&self, meta: &EventMeta) -> Json {
        let mut j = self.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.push(("seq".to_string(), meta.seq.into()));
            pairs.push(("span".to_string(), meta.span.into()));
            pairs.push(("parent_span".to_string(), meta.parent_span.into()));
            pairs.push(("replica".to_string(), u64::from(meta.replica).into()));
        }
        j
    }

    /// Serializes the event to its journal-line JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Event::JournalHeader { schema, generator } => Json::obj(vec![
                ("event", "journal_header".into()),
                ("schema", u64::from(*schema).into()),
                ("generator", generator.as_str().into()),
            ]),
            Event::SpanStart { id, parent, name } => Json::obj(vec![
                ("event", "span_start".into()),
                ("id", (*id).into()),
                ("parent", (*parent).into()),
                ("name", name.as_str().into()),
            ]),
            Event::SpanEnd {
                id,
                name,
                elapsed_us,
            } => Json::obj(vec![
                ("event", "span_end".into()),
                ("id", (*id).into()),
                ("name", name.as_str().into()),
                ("elapsed_us", (*elapsed_us).into()),
            ]),
            Event::Warning { code, detail } => Json::obj(vec![
                ("event", "warning".into()),
                ("code", code.as_str().into()),
                ("detail", detail.as_str().into()),
            ]),
            Event::Exchange {
                round,
                winner,
                winner_cost,
                adopted,
            } => Json::obj(vec![
                ("event", "exchange".into()),
                ("round", (*round).into()),
                ("winner", (*winner).into()),
                ("winner_cost", (*winner_cost).into()),
                ("adopted", (*adopted).into()),
            ]),
            Event::RunStart {
                flow,
                benchmark,
                seed,
                config,
            } => {
                let config = Json::Obj(config.clone());
                Json::obj(vec![
                    ("event", "run_start".into()),
                    ("flow", flow.as_str().into()),
                    ("benchmark", benchmark.as_str().into()),
                    ("seed", (*seed).into()),
                    ("config", config),
                ])
            }
            Event::Temperature(t) => Json::obj(vec![
                ("event", "temperature".into()),
                ("index", t.index.into()),
                ("temperature", t.temperature.into()),
                ("moves", t.moves.into()),
                ("accepted", t.accepted.into()),
                ("mean_cost", t.mean_cost.into()),
                ("std_cost", t.std_cost.into()),
                ("current_cost", t.current_cost.into()),
                ("best_cost", t.best_cost.into()),
            ]),
            Event::Dynamics(d) => Json::obj(vec![
                ("event", "dynamics".into()),
                ("index", d.index.into()),
                ("temperature", d.temperature.into()),
                ("cells_perturbed", d.cells_perturbed.into()),
                ("nets_globally_unrouted", d.nets_globally_unrouted.into()),
                ("nets_unrouted", d.nets_unrouted.into()),
                ("worst_delay", d.worst_delay.into()),
                ("cost", d.cost.into()),
            ]),
            Event::Reroute { scope, stats } => Json::obj(vec![
                ("event", "reroute".into()),
                ("scope", scope.as_str().into()),
                ("globally_routed", stats.globally_routed.into()),
                ("detail_routed", stats.detail_routed.into()),
                ("detail_failures", stats.detail_failures.into()),
            ]),
            Event::Audit { temp, ok, detail } => Json::obj(vec![
                ("event", "audit".into()),
                ("temp", (*temp).into()),
                ("ok", (*ok).into()),
                ("detail", detail.as_str().into()),
            ]),
            Event::Repair {
                temp,
                attempt,
                scope,
                ok,
            } => Json::obj(vec![
                ("event", "repair".into()),
                ("temp", (*temp).into()),
                ("attempt", (*attempt).into()),
                ("scope", scope.as_str().into()),
                ("ok", (*ok).into()),
            ]),
            Event::Checkpoint {
                temp,
                path,
                ok,
                detail,
            } => Json::obj(vec![
                ("event", "checkpoint".into()),
                ("temp", (*temp).into()),
                ("path", path.as_str().into()),
                ("ok", (*ok).into()),
                ("detail", detail.as_str().into()),
            ]),
            Event::Stop {
                reason,
                temps,
                repairs,
            } => Json::obj(vec![
                ("event", "stop".into()),
                ("reason", reason.as_str().into()),
                ("temps", (*temps).into()),
                ("repairs", (*repairs).into()),
            ]),
            Event::RunEnd {
                cost,
                worst_delay,
                unrouted,
                total_moves,
                temperatures,
                runtime_sec,
                metrics,
            } => Json::obj(vec![
                ("event", "run_end".into()),
                ("cost", (*cost).into()),
                ("worst_delay", (*worst_delay).into()),
                ("unrouted", (*unrouted).into()),
                ("total_moves", (*total_moves).into()),
                ("temperatures", (*temperatures).into()),
                ("runtime_sec", (*runtime_sec).into()),
                ("metrics", metrics.clone()),
            ]),
        }
    }

    /// Parses a journal line back into an event (used by `fig6` to
    /// regenerate plots from a recorded run). Unknown event kinds yield
    /// `None` so readers tolerate journals from newer writers.
    pub fn from_json(j: &Json) -> Option<Event> {
        let kind = j.get("event")?.as_str()?;
        let num = |key: &str| j.get(key).and_then(Json::as_f64);
        let int = |key: &str| j.get(key).and_then(Json::as_u64).map(|v| v as usize);
        match kind {
            "journal_header" => Some(Event::JournalHeader {
                schema: j.get("schema")?.as_u64()? as u32,
                generator: j.get("generator")?.as_str()?.to_string(),
            }),
            "span_start" => Some(Event::SpanStart {
                id: j.get("id")?.as_u64()?,
                parent: j.get("parent")?.as_u64()?,
                name: j.get("name")?.as_str()?.to_string(),
            }),
            "span_end" => Some(Event::SpanEnd {
                id: j.get("id")?.as_u64()?,
                name: j.get("name")?.as_str()?.to_string(),
                elapsed_us: j.get("elapsed_us")?.as_u64()?,
            }),
            "warning" => Some(Event::Warning {
                code: j.get("code")?.as_str()?.to_string(),
                detail: j.get("detail")?.as_str()?.to_string(),
            }),
            "exchange" => Some(Event::Exchange {
                round: int("round")?,
                winner: int("winner")?,
                winner_cost: num("winner_cost")?,
                adopted: int("adopted")?,
            }),
            "run_start" => Some(Event::RunStart {
                flow: j.get("flow")?.as_str()?.to_string(),
                benchmark: j.get("benchmark")?.as_str()?.to_string(),
                seed: j.get("seed")?.as_u64()?,
                config: match j.get("config") {
                    Some(Json::Obj(pairs)) => pairs.clone(),
                    _ => Vec::new(),
                },
            }),
            "temperature" => Some(Event::Temperature(TemperatureRecord {
                index: int("index")?,
                temperature: num("temperature")?,
                moves: int("moves")?,
                accepted: int("accepted")?,
                mean_cost: num("mean_cost")?,
                std_cost: num("std_cost")?,
                current_cost: num("current_cost")?,
                best_cost: num("best_cost")?,
            })),
            "dynamics" => Some(Event::Dynamics(DynamicsRecord {
                index: int("index")?,
                temperature: num("temperature")?,
                cells_perturbed: int("cells_perturbed")?,
                nets_globally_unrouted: int("nets_globally_unrouted")?,
                nets_unrouted: int("nets_unrouted")?,
                worst_delay: num("worst_delay")?,
                cost: num("cost")?,
            })),
            "reroute" => Some(Event::Reroute {
                scope: j.get("scope")?.as_str()?.to_string(),
                stats: RerouteRecord {
                    globally_routed: int("globally_routed")?,
                    detail_routed: int("detail_routed")?,
                    detail_failures: int("detail_failures")?,
                },
            }),
            "audit" => Some(Event::Audit {
                temp: int("temp")?,
                ok: j.get("ok")?.as_bool()?,
                detail: j.get("detail")?.as_str()?.to_string(),
            }),
            "repair" => Some(Event::Repair {
                temp: int("temp")?,
                attempt: int("attempt")?,
                scope: j.get("scope")?.as_str()?.to_string(),
                ok: j.get("ok")?.as_bool()?,
            }),
            "checkpoint" => Some(Event::Checkpoint {
                temp: int("temp")?,
                path: j.get("path")?.as_str()?.to_string(),
                ok: j.get("ok")?.as_bool()?,
                detail: j.get("detail")?.as_str()?.to_string(),
            }),
            "stop" => Some(Event::Stop {
                reason: j.get("reason")?.as_str()?.to_string(),
                temps: int("temps")?,
                repairs: int("repairs")?,
            }),
            "run_end" => Some(Event::RunEnd {
                cost: num("cost")?,
                worst_delay: num("worst_delay")?,
                unrouted: int("unrouted")?,
                total_moves: int("total_moves")?,
                temperatures: int("temperatures")?,
                runtime_sec: num("runtime_sec")?,
                metrics: j.get("metrics").cloned().unwrap_or(Json::Null),
            }),
            _ => None,
        }
    }
}

/// Consumes events.
pub trait Recorder {
    /// Handles one event.
    fn record(&mut self, event: &Event);

    /// Handles one event with its causal envelope. Sinks that persist the
    /// envelope (the journal, the socket sink) override this; the default
    /// drops the meta and forwards to [`Recorder::record`].
    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        let _ = meta;
        self.record(event);
    }

    /// Flushes any buffered output (called at run end).
    fn flush(&mut self) {}
}

/// Drops every event. The zero-overhead default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&mut self, _event: &Event) {}
}

/// Writes each event as one JSON line.
pub struct RunJournal<W: Write> {
    out: W,
    lines: u64,
}

impl<W: Write> std::fmt::Debug for RunJournal<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunJournal")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl<W: Write> RunJournal<W> {
    /// Wraps a writer. Consider a `BufWriter` for file sinks.
    pub fn new(out: W) -> RunJournal<W> {
        RunJournal { out, lines: 0 }
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RunJournal<W> {
    fn write_doc(&mut self, doc: Json) {
        let mut line = doc.to_string_compact();
        line.push('\n');
        // Journal output is best-effort: a full disk should not abort a
        // multi-minute layout run.
        if self.out.write_all(line.as_bytes()).is_ok() {
            self.lines += 1;
        }
    }
}

impl<W: Write> Recorder for RunJournal<W> {
    fn record(&mut self, event: &Event) {
        self.write_doc(event.to_json());
    }

    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        self.write_doc(event.to_json_with(meta));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart {
                flow: "simultaneous".into(),
                benchmark: "cse".into(),
                seed: 7,
                config: vec![("tracks".to_string(), Json::from(9u64))],
            },
            Event::Temperature(TemperatureRecord {
                index: 0,
                temperature: 12.5,
                moves: 100,
                accepted: 44,
                mean_cost: 10.0,
                std_cost: 1.5,
                current_cost: 9.0,
                best_cost: 8.5,
            }),
            Event::Dynamics(DynamicsRecord {
                index: 0,
                temperature: 12.5,
                cells_perturbed: 40,
                nets_globally_unrouted: 2,
                nets_unrouted: 5,
                worst_delay: 31.25,
                cost: 9.0,
            }),
            Event::Reroute {
                scope: "final_repair".into(),
                stats: RerouteRecord {
                    globally_routed: 3,
                    detail_routed: 11,
                    detail_failures: 1,
                },
            },
            Event::Audit {
                temp: 12,
                ok: false,
                detail: "incremental worst 31.2 != oracle 30.9".into(),
            },
            Event::Repair {
                temp: 12,
                attempt: 1,
                scope: "routing".into(),
                ok: true,
            },
            Event::Checkpoint {
                temp: 16,
                path: "/tmp/run.ckpt".into(),
                ok: true,
                detail: String::new(),
            },
            Event::Stop {
                reason: "deadline".into(),
                temps: 17,
                repairs: 1,
            },
            Event::RunEnd {
                cost: 8.5,
                worst_delay: 30.0,
                unrouted: 0,
                total_moves: 100,
                temperatures: 1,
                runtime_sec: 0.25,
                metrics: Json::obj(vec![("counters", Json::Obj(vec![]))]),
            },
            Event::JournalHeader {
                schema: SCHEMA_VERSION,
                generator: "rowfpga-obs test".into(),
            },
            Event::SpanStart {
                id: 3,
                parent: 1,
                name: "anneal.temperature".into(),
            },
            Event::SpanEnd {
                id: 3,
                name: "anneal.temperature".into(),
                elapsed_us: 1250,
            },
            Event::Warning {
                code: "oversubscribed".into(),
                detail: "4 replicas on 1 core".into(),
            },
            Event::Exchange {
                round: 2,
                winner: 1,
                winner_cost: 8.75,
                adopted: 2,
            },
        ]
    }

    #[test]
    fn journal_round_trips_through_jsonl() {
        let mut journal = RunJournal::new(Vec::new());
        let events = sample_events();
        for e in &events {
            journal.record(e);
        }
        journal.flush();
        assert_eq!(journal.lines(), events.len() as u64);
        let text = String::from_utf8(journal.into_inner()).unwrap();
        assert_eq!(text.lines().count(), events.len());

        let docs = json::parse_lines(&text).unwrap();
        let parsed: Vec<Event> = docs.iter().filter_map(Event::from_json).collect();
        assert_eq!(parsed.len(), events.len());
        for (orig, back) in events.iter().zip(&parsed) {
            assert_eq!(orig.to_json(), back.to_json());
        }
    }

    #[test]
    fn journal_lines_carry_event_discriminator() {
        let mut journal = RunJournal::new(Vec::new());
        journal.record(&sample_events()[1]);
        let text = String::from_utf8(journal.into_inner()).unwrap();
        assert!(text.starts_with("{\"event\":\"temperature\""), "{text}");
    }

    #[test]
    fn meta_envelope_round_trips_and_trails_the_payload() {
        let meta = EventMeta {
            seq: 42,
            span: (3 << 32) + 7,
            parent_span: 3 << 32,
            replica: 3,
        };
        let mut journal = RunJournal::new(Vec::new());
        journal.record_with(&sample_events()[1], &meta);
        let text = String::from_utf8(journal.into_inner()).unwrap();
        assert!(text.starts_with("{\"event\":\"temperature\""), "{text}");
        let doc = json::parse(text.trim()).unwrap();
        assert_eq!(EventMeta::from_json(&doc), meta);
        // A meta-less (legacy) line reads back as all-zero attribution.
        let legacy = sample_events()[1].to_json();
        assert_eq!(EventMeta::from_json(&legacy), EventMeta::default());
    }

    #[test]
    fn unknown_events_are_skipped_not_errors() {
        let doc = json::parse("{\"event\":\"from_the_future\",\"x\":1}").unwrap();
        assert!(Event::from_json(&doc).is_none());
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut r = NoopRecorder;
        for e in sample_events() {
            r.record(&e);
        }
        r.flush();
    }
}
