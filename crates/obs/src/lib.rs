//! Observability for the layout engine: structured run journal, metrics
//! registry, and phase profiler.
//!
//! The crate is dependency-free and built around one type, [`Obs`]: a
//! cheaply clonable handle threaded through the annealer, router, timer,
//! and engine. A disabled handle ([`Obs::disabled`]) makes every call a
//! no-op on a `None`, so instrumented code paths cost nothing when
//! observability is off; an enabled handle shares a [`ObsSession`] holding:
//!
//! * a [`MetricsRegistry`] of named counters and fixed-bucket
//!   [`Histogram`]s (move accept/reject by class, reroute cascade sizes,
//!   STA frontier sizes, detail track failures …),
//! * a [`PhaseProfiler`] of nestable monotonic span timers (warmup,
//!   per-temperature, reroute passes, delay updates …), and
//! * a [`Recorder`] sink for structured [`Event`]s — typically a
//!   [`RunJournal`] writing JSONL that tools (and the `fig6` bin) can
//!   parse back with [`json::parse_lines`] and [`Event::from_json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod record;
pub mod report;
pub mod session;
pub mod sink;

pub use analyze::{analyze_journal, Analysis, AnalyzeError, LiveStatus};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{ClosedSpan, PhaseProfiler, PhaseTotal};
pub use record::{
    DynamicsRecord, Event, EventMeta, NoopRecorder, Recorder, RerouteRecord, RunJournal,
    TemperatureRecord, SCHEMA_VERSION,
};
pub use session::{Obs, ObsSession};
pub use sink::{open_sink, ReplaySink, RingSink, SOCKET_SPEC_PREFIX};
#[cfg(unix)]
pub use sink::{SocketSink, SocketSinkState};
