//! Human-readable rendering of a session's final breakdown.

use std::fmt::Write as _;
use std::time::Duration;

use crate::session::ObsSession;

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1.0e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Renders counters, histogram percentiles, and the per-phase time
/// breakdown as an aligned text table.
pub fn render(session: &mut ObsSession) -> String {
    let mut out = String::new();

    let phases: Vec<_> = session.profiler.phases().collect();
    if !phases.is_empty() {
        let wall: Duration = phases.iter().map(|(_, t)| t.self_time()).sum();
        let _ = writeln!(out, "phase breakdown");
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>12} {:>12} {:>7}",
            "phase", "calls", "total", "self", "self%"
        );
        for (name, t) in &phases {
            let pct = if wall.as_nanos() == 0 {
                0.0
            } else {
                100.0 * t.self_time().as_secs_f64() / wall.as_secs_f64()
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>12} {:>12} {:>6.1}%",
                name,
                t.calls,
                fmt_duration(t.total),
                fmt_duration(t.self_time()),
                pct
            );
        }
    }

    let counters: Vec<_> = session.metrics.counters().collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<40} {value:>12}");
        }
    }

    let histograms: Vec<_> = session
        .metrics
        .histograms()
        .map(|(name, h)| {
            (
                name,
                h.count(),
                h.mean(),
                h.percentile(0.50).unwrap_or(0.0),
                h.percentile(0.95).unwrap_or(0.0),
                h.max(),
            )
        })
        .collect();
    if !histograms.is_empty() {
        let _ = writeln!(out, "histograms");
        let _ = writeln!(
            out,
            "  {:<32} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "histogram", "count", "mean", "p50", "p95", "max"
        );
        for (name, count, mean, p50, p95, max) in histograms {
            let _ = writeln!(
                out,
                "  {:<32} {:>8} {:>9} {:>9} {:>9} {:>9}",
                name,
                count,
                fmt_value(mean),
                fmt_value(p50),
                fmt_value(p95),
                fmt_value(max)
            );
        }
    }

    if out.is_empty() {
        out.push_str("(no observations recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NoopRecorder;

    #[test]
    fn report_contains_all_sections() {
        let mut s = ObsSession::new(Box::new(NoopRecorder));
        s.profiler.start("anneal");
        s.profiler.start("delay_update");
        s.profiler.end("delay_update");
        s.profiler.end("anneal");
        s.metrics.inc("moves.accepted");
        for v in [1.0, 2.0, 8.0] {
            s.metrics.observe("cascade", v);
        }
        let text = render(&mut s);
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("anneal"), "{text}");
        assert!(text.contains("delay_update"), "{text}");
        assert!(text.contains("counters"), "{text}");
        assert!(text.contains("moves.accepted"), "{text}");
        assert!(text.contains("histograms"), "{text}");
        assert!(text.contains("cascade"), "{text}");
    }

    #[test]
    fn empty_session_reports_placeholder() {
        let mut s = ObsSession::new(Box::new(NoopRecorder));
        assert!(render(&mut s).contains("no observations"));
    }
}
