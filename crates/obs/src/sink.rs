//! Journal sinks beyond the plain file: in-memory ring buffer, replica
//! replay buffer, and a Unix-domain-socket stream for live tailing.
//!
//! All sinks speak the same JSONL event schema (see [`crate::record`]);
//! [`open_sink`] picks one from a `--journal` spec string: `unix:PATH`
//! connects a [`SocketSink`] to a listener (typically `rowfpga tail
//! --listen PATH`), anything else creates a buffered [`RunJournal`] file.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::rc::Rc;

use crate::record::{Event, EventMeta, Recorder, RunJournal};

/// A bounded in-memory sink keeping the most recent journal lines.
///
/// Cloning the handle before boxing it into a session lets the owner read
/// the buffer back after (or during) the run — the sink and the handle
/// share one ring. Single-threaded like the rest of the session layer.
#[derive(Clone, Debug, Default)]
pub struct RingSink {
    shared: Rc<RefCell<Ring>>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Ring {
    lines: VecDeque<String>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` lines (older lines are
    /// dropped, counted in [`RingSink::dropped`]).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            shared: Rc::new(RefCell::new(Ring::default())),
            capacity: capacity.max(1),
        }
    }

    /// The buffered lines, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.shared.borrow().lines.iter().cloned().collect()
    }

    /// Lines evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared.borrow().dropped
    }
}

impl Recorder for RingSink {
    fn record(&mut self, event: &Event) {
        self.push(event.to_json().to_string_compact());
    }

    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        self.push(event.to_json_with(meta).to_string_compact());
    }
}

impl RingSink {
    fn push(&mut self, line: String) {
        let mut ring = self.shared.borrow_mut();
        if ring.lines.len() == self.capacity {
            ring.lines.pop_front();
            ring.dropped += 1;
        }
        ring.lines.push_back(line);
    }
}

/// An unbounded sink keeping events *structured* (event + meta), so a
/// parallel replica's journal can be replayed into the driver's session
/// at an exchange barrier with attribution intact.
#[derive(Clone, Debug, Default)]
pub struct ReplaySink {
    shared: Rc<RefCell<Vec<(Event, EventMeta)>>>,
}

impl ReplaySink {
    /// Creates an empty buffer.
    pub fn new() -> ReplaySink {
        ReplaySink::default()
    }

    /// Takes every buffered `(event, meta)` pair, oldest first.
    pub fn drain(&self) -> Vec<(Event, EventMeta)> {
        std::mem::take(&mut *self.shared.borrow_mut())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.shared.borrow().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.shared.borrow().is_empty()
    }
}

impl Recorder for ReplaySink {
    fn record(&mut self, event: &Event) {
        self.record_with(event, &EventMeta::default());
    }

    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        self.shared.borrow_mut().push((event.clone(), *meta));
    }
}

/// Streams journal lines over a Unix-domain socket to a live listener
/// (`rowfpga tail --listen PATH`).
///
/// A journal is telemetry; the layout run must never die for it. A peer
/// that is absent at connect time (`ECONNREFUSED`) or disappears mid-run
/// (`EPIPE`) therefore does not error: lines are buffered in a bounded
/// ring (oldest dropped first, counted) and reconnection is retried with
/// capped exponential backoff. Backoff is paced by *record count*, not
/// wall clock, so the sink stays deterministic relative to the event
/// stream. After [`SocketSink::RETRY_ATTEMPTS`] failed reconnects the
/// sink gives up for good: a single `warning` event
/// (`journal.socket_lost`) is appended to the backlog — inspectable via
/// [`SocketSink::backlog`] — and every later record is counted as
/// dropped.
#[cfg(unix)]
pub struct SocketSink {
    path: String,
    out: Option<BufWriter<std::os::unix::net::UnixStream>>,
    ring: VecDeque<String>,
    dropped: u64,
    records_until_retry: u64,
    next_backoff: u64,
    attempts_left: u32,
    gave_up: bool,
}

/// Delivery state of a [`SocketSink`], for tests and operators.
#[cfg(unix)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketSinkState {
    /// The stream is up; lines are delivered as they happen.
    Connected,
    /// The peer is away; lines accumulate in the ring while reconnects
    /// back off.
    Buffering {
        /// Lines currently held in the ring.
        buffered: usize,
        /// Lines evicted because the ring was full.
        dropped: u64,
    },
    /// Reconnection was abandoned after the retry budget; one
    /// `journal.socket_lost` warning closes the backlog.
    GaveUp,
}

#[cfg(unix)]
impl std::fmt::Debug for SocketSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketSink")
            .field("path", &self.path)
            .field("state", &self.state())
            .finish()
    }
}

#[cfg(unix)]
impl SocketSink {
    /// Lines held while the peer is away; older lines are dropped first.
    pub const RING_CAPACITY: usize = 1024;
    /// Reconnect attempts before the sink gives up for good.
    pub const RETRY_ATTEMPTS: u32 = 8;
    /// Records between the first disconnect and the first retry; doubles
    /// per failed attempt up to [`SocketSink::BACKOFF_CAP`].
    pub const BACKOFF_START: u64 = 1;
    /// Ceiling of the record-count backoff.
    pub const BACKOFF_CAP: u64 = 256;

    /// Opens a sink towards a listening socket at `path`.
    ///
    /// Never fails: when the listener is not (yet) accepting, the sink
    /// starts in the buffering state and connects on a later record.
    ///
    /// # Errors
    ///
    /// None today; the `Result` is kept so callers are ready for
    /// platforms where even deferred opens can fail.
    pub fn connect(path: &str) -> std::io::Result<SocketSink> {
        let mut sink = SocketSink {
            path: path.to_string(),
            out: None,
            ring: VecDeque::new(),
            dropped: 0,
            records_until_retry: 0,
            next_backoff: Self::BACKOFF_START,
            attempts_left: Self::RETRY_ATTEMPTS,
            gave_up: false,
        };
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(stream) => sink.out = Some(BufWriter::new(stream)),
            Err(_) => sink.arm_retry(),
        }
        Ok(sink)
    }

    /// The sink's delivery state.
    pub fn state(&self) -> SocketSinkState {
        if self.gave_up {
            SocketSinkState::GaveUp
        } else if self.out.is_some() {
            SocketSinkState::Connected
        } else {
            SocketSinkState::Buffering {
                buffered: self.ring.len(),
                dropped: self.dropped,
            }
        }
    }

    /// Undelivered lines, oldest first (after give-up, the last line is
    /// the `journal.socket_lost` warning).
    pub fn backlog(&self) -> Vec<String> {
        self.ring.iter().cloned().collect()
    }

    /// Lines lost to ring eviction or recorded after give-up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn arm_retry(&mut self) {
        self.records_until_retry = self.next_backoff;
        self.next_backoff = (self.next_backoff * 2).min(Self::BACKOFF_CAP);
    }

    fn buffer(&mut self, line: String) {
        if self.ring.len() == Self::RING_CAPACITY {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(line);
    }

    fn warning_line(code: &str, detail: String) -> String {
        let mut line = Event::Warning {
            code: code.to_string(),
            detail,
        }
        .to_json()
        .to_string_compact();
        line.push('\n');
        line
    }

    fn give_up(&mut self) {
        self.gave_up = true;
        let (buffered, dropped) = (self.ring.len(), self.dropped);
        self.buffer(Self::warning_line(
            "journal.socket_lost",
            format!(
                "gave up reconnecting to {} after {} attempts; {buffered} lines buffered, {dropped} dropped",
                self.path,
                Self::RETRY_ATTEMPTS,
            ),
        ));
    }

    /// One reconnect attempt; on success the backlog drains through the
    /// fresh stream, led by a warning line accounting for the gap.
    fn try_reconnect(&mut self) {
        let Ok(stream) = std::os::unix::net::UnixStream::connect(&self.path) else {
            self.attempts_left = self.attempts_left.saturating_sub(1);
            if self.attempts_left == 0 {
                self.give_up();
            } else {
                self.arm_retry();
            }
            return;
        };
        let mut out = BufWriter::new(stream);
        let notice = Self::warning_line(
            "journal.socket_reconnected",
            format!(
                "stream to {} restored; {} buffered lines follow, {} dropped",
                self.path,
                self.ring.len(),
                self.dropped
            ),
        );
        let mut delivered = out.write_all(notice.as_bytes()).is_ok();
        while delivered {
            let Some(line) = self.ring.pop_front() else {
                break;
            };
            if out.write_all(line.as_bytes()).is_err() {
                self.ring.push_front(line);
                delivered = false;
            }
        }
        if delivered && out.flush().is_ok() {
            self.out = Some(out);
            self.next_backoff = Self::BACKOFF_START;
            self.attempts_left = Self::RETRY_ATTEMPTS;
        } else {
            // The peer vanished again mid-drain; burn the attempt.
            self.attempts_left = self.attempts_left.saturating_sub(1);
            if self.attempts_left == 0 {
                self.give_up();
            } else {
                self.arm_retry();
            }
        }
    }

    fn send(&mut self, mut line: String) {
        line.push('\n');
        if self.gave_up {
            self.dropped += 1;
            return;
        }
        if let Some(out) = &mut self.out {
            // Flush per event: tailers want lines as they happen, not
            // when a 8 KiB buffer fills.
            if out
                .write_all(line.as_bytes())
                .and_then(|()| out.flush())
                .is_ok()
            {
                return;
            }
            self.out = None;
            self.arm_retry();
        }
        self.buffer(line);
        self.records_until_retry = self.records_until_retry.saturating_sub(1);
        if self.records_until_retry == 0 {
            self.try_reconnect();
        }
    }
}

#[cfg(unix)]
impl Recorder for SocketSink {
    fn record(&mut self, event: &Event) {
        self.send(event.to_json().to_string_compact());
    }

    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        self.send(event.to_json_with(meta).to_string_compact());
    }

    fn flush(&mut self) {
        if let Some(out) = &mut self.out {
            let _ = out.flush();
        }
    }
}

/// Prefix selecting a [`SocketSink`] in a `--journal` spec.
pub const SOCKET_SPEC_PREFIX: &str = "unix:";

/// Opens a journal sink from a spec string: `unix:PATH` connects to a
/// listening socket, anything else creates (truncates) a JSONL file.
pub fn open_sink(spec: &str) -> std::io::Result<Box<dyn Recorder>> {
    #[cfg(unix)]
    if let Some(path) = spec.strip_prefix(SOCKET_SPEC_PREFIX) {
        return Ok(Box::new(SocketSink::connect(path)?));
    }
    let file = std::fs::File::create(spec)?;
    Ok(Box::new(RunJournal::new(BufWriter::new(file))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn warning(n: u64) -> (Event, EventMeta) {
        (
            Event::Warning {
                code: format!("w{n}"),
                detail: String::new(),
            },
            EventMeta {
                seq: n,
                span: 0,
                parent_span: 0,
                replica: 1,
            },
        )
    }

    #[test]
    fn ring_keeps_the_most_recent_lines() {
        let handle = RingSink::new(2);
        let mut sink = handle.clone();
        for n in 0..5 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        let lines = handle.snapshot();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"w3\""), "{lines:?}");
        assert!(lines[1].contains("\"w4\""), "{lines:?}");
        assert_eq!(handle.dropped(), 3);
        let doc = json::parse(&lines[1]).unwrap();
        assert_eq!(EventMeta::from_json(&doc).seq, 4);
    }

    #[test]
    fn replay_buffer_preserves_events_and_meta() {
        let handle = ReplaySink::new();
        let mut sink = handle.clone();
        for n in 0..3 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        assert_eq!(handle.len(), 3);
        let drained = handle.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[2].1.seq, 2);
        assert_eq!(drained[2].1.replica, 1);
        assert!(handle.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn socket_sink_streams_lines_to_a_listener() {
        use std::io::{BufRead, BufReader};

        let dir = std::env::temp_dir().join(format!("rowfpga-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.sock");
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();

        let path_str = path.to_str().unwrap().to_string();
        let reader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut lines = Vec::new();
            for line in BufReader::new(stream).lines() {
                lines.push(line.unwrap());
            }
            lines
        });

        let mut sink = SocketSink::connect(&path_str).unwrap();
        for n in 0..3 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        sink.flush();
        drop(sink);

        let lines = reader.join().unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"warning\""), "{lines:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    fn read_all_lines(
        listener: std::os::unix::net::UnixListener,
    ) -> std::thread::JoinHandle<Vec<String>> {
        use std::io::{BufRead, BufReader};
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
        })
    }

    #[cfg(unix)]
    #[test]
    fn socket_sink_opens_without_a_listener_and_delivers_once_one_appears() {
        let dir = std::env::temp_dir().join(format!("rowfpga-sink-late-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late.sock");
        let _ = std::fs::remove_file(&path);
        let path_str = path.to_str().unwrap().to_string();

        // ECONNREFUSED at open must not error: the sink starts buffering.
        let mut sink = SocketSink::connect(&path_str).unwrap();
        assert!(matches!(sink.state(), SocketSinkState::Buffering { .. }));
        let (e, m) = warning(0);
        sink.record_with(&e, &m); // first retry fails too — still no peer
        assert!(matches!(
            sink.state(),
            SocketSinkState::Buffering { buffered: 1, .. }
        ));

        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let reader = read_all_lines(listener);
        // Backoff is now 2 records; the second of these reconnects and
        // drains the backlog.
        for n in 1..3 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        assert_eq!(sink.state(), SocketSinkState::Connected);
        sink.flush();
        drop(sink);

        let lines = reader.join().unwrap();
        assert!(
            lines[0].contains("journal.socket_reconnected"),
            "gap is accounted for first: {lines:?}"
        );
        assert_eq!(lines.len(), 4, "3 events + 1 reconnect notice: {lines:?}");
        assert!(
            lines[1].contains("\"w0\"") && lines[3].contains("\"w2\""),
            "{lines:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn socket_sink_survives_a_peer_restart_and_redelivers_the_backlog() {
        let dir = std::env::temp_dir().join(format!("rowfpga-sink-re-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("restart.sock");
        let _ = std::fs::remove_file(&path);
        let path_str = path.to_str().unwrap().to_string();

        // First peer reads one line and hangs up.
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let first = std::thread::spawn(move || {
            use std::io::{BufRead, BufReader};
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        });
        let mut sink = SocketSink::connect(&path_str).unwrap();
        let (e, m) = warning(0);
        sink.record_with(&e, &m);
        assert!(first.join().unwrap().contains("\"w0\""));

        // The peer is gone; records buffer instead of erroring. (The
        // kernel may accept a write or two into a dead socket before
        // EPIPE surfaces — those lines are legitimately lost — so drive
        // records until the sink notices.)
        let mut first_buffered = 1u64;
        while !matches!(sink.state(), SocketSinkState::Buffering { .. }) && first_buffered < 50 {
            let (e, m) = warning(first_buffered);
            sink.record_with(&e, &m);
            first_buffered += 1;
        }
        assert!(
            matches!(sink.state(), SocketSinkState::Buffering { .. }),
            "{:?}",
            sink.state()
        );
        // The record that tripped the error is itself buffered.
        first_buffered -= 1;

        // A fresh peer binds the same path; the sink reconnects within
        // its backoff and redelivers everything it held.
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let reader = read_all_lines(listener);
        let mut n = first_buffered + 1;
        while sink.state() != SocketSinkState::Connected && n < 300 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
            n += 1;
        }
        assert_eq!(sink.state(), SocketSinkState::Connected);
        sink.flush();
        drop(sink);

        let lines = reader.join().unwrap();
        assert!(lines[0].contains("journal.socket_reconnected"), "{lines:?}");
        // No line the sink buffered while the peer was away went missing.
        for missing in first_buffered..n {
            assert!(
                lines.iter().any(|l| l.contains(&format!("\"w{missing}\""))),
                "w{missing} lost across the restart: {lines:?}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn socket_sink_gives_up_after_its_retry_budget_with_one_warning() {
        let dir = std::env::temp_dir().join(format!("rowfpga-sink-gu-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("never.sock");
        let _ = std::fs::remove_file(&path);

        let mut sink = SocketSink::connect(path.to_str().unwrap()).unwrap();
        for n in 0..300 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        assert_eq!(sink.state(), SocketSinkState::GaveUp);
        let backlog = sink.backlog();
        let warnings: Vec<&String> = backlog
            .iter()
            .filter(|l| l.contains("journal.socket_lost"))
            .collect();
        assert_eq!(warnings.len(), 1, "exactly one give-up warning");
        assert!(
            backlog.last().unwrap().contains("journal.socket_lost"),
            "the warning closes the backlog"
        );
        assert!(sink.dropped() > 0, "post-give-up records are counted");
        // Giving up is terminal: no further reconnect attempts, no panic.
        let (e, m) = warning(999);
        sink.record_with(&e, &m);
        assert_eq!(sink.state(), SocketSinkState::GaveUp);
    }

    #[test]
    fn open_sink_writes_a_file_journal() {
        let dir = std::env::temp_dir().join(format!("rowfpga-sink-f-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        {
            let mut sink = open_sink(path.to_str().unwrap()).unwrap();
            let (e, m) = warning(7);
            sink.record_with(&e, &m);
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"w7\""));
        let _ = std::fs::remove_file(&path);
    }
}
