//! Journal sinks beyond the plain file: in-memory ring buffer, replica
//! replay buffer, and a Unix-domain-socket stream for live tailing.
//!
//! All sinks speak the same JSONL event schema (see [`crate::record`]);
//! [`open_sink`] picks one from a `--journal` spec string: `unix:PATH`
//! connects a [`SocketSink`] to a listener (typically `rowfpga tail
//! --listen PATH`), anything else creates a buffered [`RunJournal`] file.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::rc::Rc;

use crate::record::{Event, EventMeta, Recorder, RunJournal};

/// A bounded in-memory sink keeping the most recent journal lines.
///
/// Cloning the handle before boxing it into a session lets the owner read
/// the buffer back after (or during) the run — the sink and the handle
/// share one ring. Single-threaded like the rest of the session layer.
#[derive(Clone, Debug, Default)]
pub struct RingSink {
    shared: Rc<RefCell<Ring>>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Ring {
    lines: VecDeque<String>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` lines (older lines are
    /// dropped, counted in [`RingSink::dropped`]).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            shared: Rc::new(RefCell::new(Ring::default())),
            capacity: capacity.max(1),
        }
    }

    /// The buffered lines, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.shared.borrow().lines.iter().cloned().collect()
    }

    /// Lines evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared.borrow().dropped
    }
}

impl Recorder for RingSink {
    fn record(&mut self, event: &Event) {
        self.push(event.to_json().to_string_compact());
    }

    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        self.push(event.to_json_with(meta).to_string_compact());
    }
}

impl RingSink {
    fn push(&mut self, line: String) {
        let mut ring = self.shared.borrow_mut();
        if ring.lines.len() == self.capacity {
            ring.lines.pop_front();
            ring.dropped += 1;
        }
        ring.lines.push_back(line);
    }
}

/// An unbounded sink keeping events *structured* (event + meta), so a
/// parallel replica's journal can be replayed into the driver's session
/// at an exchange barrier with attribution intact.
#[derive(Clone, Debug, Default)]
pub struct ReplaySink {
    shared: Rc<RefCell<Vec<(Event, EventMeta)>>>,
}

impl ReplaySink {
    /// Creates an empty buffer.
    pub fn new() -> ReplaySink {
        ReplaySink::default()
    }

    /// Takes every buffered `(event, meta)` pair, oldest first.
    pub fn drain(&self) -> Vec<(Event, EventMeta)> {
        std::mem::take(&mut *self.shared.borrow_mut())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.shared.borrow().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.shared.borrow().is_empty()
    }
}

impl Recorder for ReplaySink {
    fn record(&mut self, event: &Event) {
        self.record_with(event, &EventMeta::default());
    }

    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        self.shared.borrow_mut().push((event.clone(), *meta));
    }
}

/// Streams journal lines over a Unix-domain socket to a live listener
/// (`rowfpga tail --listen PATH`).
///
/// Writes are best-effort like the file journal: if the listener goes away
/// mid-run the sink goes quiet instead of failing the layout run.
#[cfg(unix)]
pub struct SocketSink {
    out: Option<BufWriter<std::os::unix::net::UnixStream>>,
}

#[cfg(unix)]
impl std::fmt::Debug for SocketSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketSink")
            .field("connected", &self.out.is_some())
            .finish()
    }
}

#[cfg(unix)]
impl SocketSink {
    /// Connects to a listening socket at `path`.
    pub fn connect(path: &str) -> std::io::Result<SocketSink> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        Ok(SocketSink {
            out: Some(BufWriter::new(stream)),
        })
    }

    fn send(&mut self, mut line: String) {
        line.push('\n');
        let dead = match &mut self.out {
            Some(out) => {
                // Flush per event: tailers want lines as they happen, not
                // when a 8 KiB buffer fills.
                out.write_all(line.as_bytes())
                    .and_then(|()| out.flush())
                    .is_err()
            }
            None => false,
        };
        if dead {
            self.out = None;
        }
    }
}

#[cfg(unix)]
impl Recorder for SocketSink {
    fn record(&mut self, event: &Event) {
        self.send(event.to_json().to_string_compact());
    }

    fn record_with(&mut self, event: &Event, meta: &EventMeta) {
        self.send(event.to_json_with(meta).to_string_compact());
    }

    fn flush(&mut self) {
        if let Some(out) = &mut self.out {
            let _ = out.flush();
        }
    }
}

/// Prefix selecting a [`SocketSink`] in a `--journal` spec.
pub const SOCKET_SPEC_PREFIX: &str = "unix:";

/// Opens a journal sink from a spec string: `unix:PATH` connects to a
/// listening socket, anything else creates (truncates) a JSONL file.
pub fn open_sink(spec: &str) -> std::io::Result<Box<dyn Recorder>> {
    #[cfg(unix)]
    if let Some(path) = spec.strip_prefix(SOCKET_SPEC_PREFIX) {
        return Ok(Box::new(SocketSink::connect(path)?));
    }
    let file = std::fs::File::create(spec)?;
    Ok(Box::new(RunJournal::new(BufWriter::new(file))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn warning(n: u64) -> (Event, EventMeta) {
        (
            Event::Warning {
                code: format!("w{n}"),
                detail: String::new(),
            },
            EventMeta {
                seq: n,
                span: 0,
                parent_span: 0,
                replica: 1,
            },
        )
    }

    #[test]
    fn ring_keeps_the_most_recent_lines() {
        let handle = RingSink::new(2);
        let mut sink = handle.clone();
        for n in 0..5 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        let lines = handle.snapshot();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"w3\""), "{lines:?}");
        assert!(lines[1].contains("\"w4\""), "{lines:?}");
        assert_eq!(handle.dropped(), 3);
        let doc = json::parse(&lines[1]).unwrap();
        assert_eq!(EventMeta::from_json(&doc).seq, 4);
    }

    #[test]
    fn replay_buffer_preserves_events_and_meta() {
        let handle = ReplaySink::new();
        let mut sink = handle.clone();
        for n in 0..3 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        assert_eq!(handle.len(), 3);
        let drained = handle.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[2].1.seq, 2);
        assert_eq!(drained[2].1.replica, 1);
        assert!(handle.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn socket_sink_streams_lines_to_a_listener() {
        use std::io::{BufRead, BufReader};

        let dir = std::env::temp_dir().join(format!("rowfpga-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.sock");
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();

        let path_str = path.to_str().unwrap().to_string();
        let reader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut lines = Vec::new();
            for line in BufReader::new(stream).lines() {
                lines.push(line.unwrap());
            }
            lines
        });

        let mut sink = SocketSink::connect(&path_str).unwrap();
        for n in 0..3 {
            let (e, m) = warning(n);
            sink.record_with(&e, &m);
        }
        sink.flush();
        drop(sink);

        let lines = reader.join().unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"warning\""), "{lines:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_sink_writes_a_file_journal() {
        let dir = std::env::temp_dir().join(format!("rowfpga-sink-f-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        {
            let mut sink = open_sink(path.to_str().unwrap()).unwrap();
            let (e, m) = warning(7);
            sink.record_with(&e, &m);
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"w7\""));
        let _ = std::fs::remove_file(&path);
    }
}
