//! Named counters and fixed-bucket histograms.
//!
//! The registry is deliberately simple: counters are `u64` adds, histograms
//! have fixed exponential bucket edges chosen at first observation (or
//! explicitly via [`MetricsRegistry::histogram_with_buckets`]). Percentiles
//! are estimated by linear interpolation inside the owning bucket, with the
//! tracked exact `max` as the upper clamp.

use std::collections::BTreeMap;

use crate::json::Json;

/// A histogram with fixed, monotonically increasing bucket upper bounds.
/// Values above the last edge land in an implicit overflow bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper-bound edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<f64>) -> Histogram {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let buckets = edges.len() + 1; // plus overflow
        Histogram {
            edges,
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Default edges for non-negative size-like quantities (cascade sizes,
    /// frontier sizes): 0, 1, 2, 4, … 4096.
    pub fn size_edges() -> Vec<f64> {
        let mut edges = vec![0.0];
        let mut e = 1.0;
        while e <= 4096.0 {
            edges.push(e);
            e *= 2.0;
        }
        edges
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket containing the target rank, clamped to the exact
    /// observed `[min, max]`.
    ///
    /// Degenerate series are answered exactly instead of interpolated:
    /// an empty histogram returns `None` (there is no quantile to
    /// estimate), and a single-sample histogram returns that sample for
    /// every `q`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        if self.count == 1 {
            return Some(self.min);
        }
        Some(self.percentile_estimate(q))
    }

    fn percentile_estimate(&self, q: f64) -> f64 {
        let rank = q * (self.count as f64 - 1.0);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let first = seen as f64;
            let last = (seen + c - 1) as f64;
            if rank <= last {
                let lo = if idx == 0 {
                    self.min
                } else {
                    self.edges[idx - 1]
                };
                let hi = if idx < self.edges.len() {
                    self.edges[idx]
                } else {
                    self.max
                };
                let frac = if c == 1 {
                    0.5
                } else {
                    (rank - first) / (last - first)
                };
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Folds another histogram's observations into this one. Both must
    /// have identical bucket edges (they do when both came from the same
    /// instrumentation site, e.g. a replica's copy of this registry).
    ///
    /// # Panics
    ///
    /// Panics if the edge vectors differ.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different bucket edges"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final pair uses
    /// `f64::INFINITY` for the overflow bucket.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.edges
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .collect()
    }
}

/// Named counters and histograms for one run.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation into the named histogram, creating it with
    /// [`Histogram::size_edges`] on first use.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(Histogram::size_edges()))
            .observe(value);
    }

    /// Creates (or replaces) the named histogram with explicit edges.
    pub fn histogram_with_buckets(&mut self, name: &'static str, edges: Vec<f64>) {
        self.histograms.insert(name, Histogram::new(edges));
    }

    /// Reads a histogram, if it has been observed into.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise (used to absorb parallel replicas' metrics into
    /// the driver's registry).
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            self.add(name, value);
        }
        for (name, histogram) in other.histograms() {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge_from(histogram),
                None => {
                    self.histograms.insert(name, histogram.clone());
                }
            }
        }
    }

    /// Snapshot as a JSON object (used for the journal's `run_end` event).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.to_string(), Json::from(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.to_string(),
                        Json::obj(vec![
                            ("count", h.count().into()),
                            ("mean", h.mean().into()),
                            ("p50", h.percentile(0.50).map_or(Json::Null, Json::from)),
                            ("p95", h.percentile(0.95).map_or(Json::Null, Json::from)),
                            ("max", h.max().into()),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![("counters", counters), ("histograms", histograms)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.inc("b");
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 1);
        assert_eq!(m.counter("missing"), 0);
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn histogram_bucket_assignment() {
        let mut h = Histogram::new(vec![0.0, 1.0, 2.0, 4.0]);
        for v in [0.0, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let buckets = h.buckets();
        // value 0 -> edge 0, value 1 and 1.5? 1.0 <= 1.0 edge, 1.5 <= 2.0
        assert_eq!(buckets[0], (0.0, 1));
        assert_eq!(buckets[1], (1.0, 1));
        assert_eq!(buckets[2], (2.0, 1));
        assert_eq!(buckets[3], (4.0, 1));
        assert_eq!(buckets[4].1, 1); // overflow
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn percentiles_are_ordered_and_clamped() {
        let mut h = Histogram::new(Histogram::size_edges());
        for v in 0..100 {
            h.observe(v as f64);
        }
        let p50 = h.percentile(0.50).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let max = h.percentile(1.0).unwrap();
        assert!(p50 <= p95 && p95 <= max, "p50={p50} p95={p95} max={max}");
        assert!((0.0..=99.0).contains(&p50));
        assert!(p95 >= 60.0, "p95={p95} too low for uniform 0..100");
        assert_eq!(max, 99.0);
    }

    #[test]
    fn percentile_of_single_observation_is_exact() {
        // A lone sample is its own quantile for every q — no bucket
        // interpolation, even when the sample sits mid-bucket.
        let mut h = Histogram::new(vec![10.0, 20.0]);
        h.observe(15.0);
        assert_eq!(h.percentile(0.5), Some(15.0));
        assert_eq!(h.percentile(0.0), Some(15.0));
        assert_eq!(h.percentile(1.0), Some(15.0));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.0), None);
        assert_eq!(h.max(), 0.0);
        // And the JSON snapshot reports null, not a fabricated zero.
        let mut m = MetricsRegistry::new();
        m.histogram_with_buckets("empty", vec![1.0]);
        let j = m.to_json();
        let e = j.get("histograms").and_then(|h| h.get("empty")).unwrap();
        assert_eq!(e.get("p50").unwrap(), &Json::Null);
        assert_eq!(e.get("p95").unwrap(), &Json::Null);
    }

    #[test]
    fn histograms_and_registries_merge() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("moves");
        b.add("moves", 4);
        b.inc("only_b");
        a.observe("cascade", 1.0);
        b.observe("cascade", 3.0);
        b.observe("frontier", 2.0);
        a.absorb(&b);
        assert_eq!(a.counter("moves"), 5);
        assert_eq!(a.counter("only_b"), 1);
        let cascade = a.histogram("cascade").unwrap();
        assert_eq!(cascade.count(), 2);
        assert_eq!(cascade.sum(), 4.0);
        assert_eq!(cascade.min(), 1.0);
        assert_eq!(cascade.max(), 3.0);
        assert_eq!(a.histogram("frontier").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "different bucket edges")]
    fn merging_mismatched_edges_panics() {
        let mut a = Histogram::new(vec![1.0]);
        let b = Histogram::new(vec![2.0]);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_panic() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn registry_json_snapshot() {
        let mut m = MetricsRegistry::new();
        m.inc("moves");
        m.observe("cascade", 3.0);
        let j = m.to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("moves")).unwrap(),
            &Json::Num(1.0)
        );
        let cascade = j.get("histograms").and_then(|h| h.get("cascade")).unwrap();
        assert_eq!(cascade.get("count").unwrap(), &Json::Num(1.0));
    }
}
