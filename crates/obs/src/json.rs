//! Minimal JSON value, writer, and parser.
//!
//! The journal format is JSONL (one object per line). This module is
//! dependency-free: a small ordered value type, an escaping writer, and a
//! recursive-descent parser sufficient to read a journal back (used by the
//! `fig6` bench bin to regenerate plots from a recorded run).

use std::fmt;

/// A JSON value. Object keys keep insertion order so journal lines are
/// stable and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (emitted without a fraction when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes to an indented multi-line string (two-space indent),
    /// for artifacts committed to the repository where diffs matter.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Inf; journal consumers treat null as "absent".
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after document"));
    }
    Ok(value)
}

/// Parses JSONL: one document per non-empty line.
pub fn parse_lines(input: &str) -> Result<Vec<Json>, JsonError> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse)
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for journal data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("event", "run_start".into()),
            ("seed", 42u64.into()),
            ("ratio", 0.25.into()),
            ("ok", true.into()),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![1u64.into(), Json::Str("a\"b\\c\n".into())]),
            ),
        ]);
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parses_jsonl() {
        let lines = "{\"a\":1}\n\n{\"b\":[2,3]}\n";
        let docs = parse_lines(lines).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(docs[1].get("b").and_then(Json::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let parsed = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(parsed.as_str(), Some("Aé"));
    }
}
