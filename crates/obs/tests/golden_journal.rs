//! Golden-file coverage of the journal wire format.
//!
//! One line per event kind, serialized with a fixed causal envelope, and
//! compared byte-for-byte against the committed golden journal. If this
//! test fails after an intentional schema change, bump
//! `record::SCHEMA_VERSION`, regenerate with `BLESS=1 cargo test -p
//! rowfpga-obs --test golden_journal`, and describe the migration in
//! DESIGN.md §12.

use rowfpga_obs::{
    json, DynamicsRecord, Event, EventMeta, RerouteRecord, TemperatureRecord, SCHEMA_VERSION,
};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/journal_v2.jsonl");

/// Every journal event kind exactly once, in schema order.
fn every_event_kind() -> Vec<Event> {
    vec![
        Event::JournalHeader {
            schema: SCHEMA_VERSION,
            generator: "rowfpga-obs golden".into(),
        },
        Event::RunStart {
            flow: "simultaneous".into(),
            benchmark: "cse".into(),
            seed: 7,
            config: vec![("tracks".to_string(), rowfpga_obs::Json::Num(9.0))],
        },
        Event::SpanStart {
            id: 1,
            parent: 0,
            name: "anneal".into(),
        },
        Event::Temperature(TemperatureRecord {
            index: 0,
            temperature: 12.5,
            moves: 100,
            accepted: 44,
            mean_cost: 10.0,
            std_cost: 1.5,
            current_cost: 9.0,
            best_cost: 8.5,
        }),
        Event::Dynamics(DynamicsRecord {
            index: 0,
            temperature: 12.5,
            cells_perturbed: 40,
            nets_globally_unrouted: 2,
            nets_unrouted: 5,
            worst_delay: 31.25,
            cost: 9.0,
        }),
        Event::Reroute {
            scope: "final_repair".into(),
            stats: RerouteRecord {
                globally_routed: 3,
                detail_routed: 11,
                detail_failures: 1,
            },
        },
        Event::Audit {
            temp: 12,
            ok: false,
            detail: "incremental worst 31.2 != oracle 30.9".into(),
        },
        Event::Repair {
            temp: 12,
            attempt: 1,
            scope: "routing".into(),
            ok: true,
        },
        Event::Checkpoint {
            temp: 16,
            path: "/tmp/run.ckpt".into(),
            ok: true,
            detail: String::new(),
        },
        Event::Exchange {
            round: 2,
            winner: 1,
            winner_cost: 8.75,
            adopted: 2,
        },
        Event::Warning {
            code: "oversubscribed".into(),
            detail: "4 replicas on 1 core".into(),
        },
        Event::SpanEnd {
            id: 1,
            name: "anneal".into(),
            elapsed_us: 1250,
        },
        Event::Stop {
            reason: "deadline".into(),
            temps: 17,
            repairs: 1,
        },
        Event::RunEnd {
            cost: 8.5,
            worst_delay: 30.0,
            unrouted: 0,
            total_moves: 100,
            temperatures: 1,
            runtime_sec: 0.25,
            metrics: rowfpga_obs::Json::obj(vec![("counters", rowfpga_obs::Json::Obj(vec![]))]),
        },
    ]
}

fn rendered() -> String {
    let mut out = String::new();
    for (i, event) in every_event_kind().iter().enumerate() {
        let meta = EventMeta {
            seq: i as u64 + 1,
            span: 1,
            parent_span: 0,
            replica: if matches!(event, Event::Temperature(_)) {
                2
            } else {
                0
            },
        };
        out.push_str(&event.to_json_with(&meta).to_string_compact());
        out.push('\n');
    }
    out
}

#[test]
fn journal_lines_match_the_committed_golden_file() {
    let text = rendered();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &text).expect("write golden file");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden journal committed");
    assert_eq!(
        text, golden,
        "journal wire format drifted from tests/golden/journal_v2.jsonl; if \
         intentional, bump SCHEMA_VERSION and re-bless (BLESS=1)"
    );
}

#[test]
fn golden_file_round_trips_through_the_parser() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden journal committed");
    let docs = json::parse_lines(&golden).expect("golden parses as JSONL");
    let events = every_event_kind();
    assert_eq!(docs.len(), events.len(), "one line per event kind");
    for (i, (doc, original)) in docs.iter().zip(&events).enumerate() {
        let parsed =
            Event::from_json(doc).unwrap_or_else(|| panic!("line {i} must parse as a known event"));
        assert_eq!(parsed.to_json(), original.to_json(), "line {i} round-trips");
        assert_eq!(EventMeta::from_json(doc).seq, i as u64 + 1);
    }
}

#[test]
fn golden_covers_every_event_kind() {
    // A new Event variant must be added to every_event_kind() (and the
    // golden file re-blessed): this match is a compile-time reminder.
    let seen: Vec<&str> = every_event_kind()
        .iter()
        .map(|e| match e {
            Event::JournalHeader { .. } => "journal_header",
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::Warning { .. } => "warning",
            Event::Exchange { .. } => "exchange",
            Event::RunStart { .. } => "run_start",
            Event::Temperature(_) => "temperature",
            Event::Dynamics(_) => "dynamics",
            Event::Reroute { .. } => "reroute",
            Event::Audit { .. } => "audit",
            Event::Repair { .. } => "repair",
            Event::Checkpoint { .. } => "checkpoint",
            Event::Stop { .. } => "stop",
            Event::RunEnd { .. } => "run_end",
        })
        .collect();
    let mut unique = seen.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seen.len(), "each kind appears exactly once");
    assert_eq!(seen.len(), 14);
}
