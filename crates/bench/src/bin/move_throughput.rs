//! Move-evaluation throughput benchmark: times the full incremental move
//! cascade (propose → rip-up → global → detail → timing → commit/undo)
//! per move under a Metropolis acceptance rule at a fixed temperature, on
//! the mid-size synthetic design.
//!
//! Emits `results/BENCH_move_throughput.json` containing both the current
//! measurement and the pre-optimization baseline recorded when this
//! benchmark was introduced, so the speedup trajectory stays visible in
//! the repository.
//!
//! Usage: `move_throughput [--moves N] [--seed N] [--quick] [--out PATH]
//! [--check PATH]`
//!
//! `--check PATH` reads a previously committed JSON at PATH *before*
//! overwriting it and exits non-zero if the fresh run's move throughput
//! regressed by more than 20 % against it (the `scripts/check.sh` gate).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rowfpga_anneal::AnnealProblem;
use rowfpga_core::{size_architecture, CostConfig, LayoutProblem, SizingConfig};
use rowfpga_netlist::{generate, GenerateConfig};
use rowfpga_obs::json::{parse, Json};
use rowfpga_place::MoveWeights;
use rowfpga_route::RouterConfig;

/// Pre-PR baseline, measured on the seed implementation (HashMap journal,
/// `BTreeSet` queues, per-commit `NetRoute` clones) at commit d31aebe with
/// the default 60k-move run on the 300-cell synthetic design. Kept in the
/// emitted JSON so the speedup against the original hot path stays on
/// record.
const BASELINE_PRE_PR: Measurement = Measurement {
    median_move_ns: 297_830.0,
    mean_move_ns: 301_978.4,
    p90_move_ns: 379_966.0,
    moves_per_sec: 3_310.0,
};

#[derive(Clone, Copy)]
struct Measurement {
    median_move_ns: f64,
    mean_move_ns: f64,
    p90_move_ns: f64,
    moves_per_sec: f64,
}

impl Measurement {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("median_move_ns", Json::Num(self.median_move_ns)),
            ("mean_move_ns", Json::Num(self.mean_move_ns)),
            ("p90_move_ns", Json::Num(self.p90_move_ns)),
            ("moves_per_sec", Json::Num(self.moves_per_sec)),
        ])
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The mid-size synthetic design: larger than the MCNC presets
/// (156–227 cells), smaller than the 529-cell Figure 7 design.
fn midsize_config() -> GenerateConfig {
    GenerateConfig {
        num_cells: 300,
        num_inputs: 12,
        num_outputs: 12,
        num_seq: 10,
        seed: 42,
        ..GenerateConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let moves: usize = arg_value(&args, "--moves")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 8_000 } else { 60_000 });
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let out = arg_value(&args, "--out");
    let check = arg_value(&args, "--check");

    let committed_moves_per_sec = check.as_deref().and_then(|path| {
        let text = std::fs::read_to_string(path).ok()?;
        let json = parse(&text).ok()?;
        json.get("current")?.get("moves_per_sec")?.as_f64()
    });

    let nl = generate(&midsize_config());
    let arch = size_architecture(&nl, &SizingConfig::default()).expect("sizing fits the preset");
    let mut problem = LayoutProblem::new(
        &arch,
        &nl,
        RouterConfig::default(),
        CostConfig::default(),
        MoveWeights::default(),
        seed,
    )
    .expect("synthetic design fits the sized chip");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37));

    // Warm up exactly like the annealer: a random walk that accepts every
    // move, deriving the temperature from the average uphill delta so the
    // measured acceptance mix is representative of early annealing.
    let warmup = 1_000.min(moves / 4).max(100);
    let mut uphill_sum = 0.0;
    let mut uphill_n = 0u32;
    for _ in 0..warmup {
        let (applied, delta) = problem.propose_and_apply(&mut rng);
        if delta > 0.0 {
            uphill_sum += delta;
            uphill_n += 1;
        }
        problem.commit(applied);
    }
    let temperature = if uphill_n > 0 {
        (uphill_sum / f64::from(uphill_n)) / (1.0f64 / 0.85).ln()
    } else {
        1.0
    };

    let mut samples: Vec<u64> = Vec::with_capacity(moves);
    let mut accepted = 0usize;
    let run_start = Instant::now();
    for _ in 0..moves {
        let t0 = Instant::now();
        let (applied, delta) = problem.propose_and_apply(&mut rng);
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
        if accept {
            problem.commit(applied);
            accepted += 1;
        } else {
            problem.undo(applied);
        }
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    let wall = run_start.elapsed();

    samples.sort_unstable();
    let median = samples[samples.len() / 2] as f64;
    let p90 = samples[samples.len() * 9 / 10] as f64;
    let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
    let moves_per_sec = moves as f64 / wall.as_secs_f64();
    let current = Measurement {
        median_move_ns: median,
        mean_move_ns: mean,
        p90_move_ns: p90,
        moves_per_sec,
    };

    println!(
        "move-eval throughput on {}-cell synthetic design:",
        nl.num_cells()
    );
    println!(
        "  moves measured    {moves} (acceptance {:.2})",
        accepted as f64 / moves as f64
    );
    println!("  median move       {median:.0} ns");
    println!("  mean move         {mean:.1} ns");
    println!("  p90 move          {p90:.0} ns");
    println!("  throughput        {moves_per_sec:.0} moves/sec");
    println!(
        "  speedup vs pre-PR {:.2}x (baseline median {:.0} ns)",
        BASELINE_PRE_PR.median_move_ns / median,
        BASELINE_PRE_PR.median_move_ns
    );

    let json = Json::obj(vec![
        ("schema", Json::Str("bench.move_throughput/v1".into())),
        (
            "design",
            Json::obj(vec![
                ("kind", Json::Str("synthetic-midsize".into())),
                ("cells", Json::Num(nl.num_cells() as f64)),
                ("nets", Json::Num(nl.num_nets() as f64)),
            ]),
        ),
        ("moves", Json::Num(moves as f64)),
        ("seed", Json::Num(seed as f64)),
        ("acceptance", Json::Num(accepted as f64 / moves as f64)),
        ("current", current.to_json()),
        ("baseline_pre_pr", BASELINE_PRE_PR.to_json()),
        (
            "speedup_vs_pre_pr",
            Json::Num(BASELINE_PRE_PR.median_move_ns / median),
        ),
    ]);
    if let Some(path) = out {
        std::fs::write(&path, json.to_string_pretty() + "\n").expect("write JSON artifact");
        println!("wrote {path}");
    }

    if let Some(committed) = committed_moves_per_sec {
        let floor = committed * 0.8;
        if moves_per_sec < floor {
            eprintln!(
                "FAIL: move throughput regressed >20%: {moves_per_sec:.0} moves/sec \
                 vs committed {committed:.0} (floor {floor:.0})"
            );
            std::process::exit(1);
        }
        println!(
            "throughput gate OK: {moves_per_sec:.0} moves/sec vs committed {committed:.0} \
             (floor {floor:.0})"
        );
    }
}
