//! Reproduces **Table 2** (wirability improvement).
//!
//! For each benchmark, the number of tracks per channel is reduced until
//! each flow first fails to achieve 100 % wirability; the minimum feasible
//! track count is its required channel width. The paper reports 20–33 %
//! fewer tracks for the simultaneous flow.
//!
//! Usage: `table2 [--fast] [--seed N] [--start T]`

use rowfpga_bench::{improvement_pct, min_tracks, paper_suite, results_dir, Effort, Flow};
use rowfpga_core::SizingConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let effort = if args.iter().any(|a| a == "--fast") {
        Effort::Fast
    } else {
        Effort::Full
    };
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse::<u64>().ok())
    };
    let seed = arg("--seed").unwrap_or(1);
    let sizing = SizingConfig::default();
    let start = arg("--start")
        .map(|t| t as usize)
        .unwrap_or(sizing.tracks_per_channel);

    println!("Table 2 reproduction: minimum tracks/channel for 100% wirability");
    println!("(effort: {effort:?}, seed: {seed}, scanning down from {start} tracks)\n");
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>12}",
        "Design", "#cells", "Seq P&R", "Sim P&R", "% reduction"
    );

    let mut reductions = Vec::new();
    let mut csv = String::from("design,cells,seq_min_tracks,sim_min_tracks,reduction_pct\n");
    for problem in paper_suite(&sizing) {
        let seq = min_tracks(Flow::Sequential, &problem, effort, seed, start);
        let sim = min_tracks(Flow::Simultaneous, &problem, effort, seed, start);
        match (seq, sim) {
            (Some(seq), Some(sim)) => {
                let red = improvement_pct(seq as f64, sim as f64);
                reductions.push(red);
                csv.push_str(&format!(
                    "{},{},{},{},{:.2}\n",
                    problem.name,
                    problem.netlist.num_cells(),
                    seq,
                    sim,
                    red
                ));
                println!(
                    "{:<8} {:>7} {:>12} {:>12} {:>11.1}%",
                    problem.name,
                    problem.netlist.num_cells(),
                    seq,
                    sim,
                    red
                );
            }
            _ => println!(
                "{:<8} {:>7} {:>12?} {:>12?}  [unroutable at start width]",
                problem.name,
                problem.netlist.num_cells(),
                seq,
                sim
            ),
        }
    }
    if !reductions.is_empty() {
        let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
        println!("\nmean track reduction: {mean:.1}%   (paper: 20-33%)");
    }
    let path = results_dir().join("table2.csv");
    std::fs::write(&path, csv).expect("write table2 csv");
    println!("per-design CSV written to {}", path.display());
}
