//! Service load benchmark: drives an in-process `rowfpga-serve` daemon
//! with a burst of concurrent jobs — mixed sizes, mixed priorities, a
//! single worker — and measures what a client of the service actually
//! feels: per-job turnaround (submit → terminal state), the p95 under
//! queueing and preemption, and how long an eviction takes from the
//! stop request to the worker being free for the urgent job.
//!
//! Emits `results/BENCH_service.json`. The interesting numbers inside:
//!
//! * `turnaround_sec.p95` — tail latency under load, the service-level
//!   headline;
//! * `urgent_turnaround_sec` — what priority buys: high-priority jobs
//!   preempt the running work instead of waiting out the whole queue;
//! * `eviction_latency_sec` — preemption responsiveness, bounded by the
//!   engine's temperature-boundary stop granularity.
//!
//! Usage: `serve [--quick] [--jobs N] [--workers N] [--out PATH]`

#[cfg(unix)]
mod run {
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    use rowfpga_netlist::{generate, write_netlist, GenerateConfig};
    use rowfpga_obs::Json;
    use rowfpga_serve::{client, Daemon, JobSpec, ServeConfig};

    /// Reports a fatal setup/protocol failure and exits non-zero. A
    /// bench bin has no caller to hand a typed error to; what matters
    /// is a clear message and a failing exit code for the gate.
    fn die(msg: String) -> ! {
        eprintln!("bench/serve: {msg}");
        std::process::exit(2);
    }

    fn arg_value(args: &[String], flag: &str) -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    }

    fn netlist_text(cells: usize) -> String {
        write_netlist(&generate(&GenerateConfig {
            num_cells: cells,
            num_inputs: 8,
            num_outputs: 6,
            num_seq: 4,
            ..GenerateConfig::default()
        }))
    }

    /// One client's view of its job.
    struct Turnaround {
        label: String,
        priority: i64,
        state: String,
        turnaround_sec: f64,
    }

    fn percentile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (p * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    fn stats_json(values: &[f64]) -> Json {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Json::obj(vec![
            ("count", Json::Num(sorted.len() as f64)),
            ("p50", Json::Num(percentile(&sorted, 0.50))),
            ("p95", Json::Num(percentile(&sorted, 0.95))),
            ("max", Json::Num(sorted.last().copied().unwrap_or(0.0))),
            (
                "mean",
                Json::Num(if sorted.is_empty() {
                    0.0
                } else {
                    sorted.iter().sum::<f64>() / sorted.len() as f64
                }),
            ),
        ])
    }

    pub fn main() {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let jobs: usize = arg_value(&args, "--jobs")
            .and_then(|s| s.parse().ok())
            .unwrap_or(if quick { 6 } else { 12 });
        let workers: usize = arg_value(&args, "--workers")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let out = arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_service.json".into());

        let root: PathBuf =
            std::env::temp_dir().join(format!("rowfpga-bench-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap_or_else(|e| die(format!("scratch dir: {e}")));
        let socket = root.join("sock");
        let mut cfg = ServeConfig::new(socket.clone(), root.join("spool"));
        cfg.workers = workers;
        // The load is a burst: size the queue so backpressure is not what
        // this benchmark measures (bench/serve measures latency, not the
        // reject path).
        cfg.queue_capacity = jobs + 4;
        let handle = Daemon::start(cfg).unwrap_or_else(|e| die(format!("daemon start: {e}")));

        // The job mix: long and medium jobs fill the queue; every fourth
        // submission is a small high-priority job that preempts whatever
        // is running, so eviction latency shows up under realistic load.
        let long = netlist_text(140);
        let medium = netlist_text(60);
        let small = netlist_text(24);
        let started = Instant::now();
        let clients: Vec<std::thread::JoinHandle<Turnaround>> = (0..jobs)
            .map(|i| {
                let urgent = i % 4 == 3;
                let (label, netlist, priority) = if urgent {
                    (format!("urgent-{i}"), small.clone(), 10)
                } else if i % 2 == 0 {
                    (format!("long-{i}"), long.clone(), 0)
                } else {
                    (format!("medium-{i}"), medium.clone(), 0)
                };
                let socket = socket.clone();
                std::thread::spawn(move || {
                    // Stagger the arrivals so urgent jobs land while lower
                    // priority work is mid-anneal.
                    std::thread::sleep(Duration::from_millis(100 * i as u64));
                    let spec = JobSpec {
                        netlist,
                        fast: true,
                        priority,
                        seed: i as u64 + 1,
                        ..JobSpec::default()
                    };
                    let begin = Instant::now();
                    let id = client::submit(&socket, &spec)
                        .unwrap_or_else(|e| die(format!("submit {label}: {e}")));
                    let done = client::wait(&socket, &id, Duration::from_secs(600))
                        .unwrap_or_else(|e| die(format!("wait {label}: {e}")));
                    Turnaround {
                        label,
                        priority,
                        state: client::state_of(&done).unwrap_or("?").to_string(),
                        turnaround_sec: begin.elapsed().as_secs_f64(),
                    }
                })
            })
            .collect();
        let results: Vec<Turnaround> = clients
            .into_iter()
            .map(|c| {
                c.join()
                    .unwrap_or_else(|_| die("client thread panicked".into()))
            })
            .collect();
        let wall = started.elapsed().as_secs_f64();
        let stats = handle.shutdown();
        let _ = std::fs::remove_dir_all(&root);

        for r in &results {
            println!(
                "{:>10}  priority {:>2}  {:>7.2}s  {}",
                r.label, r.priority, r.turnaround_sec, r.state
            );
        }
        let all: Vec<f64> = results.iter().map(|r| r.turnaround_sec).collect();
        let urgent: Vec<f64> = results
            .iter()
            .filter(|r| r.priority > 0)
            .map(|r| r.turnaround_sec)
            .collect();
        let done = results.iter().filter(|r| r.state == "done").count();
        println!(
            "{jobs} jobs on {workers} worker(s) in {wall:.2}s: {done} done, \
             {} evictions, p95 turnaround {:.2}s",
            stats.evictions,
            percentile(
                &{
                    let mut s = all.clone();
                    s.sort_by(|a, b| a.total_cmp(b));
                    s
                },
                0.95
            )
        );

        assert_eq!(done, jobs, "every job must finish with a layout");
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let json = Json::obj(vec![
            ("schema", Json::Str("bench.service/v1".into())),
            (
                "profile",
                Json::Str(if quick { "quick" } else { "default" }.into()),
            ),
            ("host_cores", Json::Num(host_cores as f64)),
            ("workers", Json::Num(workers as f64)),
            ("jobs", Json::Num(jobs as f64)),
            ("wall_sec", Json::Num(wall)),
            ("jobs_per_sec", Json::Num(jobs as f64 / wall.max(1e-9))),
            ("turnaround_sec", stats_json(&all)),
            ("urgent_turnaround_sec", stats_json(&urgent)),
            (
                "eviction_latency_sec",
                stats_json(&stats.eviction_latency_sec),
            ),
            ("evictions", Json::Num(stats.evictions as f64)),
            ("completed", Json::Num(stats.completed as f64)),
            ("rejected", Json::Num(stats.rejected as f64)),
        ]);
        if let Some(parent) = std::path::Path::new(&out).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .unwrap_or_else(|e| die(format!("results dir: {e}")));
            }
        }
        std::fs::write(&out, json.to_string_pretty() + "\n")
            .unwrap_or_else(|e| die(format!("write {out}: {e}")));
        println!("wrote {out}");
    }
}

#[cfg(unix)]
fn main() {
    run::main();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("bench/serve needs unix domain sockets; skipping");
}
