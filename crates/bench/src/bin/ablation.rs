//! Ablations of the design choices the paper calls out (beyond its own
//! evaluation):
//!
//! * **pinmap moves off** — §3.2 makes pinmap reassignment one of the two
//!   move classes; how much does it buy?
//! * **timing term off** — the `Wt·T` cost component (wirability-only
//!   optimization);
//! * **router antifuse pressure off** — the detailed router's
//!   segments-used term is the constructive delay pressure (§3.4); drop it
//!   and route purely for wastage.
//!
//! Usage: `ablation [--fast] [--seed N]`

use rowfpga_bench::{problem_for, Effort};
use rowfpga_core::{CostConfig, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga_netlist::PaperBenchmark;
use rowfpga_place::MoveWeights;
use rowfpga_route::RouterConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let effort = if args.iter().any(|a| a == "--fast") {
        Effort::Fast
    } else {
        Effort::Full
    };
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);

    let problem = problem_for(PaperBenchmark::S1, &SizingConfig::default());
    println!(
        "Ablations of the simultaneous flow on {} (effort: {effort:?}, seed: {seed})\n",
        problem.name
    );
    println!(
        "{:<28} {:>10} {:>12} {:>8}",
        "Variant", "T (ns)", "routed", "time"
    );

    let base = match effort {
        Effort::Fast => SimPrConfig::fast(),
        Effort::Full => SimPrConfig::default(),
    }
    .with_seed(seed);

    let variants: Vec<(&str, SimPrConfig)> = vec![
        ("full (paper)", base.clone()),
        (
            "no pinmap moves",
            SimPrConfig {
                move_weights: MoveWeights {
                    exchange: 1.0,
                    pinmap: 0.0,
                },
                ..base.clone()
            },
        ),
        (
            "no timing term (Wt=0)",
            SimPrConfig {
                cost: CostConfig::wirability_only(),
                ..base.clone()
            },
        ),
        (
            "router: wastage only",
            SimPrConfig {
                router: RouterConfig::wirability_only(),
                ..base.clone()
            },
        ),
    ];

    let mut baseline_t = None;
    for (name, config) in variants {
        let r = SimultaneousPlaceRoute::new(config)
            .run(&problem.arch, &problem.netlist)
            .expect("flow failed");
        let t_ns = r.worst_delay / 1000.0;
        let delta = baseline_t
            .map(|b: f64| format!("  ({:+.1}% vs full)", 100.0 * (t_ns - b) / b))
            .unwrap_or_default();
        if baseline_t.is_none() {
            baseline_t = Some(t_ns);
        }
        println!(
            "{:<28} {:>10.1} {:>12} {:>8.2?}{}",
            name,
            t_ns,
            if r.fully_routed { "100%" } else { "partial" },
            r.runtime,
            delta
        );
    }
}
