//! Reproduces **Figure 7** (a larger, 529-cell design completed with 100 %
//! routing by the simultaneous tool).
//!
//! Usage: `fig7 [--fast] [--seed N] [--svg FILE] [--ascii]`
//!
//! The placed-and-routed chip is written as an SVG plot — the same kind of
//! picture the paper prints as Figure 7 — to `results/fig7.svg` unless
//! `--svg FILE` overrides the destination.

use rowfpga_bench::{problem_for, results_dir, run_flow, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let effort = if args.iter().any(|a| a == "--fast") {
        Effort::Fast
    } else {
        Effort::Full
    };
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);

    // The 529-cell design needs a taller, wider-channel fabric than the
    // Table 1 benchmarks: channel demand grows roughly with the square root
    // of the cell count (see DESIGN.md).
    let sizing = SizingConfig {
        aspect: 1.5,
        tracks_per_channel: 52,
        ..SizingConfig::default()
    };
    let problem = problem_for(PaperBenchmark::Big529, &sizing);
    let stats = problem.arch.stats();
    println!(
        "Figure 7 reproduction: {} cells / {} nets on a {}x{} chip ({} tracks/channel, {} hsegs, {} vsegs)",
        problem.netlist.num_cells(),
        problem.netlist.num_nets(),
        problem.arch.geometry().num_rows(),
        problem.arch.geometry().num_cols(),
        stats.tracks_per_channel,
        stats.num_hsegs,
        stats.num_vsegs,
    );
    let result = run_flow(
        Flow::Simultaneous,
        &problem.arch,
        &problem.netlist,
        effort,
        seed,
    )
    .expect("flow failed");
    println!(
        "routing: {} ({} globally unrouted, {} incomplete)",
        if result.fully_routed {
            "100% COMPLETE"
        } else {
            "INCOMPLETE"
        },
        result.globally_unrouted,
        result.incomplete,
    );
    println!(
        "worst path: {:.1} ns over {} cells; {} temperatures, {} moves, wall clock {:.2?}",
        result.worst_delay / 1000.0,
        result.critical_path.elements.len(),
        result.temperatures,
        result.total_moves,
        result.runtime
    );
    let svg_path = args
        .iter()
        .position(|a| a == "--svg")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("fig7.svg"));
    let svg = rowfpga_core::render_svg(
        &problem.arch,
        &problem.netlist,
        &result.placement,
        &result.routing,
    );
    std::fs::write(&svg_path, svg).expect("write svg");
    println!("layout plot written to {}", svg_path.display());
    if args.iter().any(|a| a == "--ascii") {
        println!(
            "{}",
            rowfpga_core::render_ascii(
                &problem.arch,
                &problem.netlist,
                &result.placement,
                &result.routing
            )
        );
    }
}
