//! Diagnostic probe for the Figure 7 design: sequential-flow feasibility
//! across aspect ratios and track counts (cheap), to pick the fabric for
//! the fig7 run. Not part of the paper's evaluation.

use rowfpga_bench::{problem_for, run_flow, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;

fn main() {
    let sim = std::env::args().any(|a| a == "--sim");
    for vtracks in [6usize, 8, 10, 12] {
        let aspect = 1.5f64;
        let sizing = SizingConfig {
            aspect,
            verticals: rowfpga_arch::VerticalScheme::WithLongLines {
                tracks_per_column: vtracks,
                span: 3,
            },
            ..SizingConfig::default()
        };
        let problem = problem_for(PaperBenchmark::Big529, &sizing);
        println!(
            "vtracks {vtracks}: chip {}x{} ({} channels)",
            problem.arch.geometry().num_rows(),
            problem.arch.geometry().num_cols(),
            problem.arch.geometry().num_channels()
        );
        for tracks in [36usize, 44, 52] {
            let arch = problem.arch.with_tracks(tracks).unwrap();
            let flow = if sim {
                Flow::Simultaneous
            } else {
                Flow::Sequential
            };
            let r = run_flow(flow, &arch, &problem.netlist, Effort::Fast, 1).unwrap();
            println!(
                "  tracks={tracks}: routed={} G={} D={} T={:.1}ns ({:.1?})",
                r.fully_routed,
                r.globally_unrouted,
                r.incomplete,
                r.worst_delay / 1000.0,
                r.runtime
            );
        }
    }
}
