//! Quick head-to-head smoke run of both flows on one benchmark.
//!
//! Not part of the paper's evaluation; a fast sanity check that the
//! simultaneous flow's advantage reproduces before running the full table
//! binaries.

use rowfpga_bench::{problem_for, run_flow, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;

fn main() {
    let effort = if std::env::args().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Fast
    };
    let problem = problem_for(PaperBenchmark::Cse, &SizingConfig::default());
    println!(
        "design {} ({} cells, {} nets) on {}x{} chip, {} tracks/channel",
        problem.name,
        problem.netlist.num_cells(),
        problem.netlist.num_nets(),
        problem.arch.geometry().num_rows(),
        problem.arch.geometry().num_cols(),
        problem.arch.tracks_per_channel(),
    );
    for flow in [Flow::Sequential, Flow::Simultaneous] {
        let r = run_flow(flow, &problem.arch, &problem.netlist, effort, 1).unwrap();
        println!(
            "{flow:?}: routed={} (G={}, D={}), T={:.1} ns, {} temps, {} moves, {:.2?}",
            r.fully_routed,
            r.globally_unrouted,
            r.incomplete,
            r.worst_delay / 1000.0,
            r.temperatures,
            r.total_moves,
            r.runtime
        );
    }
}
