//! Quick head-to-head smoke run of both flows on one benchmark.
//!
//! Not part of the paper's evaluation; a fast sanity check that the
//! simultaneous flow's advantage reproduces before running the full table
//! binaries. Pass `--metrics` to also print each flow's phase/counter
//! report from the observability layer.

use rowfpga_bench::{problem_for, run_flow_observed, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;
use rowfpga_obs::Obs;

fn main() {
    let effort = if std::env::args().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Fast
    };
    let metrics = std::env::args().any(|a| a == "--metrics");
    let problem = problem_for(PaperBenchmark::Cse, &SizingConfig::default());
    println!(
        "design {} ({} cells, {} nets) on {}x{} chip, {} tracks/channel",
        problem.name,
        problem.netlist.num_cells(),
        problem.netlist.num_nets(),
        problem.arch.geometry().num_rows(),
        problem.arch.geometry().num_cols(),
        problem.arch.tracks_per_channel(),
    );
    for flow in [Flow::Sequential, Flow::Simultaneous] {
        let obs = if metrics {
            Obs::metrics_only()
        } else {
            Obs::disabled()
        };
        let r = run_flow_observed(
            flow,
            &problem.arch,
            &problem.netlist,
            effort,
            1,
            problem.name,
            &obs,
        )
        .unwrap();
        println!(
            "{flow:?}: routed={} (G={}, D={}), T={:.1} ns, {} temps, {} moves, {:.2?}",
            r.fully_routed,
            r.globally_unrouted,
            r.incomplete,
            r.worst_delay / 1000.0,
            r.temperatures,
            r.total_moves,
            r.runtime
        );
        if let Some(report) = obs.render_report() {
            println!("\n{report}");
        }
    }
}
