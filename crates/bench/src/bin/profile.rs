//! Poor-man's profiler for the move cascade: times each stage of
//! `propose → rip-up → global → detailed → timing` separately over many
//! moves. Diagnostic tool, not part of the paper's evaluation.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rowfpga_bench::problem_for;
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;
use rowfpga_place::{MoveGenerator, MoveWeights, Placement};
use rowfpga_route::{detail_route_pass, global_route_pass, RouterConfig, RoutingState};
use rowfpga_timing::TimingState;

fn main() {
    let problem = problem_for(PaperBenchmark::Cse, &SizingConfig::default());
    let (arch, nl) = (&problem.arch, &problem.netlist);
    let cfg = RouterConfig::default();
    let mut placement = Placement::random(arch, nl, 1).unwrap();
    let mut routing = RoutingState::new(arch, nl);
    routing.route_incremental(arch, nl, &placement, &cfg);
    let mut timing = TimingState::new(arch, nl, &placement, &routing).unwrap();
    let mover = MoveGenerator::new(arch, nl, MoveWeights::default());
    let mut rng = StdRng::seed_from_u64(2);

    let n = 20_000usize;
    let mut t_prop = 0.0;
    let mut t_rip = 0.0;
    let mut t_glob = 0.0;
    let mut t_det = 0.0;
    let mut t_tim = 0.0;
    let mut t_roll = 0.0;
    for i in 0..n {
        let t0 = Instant::now();
        let mv = mover.propose(nl, &placement, &mut rng);
        routing.begin_txn();
        timing.begin_txn();
        mv.apply(arch, nl, &mut placement);
        let t1 = Instant::now();
        for cell in mv.affected_cells(&placement) {
            routing.rip_up_cell(nl, cell);
        }
        let t2 = Instant::now();
        global_route_pass(&mut routing, arch, nl, &placement, &cfg);
        let t3 = Instant::now();
        detail_route_pass(&mut routing, arch, &cfg);
        let t4 = Instant::now();
        let changed = routing.touched_nets();
        timing.update_nets(arch, nl, &placement, &routing, &changed);
        let t5 = Instant::now();
        // accept half, reject half
        if i % 2 == 0 {
            routing.commit();
            timing.commit();
        } else {
            routing.rollback();
            timing.rollback();
            mv.undo(arch, nl, &mut placement);
        }
        let t6 = Instant::now();
        t_prop += (t1 - t0).as_secs_f64();
        t_rip += (t2 - t1).as_secs_f64();
        t_glob += (t3 - t2).as_secs_f64();
        t_det += (t4 - t3).as_secs_f64();
        t_tim += (t5 - t4).as_secs_f64();
        t_roll += (t6 - t5).as_secs_f64();
    }
    let us = |t: f64| t / n as f64 * 1e6;
    println!("per-move stage costs over {n} moves (half accepted):");
    println!("  propose+apply : {:8.2} us", us(t_prop));
    println!("  rip-up        : {:8.2} us", us(t_rip));
    println!("  global route  : {:8.2} us", us(t_glob));
    println!("  detail route  : {:8.2} us", us(t_det));
    println!("  timing update : {:8.2} us", us(t_tim));
    println!("  commit/rollbk : {:8.2} us", us(t_roll));
    println!(
        "  total         : {:8.2} us",
        us(t_prop + t_rip + t_glob + t_det + t_tim + t_roll)
    );
}
