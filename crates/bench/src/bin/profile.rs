//! Profiler for the move cascade: times each stage of
//! `propose → rip-up → global → detailed → timing` separately over many
//! moves, using the observability crate's span profiler and metrics
//! registry. Diagnostic tool, not part of the paper's evaluation.
//!
//! Usage: `profile [--moves N] [--seed N] [--midsize]`
//!
//! `--midsize` profiles the 300-cell synthetic design the
//! `move_throughput` benchmark measures, instead of the MCNC-shaped `cse`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rowfpga_bench::problem_for;
use rowfpga_core::{size_architecture, SizingConfig};
use rowfpga_netlist::{generate, GenerateConfig, PaperBenchmark};
use rowfpga_obs::Obs;
use rowfpga_place::{MoveGenerator, MoveWeights, Placement};
use rowfpga_route::{detail_route_pass, global_route_pass, RouterConfig, RoutingState};
use rowfpga_timing::TimingState;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args
        .iter()
        .position(|a| a == "--moves")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    let midsize = args.iter().any(|a| a == "--midsize");
    let (arch, nl);
    let _problem;
    let _midsize_parts;
    if midsize {
        let netlist = generate(&GenerateConfig {
            num_cells: 300,
            num_inputs: 12,
            num_outputs: 12,
            num_seq: 10,
            seed: 42,
            ..GenerateConfig::default()
        });
        let a = size_architecture(&netlist, &SizingConfig::default()).unwrap();
        _midsize_parts = (a, netlist);
        arch = &_midsize_parts.0;
        nl = &_midsize_parts.1;
    } else {
        _problem = problem_for(PaperBenchmark::Cse, &SizingConfig::default());
        arch = &_problem.arch;
        nl = &_problem.netlist;
    }
    let cfg = RouterConfig::default();
    let mut placement = Placement::random(arch, nl, 1).unwrap();
    let mut routing = RoutingState::new(arch, nl);
    routing.route_incremental(arch, nl, &placement, &cfg);
    let mut timing = TimingState::new(arch, nl, &placement, &routing).unwrap();
    let mover = MoveGenerator::new(arch, nl, MoveWeights::default());
    let mut rng = StdRng::seed_from_u64(seed);

    let obs = Obs::metrics_only();
    obs.span_start("cascade");
    for i in 0..n {
        let mv = obs.span("propose_apply", || {
            let mv = mover.propose(nl, &placement, &mut rng);
            routing.begin_txn();
            timing.begin_txn();
            mv.apply(arch, nl, &mut placement);
            mv
        });
        obs.span("rip_up", || {
            for cell in mv.affected_cells(&placement) {
                routing.rip_up_cell(nl, cell);
            }
        });
        obs.observe("cascade.ug_queue", routing.globally_unrouted() as f64);
        let globally = obs.span("global_route", || {
            global_route_pass(&mut routing, arch, nl, &placement, &cfg)
        });
        let detail = obs.span("detail_route", || {
            detail_route_pass(&mut routing, arch, &cfg)
        });
        obs.span("timing_update", || {
            let changed = routing.touched_nets();
            timing.update_nets(arch, nl, &placement, &routing, changed);
        });
        // accept half, reject half
        obs.span("commit_rollback", || {
            if i % 2 == 0 {
                routing.commit();
                timing.commit();
            } else {
                routing.rollback();
                timing.rollback();
                mv.undo(arch, nl, &mut placement);
            }
        });
        obs.observe("cascade.global_nets", globally as f64);
        obs.observe("cascade.detail_assignments", detail.routed as f64);
        obs.add("cascade.detail_failures", detail.failures as u64);
        obs.observe("sta.frontier_cells", timing.last_frontier() as f64);
    }
    obs.span_end("cascade");
    obs.add("cascade.moves", n as u64);

    println!("per-move cascade profile over {n} moves (half accepted):\n");
    println!("{}", obs.render_report().expect("metrics enabled"));
}
