//! Diagnostic probe: routing feasibility of one benchmark across track
//! counts and vertical capacities. Not part of the paper's evaluation.

use rowfpga_bench::{problem_for, run_flow, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("ex1");
    let bench = PaperBenchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .expect("unknown benchmark");
    for vtracks in [4usize, 6, 8] {
        let sizing = SizingConfig {
            verticals: rowfpga_arch::VerticalScheme::WithLongLines {
                tracks_per_column: vtracks,
                span: 3,
            },
            ..SizingConfig::default()
        };
        let problem = problem_for(bench, &sizing);
        println!(
            "{}: chip {}x{} ({} logic sites for {} logic cells), vtracks={}",
            problem.name,
            problem.arch.geometry().num_rows(),
            problem.arch.geometry().num_cols(),
            problem.arch.geometry().num_logic_sites(),
            problem.netlist.stats().num_comb + problem.netlist.stats().num_seq,
            vtracks
        );
        for tracks in [36usize, 44, 52, 60] {
            let arch = problem.arch.with_tracks(tracks).unwrap();
            for flow in [Flow::Sequential, Flow::Simultaneous] {
                let r = run_flow(flow, &arch, &problem.netlist, Effort::Fast, 1).unwrap();
                println!(
                    "  tracks={tracks} {flow:?}: routed={} G={} D={} T={:.1}ns",
                    r.fully_routed,
                    r.globally_unrouted,
                    r.incomplete,
                    r.worst_delay / 1000.0
                );
            }
        }
    }
}
