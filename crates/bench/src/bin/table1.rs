//! Reproduces **Table 1** (timing improvement) and the §4 runtime note.
//!
//! For each of the five MCNC-preset benchmarks, runs the sequential
//! baseline and the simultaneous flow on the same sized chip, scores both
//! with the same timing analyzer, and prints the worst-case delay and the
//! percentage improvement — the paper reports 16–28 %.
//!
//! Usage: `table1 [--fast] [--seed N] [--seeds K]`
//!
//! `--seeds K` runs each flow K times with seeds `seed..seed+K` and reports
//! the per-design mean improvement, quantifying run-to-run noise beyond the
//! paper's single-run numbers.

use rowfpga_bench::{improvement_pct, paper_suite, results_dir, run_flow, Effort, Flow};
use rowfpga_core::SizingConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let effort = if args.iter().any(|a| a == "--fast") {
        Effort::Fast
    } else {
        Effort::Full
    };
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64)
        .max(1);

    println!("Table 1 reproduction: worst-case timing, sequential vs simultaneous");
    println!("(effort: {effort:?}, seeds: {seed}..{})\n", seed + seeds);
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>14} {:>10} {:>10}",
        "Design", "#cells", "Seq T (ns)", "Sim T (ns)", "% improvement", "Seq time", "Sim time"
    );

    let mut ratios = Vec::new();
    let mut improvements = Vec::new();
    let mut csv =
        String::from("design,cells,seq_delay_ns,sim_delay_ns,improvement_pct,runtime_ratio\n");
    for problem in paper_suite(&SizingConfig::default()) {
        // Average worst-case delay over the requested seeds (paper numbers
        // are single runs; more seeds quantify the annealing noise).
        let mut seq_t = 0.0;
        let mut sim_t = 0.0;
        let mut seq_time = std::time::Duration::ZERO;
        let mut sim_time = std::time::Duration::ZERO;
        let mut seq_fail = 0usize;
        let mut sim_fail = 0usize;
        let mut seq_d = 0usize;
        let mut sim_d = 0usize;
        for s in seed..seed + seeds {
            let seq = run_flow(Flow::Sequential, &problem.arch, &problem.netlist, effort, s)
                .expect("sequential flow failed");
            let sim = run_flow(
                Flow::Simultaneous,
                &problem.arch,
                &problem.netlist,
                effort,
                s,
            )
            .expect("simultaneous flow failed");
            seq_t += seq.worst_delay;
            sim_t += sim.worst_delay;
            seq_time += seq.runtime;
            sim_time += sim.runtime;
            seq_fail += usize::from(!seq.fully_routed);
            sim_fail += usize::from(!sim.fully_routed);
            seq_d += seq.incomplete;
            sim_d += sim.incomplete;
        }
        let k = seeds as f64;
        let (seq_t, sim_t) = (seq_t / k, sim_t / k);
        let imp = improvement_pct(seq_t, sim_t);
        improvements.push(imp);
        let ratio = sim_time.as_secs_f64() / seq_time.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        csv.push_str(&format!(
            "{},{},{:.3},{:.3},{:.2},{:.3}\n",
            problem.name,
            problem.netlist.num_cells(),
            seq_t / 1000.0,
            sim_t / 1000.0,
            imp,
            ratio
        ));
        println!(
            "{:<8} {:>7} {:>12.1} {:>12.1} {:>13.1}% {:>9.2?} {:>9.2?}{}",
            problem.name,
            problem.netlist.num_cells(),
            seq_t / 1000.0,
            sim_t / 1000.0,
            imp,
            seq_time / seeds as u32,
            sim_time / seeds as u32,
            if seq_fail + sim_fail == 0 {
                "".to_owned()
            } else {
                format!(
                    "  [incomplete runs: seq {seq_fail} (D={seq_d}), sim {sim_fail} (D={sim_d})]"
                )
            }
        );
    }
    let mean_imp = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nmean improvement: {mean_imp:.1}%   (paper: 16-28%)");
    println!(
        "runtime ratio simultaneous/sequential: {mean_ratio:.1}x   (paper: ~3-4x on 1994 hardware)"
    );
    let path = results_dir().join("table1.csv");
    std::fs::write(&path, csv).expect("write table1 csv");
    println!("per-design CSV written to {}", path.display());
}
