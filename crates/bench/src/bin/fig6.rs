//! Reproduces **Figure 6** (annealing dynamics).
//!
//! Runs the simultaneous flow on one benchmark with the structured run
//! journal attached, then regenerates the figure *from the journal*: the
//! JSONL artifact (`results/fig6.jsonl` by default) is parsed back and the
//! per-temperature dynamics events become the plotted series — the
//! fraction of cells perturbed, the fraction of nets globally unrouted and
//! the fraction of nets unrouted. The expected character: vigorous
//! placement activity that falls off; global routing converging by
//! mid-run; detailed unroutability (the gap between the two net curves)
//! peaking mid-run and converging to zero — a fully routed solution.
//!
//! The run uses a deliberately tight channel width (close to the
//! simultaneous flow's Table 2 minimum) so the routability convergence the
//! figure illustrates is actually exercised; on a generous fabric all nets
//! route immediately and the net curves sit at zero.
//!
//! Usage: `fig6 [--fast] [--seed N] [--tracks T] [--vtracks V]
//!              [--journal FILE] [--csv FILE]`

use std::io::Write as _;

use rowfpga_bench::{ascii_chart, problem_for, results_dir, run_flow_observed, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;
use rowfpga_obs::{json, DynamicsRecord, Event, Obs, RunJournal};

/// The dynamics series recovered from a run journal, as fractions in
/// [0, 1] against the design's cell and net counts.
struct JournalDynamics {
    temps: Vec<f64>,
    cells_perturbed: Vec<f64>,
    nets_globally_unrouted: Vec<f64>,
    nets_unrouted: Vec<f64>,
    records: Vec<DynamicsRecord>,
}

/// Parses the JSONL journal and extracts the dynamics events.
fn dynamics_from_journal(text: &str, n_cells: usize, n_nets: usize) -> JournalDynamics {
    let docs = json::parse_lines(text).expect("journal parses as JSONL");
    let records: Vec<DynamicsRecord> = docs
        .iter()
        .filter_map(|d| match Event::from_json(d) {
            Some(Event::Dynamics(rec)) => Some(rec),
            _ => None,
        })
        .collect();
    let n_cells = n_cells.max(1) as f64;
    let n_nets = n_nets.max(1) as f64;
    JournalDynamics {
        temps: records.iter().map(|r| r.temperature).collect(),
        cells_perturbed: records
            .iter()
            .map(|r| r.cells_perturbed as f64 / n_cells)
            .collect(),
        nets_globally_unrouted: records
            .iter()
            .map(|r| r.nets_globally_unrouted as f64 / n_nets)
            .collect(),
        nets_unrouted: records
            .iter()
            .map(|r| r.nets_unrouted as f64 / n_nets)
            .collect(),
        records,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let effort = if args.iter().any(|a| a == "--fast") {
        Effort::Fast
    } else {
        Effort::Full
    };
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let journal_path = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("fig6.jsonl"));

    let tracks = args
        .iter()
        .position(|a| a == "--tracks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(22usize);
    let vtracks = args
        .iter()
        .position(|a| a == "--vtracks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2usize);
    let sizing = SizingConfig {
        verticals: rowfpga_arch::VerticalScheme::Uniform {
            tracks_per_column: vtracks,
            span: 3,
        },
        ..SizingConfig::default()
    };
    let mut problem = problem_for(PaperBenchmark::S1, &sizing);
    problem.arch = problem.arch.with_tracks(tracks).expect("positive tracks");
    println!(
        "Figure 6 reproduction: annealing dynamics of the simultaneous flow on {} ({} tracks/channel, effort: {effort:?}, seed: {seed})\n",
        problem.name, tracks
    );

    let file = std::fs::File::create(&journal_path).expect("create journal file");
    let obs = Obs::with_sink(Box::new(RunJournal::new(std::io::BufWriter::new(file))));
    let result = run_flow_observed(
        Flow::Simultaneous,
        &problem.arch,
        &problem.netlist,
        effort,
        seed,
        problem.name,
        &obs,
    )
    .expect("flow failed");
    println!("run journal written to {}", journal_path.display());

    // Regenerate the figure from the journal artifact, not the in-memory
    // trace: the plot is reproducible later from the JSONL alone.
    let text = std::fs::read_to_string(&journal_path).expect("read journal back");
    let dyns = dynamics_from_journal(
        &text,
        problem.netlist.num_cells(),
        problem.netlist.num_nets(),
    );
    assert_eq!(
        dyns.records.len(),
        result.dynamics.len(),
        "journal must carry every dynamics sample"
    );
    let series = [
        ("%cells perturbed", dyns.cells_perturbed.clone()),
        (
            "%nets globally unrouted",
            dyns.nets_globally_unrouted.clone(),
        ),
        ("%nets unrouted", dyns.nets_unrouted.clone()),
    ];
    println!("{}", ascii_chart(&series, 72, 20));
    println!(
        "final: routed={} after {} temperatures, worst path {:.1} ns, {:.2?}",
        result.fully_routed,
        result.temperatures,
        result.worst_delay / 1000.0,
        result.runtime
    );

    let mut csv = String::from(
        "index,temperature,cells_perturbed,nets_globally_unrouted,nets_unrouted,worst_delay,cost\n",
    );
    for (i, r) in dyns.records.iter().enumerate() {
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6},{:.3},{:.6}\n",
            r.index,
            dyns.temps[i],
            dyns.cells_perturbed[i],
            dyns.nets_globally_unrouted[i],
            dyns.nets_unrouted[i],
            r.worst_delay,
            r.cost
        ));
    }
    let csv_path =
        csv_path.map_or_else(|| results_dir().join("fig6.csv"), std::path::PathBuf::from);
    let mut f = std::fs::File::create(&csv_path).expect("create csv file");
    f.write_all(csv.as_bytes()).expect("write csv");
    println!("per-temperature CSV written to {}", csv_path.display());
}
