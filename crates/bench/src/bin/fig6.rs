//! Reproduces **Figure 6** (annealing dynamics).
//!
//! Runs the simultaneous flow on one benchmark and plots, per temperature:
//! the fraction of cells perturbed, the fraction of nets globally unrouted
//! and the fraction of nets unrouted. The expected character: vigorous
//! placement activity that falls off; global routing converging by
//! mid-run; detailed unroutability (the gap between the two net curves)
//! peaking mid-run and converging to zero — a fully routed solution.
//!
//! The run uses a deliberately tight channel width (close to the
//! simultaneous flow's Table 2 minimum) so the routability convergence the
//! figure illustrates is actually exercised; on a generous fabric all nets
//! route immediately and the net curves sit at zero.
//!
//! Usage: `fig6 [--fast] [--seed N] [--tracks T] [--vtracks V] [--csv FILE]`

use std::io::Write as _;

use rowfpga_bench::{ascii_chart, problem_for, run_flow, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let effort = if args.iter().any(|a| a == "--fast") {
        Effort::Fast
    } else {
        Effort::Full
    };
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let tracks = args
        .iter()
        .position(|a| a == "--tracks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(22usize);
    let vtracks = args
        .iter()
        .position(|a| a == "--vtracks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2usize);
    let sizing = SizingConfig {
        verticals: rowfpga_arch::VerticalScheme::Uniform {
            tracks_per_column: vtracks,
            span: 3,
        },
        ..SizingConfig::default()
    };
    let mut problem = problem_for(PaperBenchmark::S1, &sizing);
    problem.arch = problem.arch.with_tracks(tracks).expect("positive tracks");
    println!(
        "Figure 6 reproduction: annealing dynamics of the simultaneous flow on {} ({} tracks/channel, effort: {effort:?}, seed: {seed})\n",
        problem.name, tracks
    );
    let result = run_flow(
        Flow::Simultaneous,
        &problem.arch,
        &problem.netlist,
        effort,
        seed,
    )
    .expect("flow failed");

    let samples = result.dynamics.samples();
    let series = [
        (
            "%cells perturbed",
            samples.iter().map(|s| s.cells_perturbed).collect::<Vec<_>>(),
        ),
        (
            "%nets globally unrouted",
            samples
                .iter()
                .map(|s| s.nets_globally_unrouted)
                .collect::<Vec<_>>(),
        ),
        (
            "%nets unrouted",
            samples.iter().map(|s| s.nets_unrouted).collect::<Vec<_>>(),
        ),
    ];
    println!("{}", ascii_chart(&series, 72, 20));
    println!(
        "final: routed={} after {} temperatures, worst path {:.1} ns, {:.2?}",
        result.fully_routed,
        result.temperatures,
        result.worst_delay / 1000.0,
        result.runtime
    );

    let csv = result.dynamics.to_csv();
    if let Some(path) = csv_path {
        let mut f = std::fs::File::create(&path).expect("create csv file");
        f.write_all(csv.as_bytes()).expect("write csv");
        println!("per-temperature CSV written to {path}");
    } else {
        println!("\nper-temperature CSV (pass --csv FILE to save):\n{csv}");
    }
}
