//! End-to-end layout benchmark: full simultaneous place-and-route runs
//! (anneal → cleanup → final repair → STA) on MCNC-sized presets and the
//! mid-size synthetic design, at 1 and 2 annealing replicas, recording
//! wall clock and layout quality side by side.
//!
//! Emits `results/BENCH_e2e.json`. The interesting comparisons inside it:
//!
//! * wall clock across rows of the same design — the cost of running a
//!   second replica (bounded by ~1× when the two threads truly overlap);
//! * `worst_delay_ps` across the same rows — what the second replica and
//!   the exchange of best layouts buy in quality.
//!
//! Usage: `e2e [--quick] [--seed N] [--threads auto|N] [--out PATH]
//!              [--check PATH]`
//!
//! `--quick` switches to the smoke-effort annealing profile and drops the
//! largest design, for CI-speed runs.
//!
//! `--threads auto` (the default) benchmarks 1 replica, plus 2 replicas
//! only when the host actually has a second core — on a single-core host
//! a 2-replica row just measures time-slicing overhead and then trips the
//! throughput gate for no real regression. An explicit `--threads N`
//! benchmarks exactly that replica count.
//!
//! `--check PATH` reads a previously committed JSON at PATH *before*
//! overwriting anything and exits non-zero if, for any (design, threads)
//! pair present in both, the fresh run's move throughput
//! (`total_moves / wall_sec`) regressed by more than 20 %, or a design
//! that was fully routed no longer is. Rows are only compared when the
//! annealing profiles match (`--quick` vs full), so pointing the quick
//! smoke at a full-run artifact skips the gate instead of flagging noise.

use std::time::Instant;

use rowfpga_core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga_netlist::{generate, paper_preset, GenerateConfig, Netlist, PaperBenchmark};
use rowfpga_obs::json::{parse, Json};
use rowfpga_obs::Obs;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Same mid-size synthetic design as the move-throughput benchmark.
fn midsize() -> Netlist {
    generate(&GenerateConfig {
        num_cells: 300,
        num_inputs: 12,
        num_outputs: 12,
        num_seq: 10,
        seed: 42,
        ..GenerateConfig::default()
    })
}

struct Row {
    design: &'static str,
    cells: usize,
    nets: usize,
    threads: usize,
    wall_sec: f64,
    worst_delay_ps: f64,
    fully_routed: bool,
    incomplete: usize,
    temperatures: usize,
    total_moves: usize,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("design", Json::Str(self.design.into())),
            ("cells", Json::Num(self.cells as f64)),
            ("nets", Json::Num(self.nets as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("wall_sec", Json::Num(self.wall_sec)),
            ("worst_delay_ps", Json::Num(self.worst_delay_ps)),
            ("fully_routed", Json::Bool(self.fully_routed)),
            ("incomplete", Json::Num(self.incomplete as f64)),
            ("temperatures", Json::Num(self.temperatures as f64)),
            ("total_moves", Json::Num(self.total_moves as f64)),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_e2e.json".into());
    let baseline = arg_value(&args, "--check").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("--check {path}: {e}"));
        parse(&text).unwrap_or_else(|e| panic!("--check {path}: {e}"))
    });

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // `auto` skips the 2-replica rows on a single-core host, where they
    // would only measure time-slicing overhead (and then fail the
    // throughput gate against a multi-core baseline).
    let thread_counts: Vec<usize> = match arg_value(&args, "--threads").as_deref() {
        None | Some("auto") => {
            if host_cores >= 2 {
                vec![1, 2]
            } else {
                vec![1]
            }
        }
        Some(n) => vec![n.parse().unwrap_or_else(|_| {
            eprintln!("e2e: --threads {n}: expected a count or `auto`");
            std::process::exit(2);
        })],
    };

    let mut designs: Vec<(&'static str, Netlist)> = vec![
        ("cse", generate(&paper_preset(PaperBenchmark::Cse))),
        ("s1", generate(&paper_preset(PaperBenchmark::S1))),
    ];
    if !quick {
        designs.push(("midsize300", midsize()));
    }

    let mut rows: Vec<Row> = Vec::new();
    for (name, nl) in &designs {
        let arch = size_architecture(nl, &SizingConfig::default()).expect("preset fits sized chip");
        for &threads in &thread_counts {
            let base = if quick {
                SimPrConfig::fast()
            } else {
                SimPrConfig::default()
            };
            let mut cfg = base.with_seed(seed);
            cfg.threads = threads;
            let tool = SimultaneousPlaceRoute::new(cfg);
            let start = Instant::now();
            let result = tool
                .run_parallel(&arch, nl, name, &Obs::disabled())
                .expect("benchmark design lays out");
            let wall = start.elapsed().as_secs_f64();
            println!(
                "{name:>10} threads={threads}  {wall:7.2}s  worst {:9.1} ps  routed={} \
                 ({} temps, {} moves)",
                result.worst_delay, result.fully_routed, result.temperatures, result.total_moves,
            );
            rows.push(Row {
                design: name,
                cells: nl.num_cells(),
                nets: nl.num_nets(),
                threads,
                wall_sec: wall,
                worst_delay_ps: result.worst_delay,
                fully_routed: result.fully_routed,
                incomplete: result.incomplete,
                temperatures: result.temperatures,
                total_moves: result.total_moves,
            });
        }
    }

    // Readers need host_cores to interpret the wall clocks: on a
    // single-core host, replicas time-slice and parallel rows measure
    // overhead plus the doubled move budget, not speedup.
    let json = Json::obj(vec![
        ("schema", Json::Str("bench.e2e/v1".into())),
        (
            "profile",
            Json::Str(if quick { "fast" } else { "default" }.into()),
        ),
        ("host_cores", Json::Num(host_cores as f64)),
        ("seed", Json::Num(seed as f64)),
        ("runs", Json::Arr(rows.iter().map(Row::to_json).collect())),
    ]);
    std::fs::write(&out, json.to_string_pretty() + "\n").expect("write JSON artifact");
    println!("wrote {out}");

    if let Some(base) = baseline {
        let profile = if quick { "fast" } else { "default" };
        let base_profile = base.get("profile").and_then(Json::as_str).unwrap_or("?");
        if base_profile != profile {
            println!(
                "e2e gate skipped: committed profile '{base_profile}' does not match \
                 this run's '{profile}'"
            );
            return;
        }
        let empty: Vec<Json> = Vec::new();
        let base_runs = base.get("runs").and_then(Json::as_arr).unwrap_or(&empty);
        let mut failed = false;
        for row in &rows {
            let Some(b) = base_runs.iter().find(|r| {
                r.get("design").and_then(Json::as_str) == Some(row.design)
                    && r.get("threads").and_then(Json::as_u64) == Some(row.threads as u64)
            }) else {
                continue;
            };
            let committed = match (
                b.get("total_moves").and_then(Json::as_f64),
                b.get("wall_sec").and_then(Json::as_f64),
            ) {
                (Some(moves), Some(wall)) if wall > 0.0 => moves / wall,
                _ => continue,
            };
            let fresh = row.total_moves as f64 / row.wall_sec;
            let floor = committed * 0.8;
            let tag = format!("{} threads={}", row.design, row.threads);
            if fresh < floor {
                eprintln!(
                    "FAIL: e2e {tag}: {fresh:.0} moves/sec regressed >20% vs committed \
                     {committed:.0} (floor {floor:.0})"
                );
                failed = true;
            } else {
                println!(
                    "e2e gate OK: {tag}: {fresh:.0} moves/sec vs committed {committed:.0} \
                     (floor {floor:.0})"
                );
            }
            if b.get("fully_routed").and_then(Json::as_bool) == Some(true) && !row.fully_routed {
                eprintln!("FAIL: e2e {tag}: design no longer fully routed");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
