//! End-to-end layout benchmark: full simultaneous place-and-route runs
//! (anneal → cleanup → final repair → STA) on MCNC-sized presets and the
//! mid-size synthetic design, at 1 and 2 annealing replicas, recording
//! wall clock and layout quality side by side.
//!
//! Emits `results/BENCH_e2e.json`. The interesting comparisons inside it:
//!
//! * wall clock across rows of the same design — the cost of running a
//!   second replica (bounded by ~1× when the two threads truly overlap);
//! * `worst_delay_ps` across the same rows — what the second replica and
//!   the exchange of best layouts buy in quality.
//!
//! Usage: `e2e [--quick] [--seed N] [--out PATH]`
//!
//! `--quick` switches to the smoke-effort annealing profile and drops the
//! largest design, for CI-speed runs.

use std::time::Instant;

use rowfpga_core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga_netlist::{generate, paper_preset, GenerateConfig, Netlist, PaperBenchmark};
use rowfpga_obs::json::Json;
use rowfpga_obs::Obs;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Same mid-size synthetic design as the move-throughput benchmark.
fn midsize() -> Netlist {
    generate(&GenerateConfig {
        num_cells: 300,
        num_inputs: 12,
        num_outputs: 12,
        num_seq: 10,
        seed: 42,
        ..GenerateConfig::default()
    })
}

struct Row {
    design: &'static str,
    cells: usize,
    nets: usize,
    threads: usize,
    wall_sec: f64,
    worst_delay_ps: f64,
    fully_routed: bool,
    incomplete: usize,
    temperatures: usize,
    total_moves: usize,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("design", Json::Str(self.design.into())),
            ("cells", Json::Num(self.cells as f64)),
            ("nets", Json::Num(self.nets as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("wall_sec", Json::Num(self.wall_sec)),
            ("worst_delay_ps", Json::Num(self.worst_delay_ps)),
            ("fully_routed", Json::Bool(self.fully_routed)),
            ("incomplete", Json::Num(self.incomplete as f64)),
            ("temperatures", Json::Num(self.temperatures as f64)),
            ("total_moves", Json::Num(self.total_moves as f64)),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_e2e.json".into());

    let mut designs: Vec<(&'static str, Netlist)> = vec![
        ("cse", generate(&paper_preset(PaperBenchmark::Cse))),
        ("s1", generate(&paper_preset(PaperBenchmark::S1))),
    ];
    if !quick {
        designs.push(("midsize300", midsize()));
    }

    let mut rows: Vec<Row> = Vec::new();
    for (name, nl) in &designs {
        let arch = size_architecture(nl, &SizingConfig::default()).expect("preset fits sized chip");
        for threads in [1usize, 2] {
            let base = if quick {
                SimPrConfig::fast()
            } else {
                SimPrConfig::default()
            };
            let mut cfg = base.with_seed(seed);
            cfg.threads = threads;
            let tool = SimultaneousPlaceRoute::new(cfg);
            let start = Instant::now();
            let result = tool
                .run_parallel(&arch, nl, name, &Obs::disabled())
                .expect("benchmark design lays out");
            let wall = start.elapsed().as_secs_f64();
            println!(
                "{name:>10} threads={threads}  {wall:7.2}s  worst {:9.1} ps  routed={} \
                 ({} temps, {} moves)",
                result.worst_delay, result.fully_routed, result.temperatures, result.total_moves,
            );
            rows.push(Row {
                design: name,
                cells: nl.num_cells(),
                nets: nl.num_nets(),
                threads,
                wall_sec: wall,
                worst_delay_ps: result.worst_delay,
                fully_routed: result.fully_routed,
                incomplete: result.incomplete,
                temperatures: result.temperatures,
                total_moves: result.total_moves,
            });
        }
    }

    // Readers need this to interpret the wall clocks: on a single-core
    // host, two replicas time-slice and the parallel rows measure overhead
    // plus the doubled move budget, not speedup.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = Json::obj(vec![
        ("schema", Json::Str("bench.e2e/v1".into())),
        (
            "profile",
            Json::Str(if quick { "fast" } else { "default" }.into()),
        ),
        ("host_cores", Json::Num(host_cores as f64)),
        ("seed", Json::Num(seed as f64)),
        ("runs", Json::Arr(rows.iter().map(Row::to_json).collect())),
    ]);
    std::fs::write(&out, json.to_string_pretty() + "\n").expect("write JSON artifact");
    println!("wrote {out}");
}
