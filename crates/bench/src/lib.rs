//! Experiment harness reproducing the paper's evaluation (§4).
//!
//! The binaries in `src/bin` regenerate each table and figure:
//!
//! * `table1` — worst-case timing, simultaneous vs. sequential, on the five
//!   MCNC-preset benchmarks (paper Table 1), plus the runtime ratio noted
//!   in §4;
//! * `table2` — minimum tracks/channel for 100 % wirability (paper
//!   Table 2);
//! * `fig6` — annealing dynamics trace (paper Figure 6) as CSV and an
//!   ASCII rendering;
//! * `fig7` — the 529-cell design routed to 100 % (paper Figure 7);
//! * `ablation` — design-choice ablations beyond the paper: pinmap moves
//!   on/off, timing term on/off, router cost variants.
//!
//! The library half holds the shared machinery: the benchmark suite, the
//! track-minimization search and report formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rowfpga_arch::Architecture;
use rowfpga_baseline::{SeqPrConfig, SequentialPlaceRoute};
use rowfpga_core::{
    size_architecture, LayoutError, LayoutResult, SimPrConfig, SimultaneousPlaceRoute, SizingConfig,
};
use rowfpga_netlist::{generate, paper_preset, Netlist, PaperBenchmark};
use rowfpga_obs::Obs;

/// One benchmark instance: the synthetic netlist and a chip sized for it.
#[derive(Debug)]
pub struct BenchProblem {
    /// The paper's name for the design.
    pub name: &'static str,
    /// The benchmark preset.
    pub benchmark: PaperBenchmark,
    /// The technology-mapped netlist.
    pub netlist: Netlist,
    /// The sized fabric.
    pub arch: Architecture,
}

/// Builds the five Table 1/2 benchmarks (s1, cse, ex1, bw, s1a) with chips
/// sized per [`SizingConfig`].
pub fn paper_suite(sizing: &SizingConfig) -> Vec<BenchProblem> {
    [
        PaperBenchmark::S1,
        PaperBenchmark::Cse,
        PaperBenchmark::Ex1,
        PaperBenchmark::Bw,
        PaperBenchmark::S1a,
    ]
    .into_iter()
    .map(|b| problem_for(b, sizing))
    .collect()
}

/// Builds one benchmark instance.
pub fn problem_for(benchmark: PaperBenchmark, sizing: &SizingConfig) -> BenchProblem {
    let netlist = generate(&paper_preset(benchmark));
    let arch = size_architecture(&netlist, sizing).expect("sizing never fails for presets");
    BenchProblem {
        name: benchmark.name(),
        benchmark,
        netlist,
        arch,
    }
}

/// Which flow to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// The paper's simultaneous place and route.
    Simultaneous,
    /// The traditional sequential baseline.
    Sequential,
}

/// Effort level for experiment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Quick smoke-quality runs (CI, debugging).
    Fast,
    /// Full-quality runs used for the reported numbers.
    Full,
}

/// Runs one flow on one problem with the given seed.
///
/// # Errors
///
/// Propagates [`LayoutError`] from the flow.
pub fn run_flow(
    flow: Flow,
    arch: &Architecture,
    netlist: &Netlist,
    effort: Effort,
    seed: u64,
) -> Result<LayoutResult, LayoutError> {
    run_flow_observed(
        flow,
        arch,
        netlist,
        effort,
        seed,
        "design",
        &Obs::disabled(),
    )
}

/// [`run_flow`] with an observability handle (journal sink, metrics,
/// phase spans) threaded through to the underlying flow driver.
///
/// # Errors
///
/// Propagates [`LayoutError`] from the flow.
pub fn run_flow_observed(
    flow: Flow,
    arch: &Architecture,
    netlist: &Netlist,
    effort: Effort,
    seed: u64,
    label: &str,
    obs: &Obs,
) -> Result<LayoutResult, LayoutError> {
    match flow {
        Flow::Simultaneous => {
            let base = match effort {
                Effort::Fast => SimPrConfig::fast(),
                Effort::Full => SimPrConfig::default(),
            };
            SimultaneousPlaceRoute::new(base.with_seed(seed))
                .run_observed(arch, netlist, label, obs)
        }
        Flow::Sequential => {
            let base = match effort {
                Effort::Fast => SeqPrConfig::fast(),
                Effort::Full => SeqPrConfig::default(),
            };
            SequentialPlaceRoute::new(base.with_seed(seed)).run_observed(arch, netlist, label, obs)
        }
    }
}

/// Ensures the shared experiment artifact directory (`results/` under the
/// current working directory) exists and returns its path. Every bench
/// binary writes its CSV/JSONL/plot artifacts here.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results/ directory");
    dir
}

/// Finds the minimum tracks/channel at which `flow` still achieves 100 %
/// wirability, scanning downward from `start_tracks` exactly as the paper
/// describes ("the number of tracks per channel … was reduced … to the
/// point that \[the] tool failed to meet 100 % wirability").
///
/// Returns `None` if the flow cannot route even at `start_tracks`.
pub fn min_tracks(
    flow: Flow,
    problem: &BenchProblem,
    effort: Effort,
    seed: u64,
    start_tracks: usize,
) -> Option<usize> {
    let mut best = None;
    let mut tracks = start_tracks;
    loop {
        let arch = problem
            .arch
            .with_tracks(tracks)
            .expect("positive track count");
        let result = run_flow(flow, &arch, &problem.netlist, effort, seed)
            .expect("flow errors only on unfit designs");
        if result.fully_routed {
            best = Some(tracks);
            if tracks == 1 {
                return best;
            }
            tracks -= 1;
        } else {
            return best;
        }
    }
}

/// Percentage improvement of `new` over `old` (positive = `new` better,
/// i.e. smaller).
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        0.0
    } else {
        100.0 * (old - new) / old
    }
}

/// Renders a simple ASCII line chart of `series` (label, values in [0, 1])
/// over a shared x axis — used by the Figure 6 binary.
pub fn ascii_chart(series: &[(&str, Vec<f64>)], width: usize, height: usize) -> String {
    let mut canvas = vec![vec![' '; width]; height];
    let n = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    if n == 0 {
        return String::new();
    }
    for (si, (_, values)) in series.iter().enumerate() {
        let glyph = [b'*', b'o', b'+', b'x', b'#'][si % 5] as char;
        for (i, v) in values.iter().enumerate() {
            let x = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
            let clamped = v.clamp(0.0, 1.0);
            let y = ((1.0 - clamped) * (height - 1) as f64).round() as usize;
            canvas[y.min(height - 1)][x.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            "100% |"
        } else if i == height - 1 {
            "  0% |"
        } else {
            "     |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("      ");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let mut legend = String::from("      ");
    for (si, (name, _)) in series.iter().enumerate() {
        let glyph = [b'*', b'o', b'+', b'x', b'#'][si % 5] as char;
        legend.push_str(&format!("{glyph} {name}   "));
    }
    out.push_str(&legend);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_five_designs() {
        let suite = paper_suite(&SizingConfig::default());
        let names: Vec<&str> = suite.iter().map(|p| p.name).collect();
        assert_eq!(names, ["s1", "cse", "ex1", "bw", "s1a"]);
        for p in &suite {
            assert_eq!(p.netlist.num_cells(), p.benchmark.num_cells());
        }
    }

    #[test]
    fn improvement_pct_signs() {
        assert_eq!(improvement_pct(100.0, 80.0), 20.0);
        assert_eq!(improvement_pct(100.0, 120.0), -20.0);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn ascii_chart_is_well_formed() {
        let chart = ascii_chart(
            &[("a", vec![1.0, 0.5, 0.0]), ("b", vec![0.0, 0.5, 1.0])],
            30,
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(lines[0].starts_with("100% |"));
        assert!(chart.contains("* a"));
        assert!(chart.contains("o b"));
    }

    #[test]
    fn fast_flows_run_on_a_small_problem() {
        let problem = problem_for(PaperBenchmark::Cse, &SizingConfig::default());
        for flow in [Flow::Simultaneous, Flow::Sequential] {
            let r = run_flow(flow, &problem.arch, &problem.netlist, Effort::Fast, 1).unwrap();
            assert!(r.worst_delay > 0.0);
        }
    }
}
