//! Criterion benchmark of observability overhead: the simultaneous flow at
//! smoke effort with the disabled handle (the default every caller gets),
//! metrics-only, and a full JSONL journal. The disabled handle must show no
//! measurable slowdown against the un-instrumented baseline it replaced;
//! the journal bounds the cost of full observability. A second group
//! isolates the span API itself: a disabled handle's `span_start`/
//! `span_end` pair must cost the same as no call at all.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rowfpga_bench::{problem_for, run_flow_observed, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;
use rowfpga_obs::{Obs, RunJournal};

fn bench_obs_overhead(c: &mut Criterion) {
    let problem = problem_for(PaperBenchmark::S1, &SizingConfig::default());
    let run = |obs: &Obs| {
        run_flow_observed(
            Flow::Simultaneous,
            &problem.arch,
            &problem.netlist,
            Effort::Fast,
            1,
            "s1",
            obs,
        )
        .unwrap()
    };
    let mut group = c.benchmark_group("obs_overhead_s1_fast");
    group.sample_size(10);
    group.bench_function("disabled", |b| b.iter(|| run(&Obs::disabled())));
    group.bench_function("metrics_only", |b| b.iter(|| run(&Obs::metrics_only())));
    group.bench_function("journal_to_sink", |b| {
        b.iter(|| {
            // Journal into an in-memory buffer: measures event construction
            // and serialization without disk noise.
            let obs = Obs::with_sink(Box::new(RunJournal::new(Vec::new())));
            run(&obs)
        })
    });
    group.finish();
}

/// Proves the PR 1 zero-cost contract extends to causal spans: with a
/// disabled handle, a tight loop wrapped in `span_start`/`span_end` (and
/// a counter bump, the common instrumentation shape) must clock the same
/// as the bare loop.
fn bench_disabled_span_overhead(c: &mut Criterion) {
    const ITERS: u64 = 10_000;
    let work = |seed: u64| {
        // Cheap but not optimizable-away: mixes the counter like the
        // annealer's LCG step.
        let mut x = seed;
        for i in 0..ITERS {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(black_box(i));
        }
        black_box(x)
    };
    let mut group = c.benchmark_group("obs_disabled_span");
    group.bench_function("bare_loop", |b| b.iter(|| work(black_box(7))));
    group.bench_function("disabled_spans", |b| {
        let obs = Obs::disabled();
        b.iter(|| {
            obs.span_start("bench.loop");
            let x = work(black_box(7));
            obs.inc("bench.iters");
            obs.span_end("bench.loop");
            x
        })
    });
    group.bench_function("disabled_span_closure", |b| {
        let obs = Obs::disabled();
        b.iter(|| obs.span("bench.loop", || work(black_box(7))))
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead, bench_disabled_span_overhead);
criterion_main!(benches);
