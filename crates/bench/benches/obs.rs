//! Criterion benchmark of observability overhead: the simultaneous flow at
//! smoke effort with the disabled handle (the default every caller gets),
//! metrics-only, and a full JSONL journal. The disabled handle must show no
//! measurable slowdown against the un-instrumented baseline it replaced;
//! the journal bounds the cost of full observability.

use criterion::{criterion_group, criterion_main, Criterion};

use rowfpga_bench::{problem_for, run_flow_observed, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;
use rowfpga_obs::{Obs, RunJournal};

fn bench_obs_overhead(c: &mut Criterion) {
    let problem = problem_for(PaperBenchmark::S1, &SizingConfig::default());
    let run = |obs: &Obs| {
        run_flow_observed(
            Flow::Simultaneous,
            &problem.arch,
            &problem.netlist,
            Effort::Fast,
            1,
            "s1",
            obs,
        )
        .unwrap()
    };
    let mut group = c.benchmark_group("obs_overhead_s1_fast");
    group.sample_size(10);
    group.bench_function("disabled", |b| b.iter(|| run(&Obs::disabled())));
    group.bench_function("metrics_only", |b| b.iter(|| run(&Obs::metrics_only())));
    group.bench_function("journal_to_sink", |b| {
        b.iter(|| {
            // Journal into an in-memory buffer: measures event construction
            // and serialization without disk noise.
            let obs = Obs::with_sink(Box::new(RunJournal::new(Vec::new())));
            run(&obs)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
