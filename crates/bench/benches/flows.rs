//! Criterion benchmarks of the two end-to-end flows at smoke effort,
//! measuring the runtime relationship the paper reports in §4 (the
//! simultaneous flow pays a constant-factor slowdown for routing in the
//! loop).

use criterion::{criterion_group, criterion_main, Criterion};

use rowfpga_bench::{problem_for, run_flow, Effort, Flow};
use rowfpga_core::SizingConfig;
use rowfpga_netlist::PaperBenchmark;

fn bench_flows(c: &mut Criterion) {
    let problem = problem_for(PaperBenchmark::Cse, &SizingConfig::default());
    let mut group = c.benchmark_group("flows_cse_fast");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            run_flow(
                Flow::Sequential,
                &problem.arch,
                &problem.netlist,
                Effort::Fast,
                1,
            )
            .unwrap()
        })
    });
    group.bench_function("simultaneous", |b| {
        b.iter(|| {
            run_flow(
                Flow::Simultaneous,
                &problem.arch,
                &problem.netlist,
                Effort::Fast,
                1,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
