//! Criterion micro-benchmarks of the incremental machinery the paper's
//! feasibility argument rests on (§3.1): the per-move rip-up/reroute
//! cascade and the incremental timing update must be cheap enough to sit
//! inside an annealing inner loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use rowfpga_anneal::AnnealProblem;
use rowfpga_core::{size_architecture, CostConfig, LayoutProblem, SizingConfig};
use rowfpga_netlist::{generate, paper_preset, PaperBenchmark};
use rowfpga_place::MoveWeights;
use rowfpga_route::RouterConfig;

fn bench_move_cascade(c: &mut Criterion) {
    let netlist = generate(&paper_preset(PaperBenchmark::Cse));
    let arch = size_architecture(&netlist, &SizingConfig::default()).unwrap();
    let mut problem = LayoutProblem::new(
        &arch,
        &netlist,
        RouterConfig::default(),
        CostConfig::default(),
        MoveWeights::default(),
        7,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(1);

    c.bench_function("move_cascade_accept", |b| {
        b.iter(|| {
            let (applied, _) = problem.propose_and_apply(&mut rng);
            problem.commit(applied);
        })
    });

    c.bench_function("move_cascade_reject", |b| {
        b.iter(|| {
            let (applied, _) = problem.propose_and_apply(&mut rng);
            problem.undo(applied);
        })
    });
}

fn bench_initial_route(c: &mut Criterion) {
    let netlist = generate(&paper_preset(PaperBenchmark::Cse));
    let arch = size_architecture(&netlist, &SizingConfig::default()).unwrap();
    let placement = rowfpga_place::Placement::random(&arch, &netlist, 3).unwrap();
    c.bench_function("batch_route_cse", |b| {
        b.iter_batched(
            || rowfpga_route::RoutingState::new(&arch, &netlist),
            |mut st| {
                rowfpga_route::route_batch(
                    &mut st,
                    &arch,
                    &netlist,
                    &placement,
                    &RouterConfig::default(),
                    4,
                );
                st
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_sta(c: &mut Criterion) {
    let netlist = generate(&paper_preset(PaperBenchmark::Cse));
    let arch = size_architecture(&netlist, &SizingConfig::default()).unwrap();
    let placement = rowfpga_place::Placement::random(&arch, &netlist, 3).unwrap();
    let mut st = rowfpga_route::RoutingState::new(&arch, &netlist);
    rowfpga_route::route_batch(
        &mut st,
        &arch,
        &netlist,
        &placement,
        &RouterConfig::default(),
        4,
    );
    c.bench_function("full_sta_cse", |b| {
        b.iter(|| rowfpga_timing::Sta::analyze(&arch, &netlist, &placement, &st).unwrap())
    });
}

criterion_group!(benches, bench_move_cascade, bench_initial_route, bench_sta);
criterion_main!(benches);
