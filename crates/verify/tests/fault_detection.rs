//! Planted-fault detection: the fuzzing harness must catch 100% of the
//! corruption kinds the engine's `fault-inject` hooks can introduce, and
//! every script-carrying failure must shrink to at most a quarter of the
//! original move sequence.
//!
//! This is the harness's own end-to-end proof: a fuzzer that cannot catch
//! planted bugs cannot be trusted to catch real ones.

#![cfg(feature = "fault-inject")]

use rowfpga_verify::harness::{run_fuzz_with_faults, FuzzConfig};
use rowfpga_verify::{check_script, random_case, replay_repro, CaseConfig, Repro, ScriptOp};

fn fault_config(corpus: Option<std::path::PathBuf>) -> FuzzConfig {
    FuzzConfig {
        seed: 0xfau64 << 8,
        corpus,
        cells: CaseConfig {
            min_cells: 20,
            max_cells: 80,
        },
        ..FuzzConfig::default()
    }
}

#[test]
fn every_injected_fault_is_detected_and_shrinks() {
    let report = run_fuzz_with_faults(&fault_config(None), |_| {});
    // All five state-corruption kinds plus both checkpoint crash windows.
    assert_eq!(report.trials.len(), 7);
    for trial in &report.trials {
        assert!(
            trial.detected,
            "planted fault escaped the oracles: {} ({})",
            trial.fault, trial.failure
        );
    }
    for trial in report.trials.iter().filter(|t| t.original_len > 0) {
        assert!(
            trial.shrink_ratio() <= 0.25,
            "{}: shrunk {} of {} ops ({:.0}%), above the 25% bound",
            trial.fault,
            trial.shrunk_len,
            trial.original_len,
            100.0 * trial.shrink_ratio()
        );
    }
    assert!(report.all_detected());
    assert!(report.worst_shrink_ratio() <= 0.25);
}

#[test]
fn shrunk_fault_repros_replay_from_disk() {
    let dir = std::env::temp_dir().join(format!("rowfpga-fault-repro-{}", std::process::id()));
    let report = run_fuzz_with_faults(&fault_config(Some(dir.clone())), |_| {});
    // Each state-fault trial wrote a shrunk repro pair; loading and
    // replaying any of them must reproduce a failure.
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let reproduced =
                replay_repro(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(
                reproduced.is_some(),
                "{}: repro no longer fails",
                path.display()
            );
            replayed += 1;
        }
    }
    assert_eq!(
        replayed,
        report.trials.iter().filter(|t| t.original_len > 0).count(),
        "one repro pair per script-carrying trial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_fault_only_script_still_fails_and_a_clean_one_does_not() {
    // The 1-minimal end state of shrinking: the fault op alone must still
    // trip the oracles, and the same script without it must not.
    use rowfpga_core::InjectedFault;
    let case = random_case(
        21,
        &CaseConfig {
            min_cells: 20,
            max_cells: 60,
        },
    );
    let fault_only = [ScriptOp::Fault(InjectedFault::TimingWorst {
        delta_ps: 200.0,
    })];
    assert!(check_script(&case.arch, &case.netlist, 21, &fault_only).is_some());
    assert!(check_script(&case.arch, &case.netlist, 21, &[]).is_none());
}

#[test]
fn repros_with_fault_ops_round_trip_through_json() {
    use rowfpga_core::InjectedFault;
    let case = random_case(
        5,
        &CaseConfig {
            min_cells: 20,
            max_cells: 40,
        },
    );
    let script = rowfpga_verify::MoveScript {
        ops: vec![
            ScriptOp::Exchange {
                a: 1,
                b: 2,
                accept: true,
            },
            ScriptOp::Fault(InjectedFault::RouteOwner { nth: 3 }),
            ScriptOp::Fault(InjectedFault::TimingArrival {
                cell: 4,
                delta_ps: 62.5,
            }),
            ScriptOp::Fault(InjectedFault::CheckpointShortWrite),
        ],
    };
    let repro = Repro {
        arch: case.params.clone(),
        netlist_file: "f.net".into(),
        placement_seed: 5,
        script: script.clone(),
        failure: "planted".into(),
        original_len: 4,
    };
    let back = Repro::from_json(&repro.to_json()).unwrap();
    assert_eq!(back.script, script);
    assert_eq!(back, repro);
}
