//! Delta-debugging reduction of failing move scripts.
//!
//! Classic ddmin over the operation list: because every [`ScriptOp`]
//! subsequence replays legally (see [`crate::script`]), the shrinker can
//! drop arbitrary chunks and re-run the failure predicate, converging on a
//! 1-minimal script — removing any single remaining op makes the failure
//! disappear.

use crate::script::ScriptOp;

/// Reduces `ops` to a 1-minimal subsequence still satisfying `fails`.
///
/// `fails` must be deterministic and must hold for `ops` itself (if it does
/// not, the input is returned unchanged). The returned script always
/// satisfies `fails`.
pub fn ddmin<F>(ops: &[ScriptOp], mut fails: F) -> Vec<ScriptOp>
where
    F: FnMut(&[ScriptOp]) -> bool,
{
    if !fails(ops) {
        return ops.to_vec();
    }
    let mut current: Vec<ScriptOp> = ops.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        // Try each complement (drop one chunk at a time).
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<ScriptOp> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if !complement.is_empty() && fails(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }
        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }
    // Final polish: greedy single-op removal until 1-minimal.
    let mut i = 0;
    while current.len() > 1 && i < current.len() {
        let mut candidate = current.clone();
        candidate.remove(i);
        if fails(&candidate) {
            current = candidate;
        } else {
            i += 1;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(a: usize) -> ScriptOp {
        ScriptOp::Exchange {
            a,
            b: a + 1,
            accept: true,
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let ops: Vec<ScriptOp> = (0..128).map(exchange).collect();
        // "Fails" iff op with a == 77 is present.
        let result = ddmin(&ops, |s| {
            s.iter()
                .any(|op| matches!(op, ScriptOp::Exchange { a: 77, .. }))
        });
        assert_eq!(result, vec![exchange(77)]);
    }

    #[test]
    fn shrinks_interacting_pairs() {
        let ops: Vec<ScriptOp> = (0..64).map(exchange).collect();
        // Fails iff ops 3 and 40 are both present, in order.
        let result = ddmin(&ops, |s| {
            let has = |k: usize| {
                s.iter()
                    .any(|op| matches!(op, ScriptOp::Exchange { a, .. } if *a == k))
            };
            has(3) && has(40)
        });
        assert_eq!(result, vec![exchange(3), exchange(40)]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let ops: Vec<ScriptOp> = (0..8).map(exchange).collect();
        assert_eq!(ddmin(&ops, |_| false), ops);
    }

    #[test]
    fn preserves_op_order() {
        let ops: Vec<ScriptOp> = (0..32).map(exchange).collect();
        let result = ddmin(&ops, |s| {
            let pos = |k: usize| {
                s.iter()
                    .position(|op| matches!(op, ScriptOp::Exchange { a, .. } if *a == k))
            };
            matches!((pos(5), pos(20)), (Some(i), Some(j)) if i < j)
        });
        assert_eq!(result, vec![exchange(5), exchange(20)]);
    }
}
