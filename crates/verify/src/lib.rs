//! Differential fuzzing and invariant oracles for the simultaneous
//! place-and-route engine.
//!
//! The engine's entire speedup over re-running placement and routing from
//! scratch rests on incremental state staying equivalent to full
//! re-evaluation (paper §3.3–3.5). This crate attacks that claim head-on:
//!
//! * [`gen`] draws random row-based architectures (row counts, channel
//!   widths, segmentation profiles) and random netlists from a seed;
//! * [`invariants`] is a library of structural checks — segment-ownership
//!   exclusivity, segmentation legality, pinmap/site consistency,
//!   feedthrough conservation, Elmore-delay sanity — callable from any
//!   test;
//! * [`script`] records replayable move sequences whose every subsequence
//!   stays legal, the property that makes shrinking possible;
//! * [`oracle`] compares the incremental engine against from-scratch
//!   rebuilds: occupancy vs routes, incremental vs full timing (to ULP
//!   tolerance), apply-then-undo identity, checkpoint round trips,
//!   checkpoint crash windows and K-replica determinism;
//! * [`shrink`] reduces failing scripts to 1-minimal repros with ddmin;
//! * [`repro`] persists a failure as a `.net` + JSON pair that replays
//!   deterministically;
//! * [`harness`] ties it all together into the fuzzing campaign behind
//!   `rowfpga fuzz`, including (under the `fault-inject` feature) the
//!   planted-fault self-test proving the oracles catch every corruption
//!   kind the engine can inject.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod harness;
pub mod invariants;
pub mod oracle;
pub mod repro;
pub mod script;
pub mod shrink;

pub use gen::{random_case, ArchParams, CaseConfig, FuzzCase};
pub use harness::{check_script, replay_repro, run_fuzz, FuzzConfig, FuzzFailure, FuzzReport};
#[cfg(feature = "fault-inject")]
pub use harness::{run_fuzz_with_faults, FaultReport, FaultTrial};
pub use invariants::{check_all, Violation};
pub use oracle::{
    checkpoint_crash_windows, checkpoint_roundtrip, differential_audit, replica_determinism,
    rollback_identity, ulp_distance, OracleFailure, StateDigest, TIMING_ULPS,
};
pub use repro::Repro;
pub use script::{op_to_move, random_script, replay, MoveScript, ScriptOp};
pub use shrink::ddmin;
